"""Test-session bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (useful on air-gapped machines where ``pip install -e .`` may not
be able to build an editable wheel).  When the package *is* installed the
installed copy takes precedence only if it appears earlier on ``sys.path``;
inserting ``src`` at the front keeps tests running against the working tree.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
