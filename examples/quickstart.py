"""Quickstart: schedule one cycle-stealing opportunity and see what it guarantees.

A colleague lends you their workstation for 10 000 time units.  Shipping a
batch of work to it and collecting the results costs c = 1 time unit of
set-up, and the owner reserves the right to reclaim the machine (killing
whatever is in flight) up to twice.  How should you carve the lifespan into
periods, and how much work can you bank on, no matter when the reclaims hit?
"""

from repro import CycleStealingParams, play_adaptive
from repro.adversary import MinimaxAdversary, NeverInterruptAdversary
from repro.analysis import bounds
from repro.schedules import EqualizingAdaptiveScheduler, SinglePeriodScheduler


def main() -> None:
    params = CycleStealingParams(lifespan=10_000.0, setup_cost=1.0, max_interrupts=2)
    scheduler = EqualizingAdaptiveScheduler()

    # What the scheduler commits to at the start of the opportunity.
    first_episode = scheduler.opportunity_schedule(params)
    print(f"Opportunity: U={params.lifespan:g}, c={params.setup_cost:g}, "
          f"p={params.max_interrupts}")
    print(f"First episode uses {first_episode.num_periods} periods; the first few are "
          f"{[round(t, 1) for t in list(first_episode)[:5]]} ... and the last "
          f"{[round(t, 1) for t in list(first_episode)[-3:]]}")

    # Guaranteed output: the exact worst case over every way the owner can
    # place at most p interrupts.
    guaranteed = scheduler.guaranteed_work(params)
    print(f"Guaranteed work  : {guaranteed:8.1f}  "
          f"({100 * guaranteed / params.lifespan:.2f}% of the lifespan)")
    print(f"Theorem 5.1 bound: {bounds.adaptive_guarantee(params.lifespan, 1.0, 2):8.1f}")

    # Compare with the tempting naive strategy: one long period.
    naive = SinglePeriodScheduler().guaranteed_work(params)
    print(f"One long period guarantees {naive:.1f} — a single reclaim wipes it out.")

    # Play the opportunity against a worst-case owner and a friendly one.
    worst = play_adaptive(scheduler, MinimaxAdversary(scheduler), params)
    friendly = play_adaptive(scheduler, NeverInterruptAdversary(), params)
    print(f"Played vs worst-case owner : {worst.total_work:8.1f} "
          f"(episodes={worst.num_episodes}, interrupts used={worst.num_interrupts})")
    print(f"Played vs friendly owner   : {friendly.total_work:8.1f} "
          f"(overhead only: {params.lifespan - friendly.total_work:.1f})")


if __name__ == "__main__":
    main()
