"""Tour: declarative specs, the resumable run store and rendered reports.

The other examples wire experiments up imperatively; this one shows the
declarative path the repository's committed experiments use (see
``specs/`` and docs/specs.md): describe the experiment as data, run it
into the on-disk run store, interrupt it on purpose, resume it, and
render the stored rows as a markdown report — demonstrating along the way
that the resumed run's report is byte-identical to an uninterrupted one.
"""

import tempfile

from repro.reporting import render_run_report
from repro.runstore import resume_run, run_spec
from repro.specs import parse_spec

# The same structure as a specs/*.toml file, as a plain dictionary —
# handy when specs are generated programmatically.  Every scheduler and
# family name is a repro.registry name, validated right here.
SPEC = parse_spec({
    "experiment": {"name": "spec-tour", "kind": "scenario",
                   "seed": 0, "replications": 25, "backend": "batch"},
    "scenario": {"family": "laptop",
                 "schedulers": ["equalizing-adaptive", "rosenberg-adaptive",
                                "fixed-period", "single-period"]},
})


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print(f"Running spec {SPEC.name!r} "
              f"({SPEC.num_points()} points, {SPEC.replications} replications "
              f"each, backend={SPEC.backend}) ...")
        full = run_spec(SPEC, runs_dir=f"{tmp}/full", run_id="tour")

        print("Simulating a mid-run kill: stopping a second run after 2 points,")
        print("then resuming it from the run store ...")
        broken = run_spec(SPEC, runs_dir=f"{tmp}/broken", run_id="tour",
                          max_points=2)
        assert broken.status == "running"
        resumed = resume_run("tour", runs_dir=f"{tmp}/broken")
        assert resumed.status == "complete"

        report = render_run_report(resumed)
        identical = report == render_run_report(full)
        print(f"Interrupted-then-resumed report byte-identical to the "
              f"uninterrupted run: {identical}\n")
        assert identical, "resume determinism broke!"
        print(report)


if __name__ == "__main__":
    main()
