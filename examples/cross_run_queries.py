"""Tour: cross-run analytics with the catalog.

Runs three small sweeps into one runs root — two top-level and one under
a service-style tenant namespace — then turns the catalog loose on them:
build the index, filter runs by spec metadata, concatenate matching
result rows into one provenance-tagged frame (byte-identical to each
run's own ``rows()`` once the provenance columns are stripped),
demonstrate that a re-index is incremental, and export to CSV.  See
docs/catalog.md for the full cookbook.
"""

import json
import os
import tempfile

from repro import Catalog, export_frame, run_spec
from repro.reporting import render_run_comparison
from repro.specs import parse_spec


def sweep(name, seed, lifespans, interrupts):
    return parse_spec({
        "experiment": {"name": name, "kind": "sweep", "seed": seed,
                       "replications": 0},
        "sweep": {"lifespans": lifespans, "setup_costs": [1.0],
                  "interrupts": interrupts,
                  "schedulers": ["equalizing-adaptive",
                                 "rosenberg-nonadaptive"]},
    })


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "runs")
        print("Running three sweeps (one under a tenant namespace) ...")
        runs = [
            run_spec(sweep("short-spans", 0, [200.0, 400.0], [1]),
                     runs_dir=root),
            run_spec(sweep("long-spans", 1, [800.0, 1600.0], [1]),
                     runs_dir=root),
            run_spec(sweep("deep-budget", 2, [400.0], [2, 4]),
                     runs_dir=os.path.join(root, "team-a")),
        ]

        catalog = Catalog([root])
        stats = catalog.refresh()
        print(f"Indexed {stats['indexed']} runs into "
              f"{catalog.index_path}\n")

        print("Runs sweeping p = 1:")
        for handle in catalog.find(p=1):
            summary = handle.record.spec
            print(f"  {handle.run_id}  tenant={handle.tenant or '-'}  "
                  f"lifespans={summary['lifespans']}")

        frame = catalog.frame(["lifespan", "max_interrupts",
                               "guaranteed_work", "efficiency"],
                              where={"scheduler": "equalizing-adaptive"})
        print(f"\nOne frame across all runs: {len(frame)} rows, "
              f"columns {list(frame.data)}")

        # Provenance-stripped rows are byte-identical to concatenating
        # each run's own rows() — the catalog never rewrites data.
        full = catalog.frame()
        stripped = [{k: v for k, v in row.items()
                     if k not in ("run_id", "tenant", "spec_digest")}
                    for row in full.to_rows()]
        union = sum((handle.rows() for handle in catalog.find()), [])
        assert json.dumps(stripped) == json.dumps(union)
        print("Provenance-stripped frame == union of per-run rows(): True")

        # Incremental: nothing changed, so nothing is re-read.
        again = Catalog([root]).refresh()
        print(f"Re-index touches only changed runs: "
              f"indexed={again['indexed']} unchanged={again['unchanged']}")

        out = os.path.join(tmp, "all_runs.csv")
        export_frame(full, out)
        with open(out) as handle:
            print(f"\nExported {len(full)} rows to {out}:")
            print("  " + handle.readline().strip())

        print("\n" + render_run_comparison(
            catalog.get(runs[0].run_id), catalog.get(runs[1].run_id)))


if __name__ == "__main__":
    main()
