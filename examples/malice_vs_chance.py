"""Study: scheduling against malice vs. scheduling against chance.

The guaranteed-output model (this paper) protects against a worst-case
owner; its companion expected-output model assumes the owner reclaims the
machine at a random time.  This example puts the two side by side on the
same contract: how much does the worst-case guideline give up when the owner
is merely busy (Poisson reclaims), and how badly does the expected-output
schedule fare if the owner turns out to be adversarial?
"""

import numpy as np

from repro import CycleStealingParams
from repro.core.work import worst_case_nonadaptive_work
from repro.expected import ExponentialReclaim, expected_work, optimize_schedule
from repro.reporting import render_table
from repro.schedules import EqualizingAdaptiveScheduler, RosenbergNonAdaptiveScheduler

LIFESPAN = 2_000.0
SETUP_COST = 2.0
INTERRUPT_BUDGET = 2
RECLAIM_RATE = 1.0 / 800.0      # the owner comes back every ~800 time units on average


def main() -> None:
    params = CycleStealingParams(lifespan=LIFESPAN, setup_cost=SETUP_COST,
                                 max_interrupts=INTERRUPT_BUDGET)
    reclaim = ExponentialReclaim(rate=RECLAIM_RATE)

    # Worst-case guideline schedules.
    adaptive = EqualizingAdaptiveScheduler()
    nonadaptive = RosenbergNonAdaptiveScheduler()
    guideline_schedule = nonadaptive.opportunity_schedule(params)

    # Expected-output-optimal schedule for the same horizon.
    expected_schedule, expected_value = optimize_schedule(reclaim, horizon=LIFESPAN,
                                                          setup_cost=SETUP_COST, grid=400)

    rows = [
        {
            "schedule": "guaranteed-output guideline (non-adaptive)",
            "periods": guideline_schedule.num_periods,
            "guaranteed_work": worst_case_nonadaptive_work(guideline_schedule, params),
            "expected_work_if_random_owner": expected_work(guideline_schedule, reclaim,
                                                           SETUP_COST),
        },
        {
            "schedule": "expected-output optimum (exponential reclaim)",
            "periods": expected_schedule.num_periods,
            "guaranteed_work": worst_case_nonadaptive_work(expected_schedule, params),
            "expected_work_if_random_owner": expected_value,
        },
    ]
    print(render_table(rows, title=(f"Malice vs chance: U={LIFESPAN:g}, c={SETUP_COST:g}, "
                                    f"p={INTERRUPT_BUDGET}, reclaim rate={RECLAIM_RATE:g}")))

    guaranteed_adaptive = adaptive.guaranteed_work(params)
    print(f"\nFor reference, the adaptive guideline guarantees "
          f"{guaranteed_adaptive:.1f} against a malicious owner.")
    print("The worst-case guideline sacrifices only a little expected work when the")
    print("owner is random, while the expectation-tuned schedule (long periods sized")
    print("to the reclaim rate) can guarantee far less if the owner is adversarial.")


if __name__ == "__main__":
    main()
