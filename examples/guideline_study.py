"""Study: how close do the guidelines come to the exactly-optimal schedule?

Reproduces the paper's central message on a laptop-sized grid: the adaptive
guideline (Theorem 4.3's equalisation) tracks the exact optimum ``W^(p)[U]``
to within low-order terms, the non-adaptive guideline gives up a further
Θ(√(pcU)) but needs no mid-opportunity re-planning, and naive strategies are
not in the race.  The exact optimum comes from the dynamic program of
:mod:`repro.dp`.
"""

from repro import CycleStealingParams
from repro.analysis import bounds, optimality_gap
from repro.dp import solve
from repro.experiments import make_scheduler
from repro.reporting import render_table
from repro.schedules import DPOptimalScheduler, EqualizingAdaptiveScheduler

LIFESPAN = 8_000
SETUP_COST = 1
BUDGETS = (1, 2, 3)

# Registry names (see repro.registry) for everything the registries cover;
# the two entries below the comment need objects the registry cannot carry
# (the solved table itself / a DP work-oracle variant).
REGISTRY_NAMES = ("equalizing-adaptive", "rosenberg-adaptive",
                  "rosenberg-nonadaptive", "fixed-period")


def main() -> None:
    print(f"Solving the exact DP for U <= {LIFESPAN}, c = {SETUP_COST}, "
          f"p <= {max(BUDGETS)} ...")
    table = solve(LIFESPAN, SETUP_COST, max(BUDGETS))

    probe = CycleStealingParams(lifespan=float(LIFESPAN),
                                setup_cost=float(SETUP_COST),
                                max_interrupts=max(BUDGETS))
    schedulers = {"dp-optimal": DPOptimalScheduler(table)}
    schedulers.update({name: make_scheduler(name, probe)
                       for name in REGISTRY_NAMES})
    schedulers["equalizing-adaptive (DP oracle)"] = \
        EqualizingAdaptiveScheduler(oracle=table.as_oracle())

    rows = []
    for p in BUDGETS:
        params = CycleStealingParams(lifespan=float(LIFESPAN), setup_cost=float(SETUP_COST),
                                     max_interrupts=p)
        for label, scheduler in schedulers.items():
            report = optimality_gap(scheduler, params, table)
            rows.append({
                "p": p,
                "scheduler": label,
                "guaranteed_work": round(report.guaranteed_work, 1),
                "gap_to_optimal": None if report.gap is None else round(report.gap, 1),
                "gap_over_sqrt_cU": None if report.normalized_gap is None
                else round(report.normalized_gap, 3),
            })
        rows.append({
            "p": p,
            "scheduler": "(Theorem 5.1 leading bound)",
            "guaranteed_work": round(bounds.adaptive_guarantee(LIFESPAN, SETUP_COST, p), 1),
            "gap_to_optimal": None,
            "gap_over_sqrt_cU": None,
        })

    print(render_table(rows, title=f"Guaranteed work at U={LIFESPAN}, c={SETUP_COST}"))
    print("\nReading the table: the equalizing guideline stays within a fraction of")
    print("sqrt(cU) of the exact optimum for every interrupt budget, the non-adaptive")
    print("guideline pays an extra Θ(sqrt(pcU)), and fixed chunks trail both.")


if __name__ == "__main__":
    main()
