"""Scenario: borrowing a laptop for an evening of data-parallel work.

This is the situation the paper's introduction motivates — the draconian
contract is unavoidable because the laptop can simply be unplugged.  We run
the discrete-event NOW simulator on the canned "laptop evening" scenario
with several schedulers and compare how many of the workload's tasks each
one completes, how much time is wasted on killed periods, and how much goes
to communication set-up.
"""

from repro.experiments import make_scheduler
from repro.registry import SCENARIO_FAMILIES
from repro.reporting import render_table
from repro.simulator import CycleStealingSimulation

# The schedulers to compare, by registry name — the same names the CLI,
# sweep grids and spec files accept (see repro.registry).
SCHEDULER_NAMES = ("equalizing-adaptive", "rosenberg-adaptive",
                   "fixed-period", "single-period")


def main() -> None:
    rows = []
    for name in SCHEDULER_NAMES:
        scenario = SCENARIO_FAMILIES.create("laptop")   # fresh task bag per run
        label = name
        scheduler = make_scheduler(name, scenario.params)
        print(f"Running {scenario.describe()} with {label} ...")
        report = CycleStealingSimulation(scenario.workstations, scheduler,
                                         task_bag=scenario.task_bag).run()
        metrics = report.per_workstation["laptop-0"]
        rows.append({
            "scheduler": label,
            "tasks_done": report.total_tasks_completed,
            "work": metrics.completed_work,
            "wasted": metrics.wasted_time,
            "overhead": metrics.overhead_time,
            "interrupts": metrics.owner_interrupts,
            "utilisation_%": 100.0 * metrics.utilization(scenario.params.lifespan),
        })

    print()
    print(render_table(rows, title="Laptop evening: simulated outcome by scheduler"))
    print("\nThe guideline keeps wasted time (killed periods) small without "
          "drowning in per-period set-up, which is exactly the balance the "
          "paper's analysis optimises.")


if __name__ == "__main__":
    main()
