"""Plain-text and CSV rendering of tabular results.

The analysis and benchmark layers produce lists of dictionaries; this module
turns them into aligned ASCII tables (for terminals and EXPERIMENTS.md) and
CSV files (for any further processing), with sensible numeric formatting and
no third-party dependencies.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_value", "render_table", "render_markdown_table",
           "rows_to_csv", "write_csv"]


def format_value(value, *, float_format: str = "{:.4g}") -> str:
    """Human-friendly rendering of one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v, float_format=float_format) for v in value) + ")"
    return str(value)


def _as_rows(rows) -> List[Mapping[str, object]]:
    """Accept either a row sequence or a columnar view with ``to_rows()``.

    Lets every renderer take :class:`repro.runstore.RunColumns` (the
    single-pass sidecar read) directly, without callers materialising the
    row dictionaries themselves.
    """
    to_rows = getattr(rows, "to_rows", None)
    if callable(to_rows):
        return to_rows()
    return list(rows)


def _column_order(rows: Sequence[Mapping[str, object]],
                  columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def render_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 *, title: Optional[str] = None,
                 float_format: str = "{:.4g}") -> str:
    """Render rows of dictionaries (or a columnar view) as an aligned ASCII table."""
    rows = _as_rows(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _column_order(rows, columns)
    rendered = [[format_value(row.get(col), float_format=float_format) for col in cols]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)]

    def line(cells: Iterable[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(cols))
    out.append(line("-" * w for w in widths))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def render_markdown_table(rows: Sequence[Mapping[str, object]],
                          columns: Optional[Sequence[str]] = None,
                          *, float_format: str = "{:.4g}") -> str:
    """Render rows of dictionaries as a GitHub-flavoured markdown table.

    Same cell formatting as :func:`render_table`; used by the run-report
    generator in :mod:`repro.reporting.report`.  Deterministic: identical
    rows render to identical bytes.
    """
    rows = _as_rows(rows)
    if not rows:
        return "*(no rows)*"
    cols = _column_order(rows, columns)

    def cell(value) -> str:
        return format_value(value, float_format=float_format).replace("|", r"\|")

    lines = ["| " + " | ".join(cols) + " |",
             "| " + " | ".join("---" for _ in cols) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(col)) for col in cols) + " |")
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialise rows of dictionaries (or a columnar view) as CSV text."""
    rows = _as_rows(rows)
    cols = _column_order(rows, columns)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k) for k in cols})
    return buffer.getvalue()


def write_csv(path, rows: Sequence[Mapping[str, object]],
              columns: Optional[Sequence[str]] = None) -> None:
    """Write rows of dictionaries to a CSV file."""
    text = rows_to_csv(rows, columns)
    with open(path, "w", newline="") as handle:
        handle.write(text)
