"""Sweep-series utilities.

A *series* is the result of sweeping one scheduler (or bound) over one
parameter — exactly what the paper's analysis figures would plot.  The
helpers here pivot flat row dictionaries into per-series arrays, compute the
summary statistics the benchmarks print (who wins, by what factor, where a
crossover falls), and keep everything in plain NumPy so no plotting stack is
required.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["pivot_series", "ratio_summary", "crossover_point"]


def pivot_series(rows: Sequence[Mapping[str, object]], x: str, y: str,
                 series_key: str) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Group rows by ``series_key`` and return ``{series: (x_array, y_array)}``.

    Rows missing any of the three keys are skipped; each series is sorted by
    its x values.
    """
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        if x not in row or y not in row or series_key not in row:
            continue
        if row[x] is None or row[y] is None:
            continue
        grouped.setdefault(str(row[series_key]), []).append((float(row[x]), float(row[y])))
    out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for label, points in grouped.items():
        points.sort()
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        out[label] = (xs, ys)
    return out


def ratio_summary(series: Mapping[str, Tuple[np.ndarray, np.ndarray]],
                  numerator: str, denominator: str) -> Dict[str, float]:
    """Summarise the ratio of two series sharing the same x grid.

    Returns the minimum, median and maximum of ``numerator / denominator``
    over the common x values — the "by roughly what factor" numbers
    EXPERIMENTS.md reports.
    """
    if numerator not in series or denominator not in series:
        raise KeyError(f"series must contain {numerator!r} and {denominator!r}")
    xn, yn = series[numerator]
    xd, yd = series[denominator]
    common, idx_n, idx_d = np.intersect1d(xn, xd, return_indices=True)
    if common.size == 0:
        raise ValueError("the two series share no x values")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = yn[idx_n] / yd[idx_d]
    ratios = ratios[np.isfinite(ratios)]
    if ratios.size == 0:
        return {"min": float("nan"), "median": float("nan"), "max": float("nan")}
    return {
        "min": float(np.min(ratios)),
        "median": float(np.median(ratios)),
        "max": float(np.max(ratios)),
    }


def crossover_point(series: Mapping[str, Tuple[np.ndarray, np.ndarray]],
                    first: str, second: str) -> Optional[float]:
    """Smallest common x value at which ``first`` overtakes ``second``.

    Returns ``None`` when ``first`` never reaches ``second`` on the common
    grid (or the grids do not overlap).
    """
    if first not in series or second not in series:
        raise KeyError(f"series must contain {first!r} and {second!r}")
    xf, yf = series[first]
    xs, ys = series[second]
    common, idx_f, idx_s = np.intersect1d(xf, xs, return_indices=True)
    for x_val, a, b in zip(common, yf[idx_f], ys[idx_s]):
        if a >= b:
            return float(x_val)
    return None
