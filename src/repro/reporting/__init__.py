"""Result rendering: ASCII/CSV/markdown tables, run reports, series summaries."""

from .compare import render_run_comparison
from .report import (
    refresh_run_report,
    render_run_report,
    report_digest_path,
    write_run_report,
)
from .series import crossover_point, pivot_series, ratio_summary
from .table import (
    format_value,
    render_markdown_table,
    render_table,
    rows_to_csv,
    write_csv,
)

__all__ = [
    "render_table",
    "render_markdown_table",
    "rows_to_csv",
    "write_csv",
    "format_value",
    "pivot_series",
    "ratio_summary",
    "crossover_point",
    "render_run_comparison",
    "render_run_report",
    "write_run_report",
    "refresh_run_report",
    "report_digest_path",
]
