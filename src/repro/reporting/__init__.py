"""Result rendering: ASCII/CSV tables and sweep-series summaries."""

from .series import crossover_point, pivot_series, ratio_summary
from .table import format_value, render_table, rows_to_csv, write_csv

__all__ = [
    "render_table",
    "rows_to_csv",
    "write_csv",
    "format_value",
    "pivot_series",
    "ratio_summary",
    "crossover_point",
]
