"""Render a completed run into a paper-style markdown report.

The report generator is a *pure function of the stored rows*: it reads a
run's manifest and point shards (see :mod:`repro.runstore`) and emits
markdown — never timestamps, hostnames or wall-clock timings — so an
interrupted-then-resumed run renders **byte-identically** to an
uninterrupted run with the same spec and seed.  That property is pinned by
the resume tests and is what makes a committed report a reproducible
artifact rather than a log.

Sections mirror the paper's presentation:

* **Guaranteed output** — exact worst-case work per scheduler and
  opportunity, the Table 1/Table 2 analogue (work in the lifespan's time
  units; efficiency = work / ``U``).
* **Optimality gap** — guideline vs. the exact DP optimum ``W^(p)[U]``,
  with the gap also normalised by ``√(cU)``, the scale of the paper's
  low-order loss terms.
* **Monte-Carlo replication** — mean/std/quantiles over the randomized
  owners or scenario instances.
* **Relative output** — each scheduler's output as a speedup over the
  weakest scheduler and a fraction of the best, aggregated across the
  run's parameter points.
"""

from __future__ import annotations

import math
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.variance import Z95
from .table import render_markdown_table

__all__ = ["render_run_report", "write_run_report", "refresh_run_report",
           "report_digest_path"]

#: Grouping keys identifying one opportunity (sweep) or instance (scenario).
_GROUP_KEYS = ("lifespan", "setup_cost", "max_interrupts", "adversary", "family")


def _select_columns(rows: Sequence[Mapping[str, Any]],
                    wanted: Sequence[str]) -> List[str]:
    present: List[str] = []
    for col in wanted:
        if any(col in row for row in rows):
            present.append(col)
    return present


def _subtable(rows: Sequence[Mapping[str, Any]], wanted: Sequence[str]) -> str:
    cols = _select_columns(rows, wanted)
    return render_markdown_table([{col: row.get(col) for col in cols}
                                  for row in rows])


def _normalized_gap(row: Mapping[str, Any]) -> Optional[float]:
    gap = row.get("gap")
    U = row.get("lifespan")
    c = row.get("setup_cost")
    if gap is None or not U or c is None:
        return None
    scale = math.sqrt(float(c) * float(U))
    return float(gap) / scale if scale > 0.0 else None


def _group_key(row: Mapping[str, Any]) -> Tuple:
    return tuple(row.get(k) for k in _GROUP_KEYS if k in row)


def _relative_output_rows(rows: Sequence[Mapping[str, Any]],
                          value_key: str) -> List[Dict[str, Any]]:
    """Per-scheduler speedup-over-weakest / fraction-of-best summary.

    Rows are grouped by opportunity (every key except the scheduler); in
    each group the schedulers' outputs are compared, and the per-scheduler
    ratios are averaged across groups.  This is the run-level analogue of
    the paper's message that the guidelines dominate naive strategies.
    """
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    for row in rows:
        if row.get(value_key) is None or "scheduler" not in row:
            continue
        groups.setdefault(_group_key(row), []).append(row)

    speedups: Dict[str, List[float]] = {}
    fractions: Dict[str, List[float]] = {}
    for group in groups.values():
        if len(group) < 2:
            continue
        values = [float(r[value_key]) for r in group]
        weakest, best = min(values), max(values)
        for row, value in zip(group, values):
            name = str(row["scheduler"])
            if weakest > 0.0:
                speedups.setdefault(name, []).append(value / weakest)
            if best > 0.0:
                fractions.setdefault(name, []).append(value / best)

    out: List[Dict[str, Any]] = []
    for name in sorted(set(speedups) | set(fractions)):
        row: Dict[str, Any] = {"scheduler": name}
        if speedups.get(name):
            row["speedup_vs_weakest"] = (sum(speedups[name])
                                         / len(speedups[name]))
        if fractions.get(name):
            row["fraction_of_best"] = (sum(fractions[name])
                                       / len(fractions[name]))
        row["points"] = len(speedups.get(name) or fractions.get(name) or ())
        out.append(row)
    return out


def _distinguishability_rows(rows: Sequence[Mapping[str, Any]]
                             ) -> List[Dict[str, Any]]:
    """Best vs runner-up scheduler per opportunity, with a 95% verdict.

    For each group of rows sharing an opportunity, compares the two
    schedulers with the highest ``work_mean`` using their standard-error
    columns (a Welch-style z-test): the pair is *distinguishable at 95%*
    when ``|Δmean| > z_0.975 · √(sem₁² + sem₂²)``.  Only rows carrying CI
    columns participate, so the section appears exactly when the run used
    a variance-reduction mode.
    """
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    for row in rows:
        if row.get("work_mean") is None or row.get("work_sem") is None \
                or "scheduler" not in row:
            continue
        groups.setdefault(_group_key(row), []).append(row)

    out: List[Dict[str, Any]] = []
    for key, group in sorted(groups.items(),
                             key=lambda item: tuple(map(str, item[0]))):
        if len(group) < 2:
            continue
        ranked = sorted(group, key=lambda r: float(r["work_mean"]),
                        reverse=True)
        best, runner = ranked[0], ranked[1]
        delta = float(best["work_mean"]) - float(runner["work_mean"])
        halfwidth = Z95 * math.hypot(float(best["work_sem"]),
                                     float(runner["work_sem"]))
        row: Dict[str, Any] = {k: v for k, v in zip(
            [g for g in _GROUP_KEYS if g in best], key)}
        row.update({
            "best": str(best["scheduler"]),
            "runner_up": str(runner["scheduler"]),
            "work_delta": delta,
            "delta_ci95_halfwidth": halfwidth,
            "distinguishable_at_95": "yes" if delta > halfwidth else "no",
        })
        out.append(row)
    return out


def render_run_report(run) -> str:
    """Render one stored run (a :class:`repro.runstore.Run`) as markdown.

    A pure function of the stored rows.  ``run.rows()`` serves them from
    the columnar ``columns.npz`` sidecar in a single file read when it is
    valid — rendering a completed run performs **zero per-shard ``.npz``
    opens** on that warm path — and from per-shard reads otherwise, with
    identical output either way.
    """
    spec = run.spec()
    rows = run.rows()
    completed = len(rows)
    total = run.num_points

    lines: List[str] = []
    lines.append(f"# Run report: {spec.name}")
    lines.append("")
    lines.append(f"- **run id**: `{run.run_id}`")
    lines.append(f"- **kind**: {spec.kind}")
    if spec.kind == "scenario":
        lines.append(f"- **scenario family**: `{spec.family}`")
    lines.append(f"- **schedulers**: {', '.join(f'`{s}`' for s in spec.schedulers)}")
    if spec.adversaries:
        lines.append(
            f"- **adversaries**: {', '.join(f'`{a}`' for a in spec.adversaries)}")
    lines.append(f"- **seed**: {spec.seed}")
    lines.append(f"- **replications**: {spec.replications}")
    lines.append(f"- **backend**: {spec.backend}")
    if getattr(spec, "aggregation", "auto") != "auto":
        lines.append(f"- **aggregation**: {spec.aggregation}")
    if getattr(spec, "chunk_size", None) is not None:
        lines.append(f"- **chunk size**: {spec.chunk_size}")
    if getattr(spec, "variance", "none") != "none":
        lines.append(f"- **variance reduction**: {spec.variance}")
    lines.append(f"- **points**: {completed}/{total} completed"
                 + ("" if completed == total else " (partial run)"))
    lines.append("")

    guaranteed = [r for r in rows if r.get("guaranteed_work") is not None]
    if guaranteed:
        lines.append("## Guaranteed output (worst case, Table 1/2 analogue)")
        lines.append("")
        lines.append("Exact worst-case work per scheduler and opportunity "
                     "`(U, c, p)`; efficiency is work divided by the "
                     "lifespan `U`.")
        lines.append("")
        lines.append(_subtable(
            guaranteed,
            ("scheduler", "lifespan", "setup_cost", "max_interrupts",
             "guaranteed_work", "efficiency")))
        lines.append("")

    with_optimal = [r for r in rows if r.get("optimal_work") is not None]
    if with_optimal:
        lines.append("## Optimality gap vs the exact DP optimum")
        lines.append("")
        lines.append("`gap = W^(p)[U] - guaranteed`; `gap_over_sqrt_cU` "
                     "rescales it by the `√(cU)` magnitude of the paper's "
                     "low-order loss terms (bounded values mean optimal up "
                     "to low-order additive terms).")
        lines.append("")
        cols = _select_columns(
            with_optimal,
            ("scheduler", "lifespan", "setup_cost", "max_interrupts",
             "guaranteed_work", "optimal_work", "gap"))
        shown = [dict({c: r.get(c) for c in cols},
                      gap_over_sqrt_cU=_normalized_gap(r))
                 for r in with_optimal]
        lines.append(render_markdown_table(shown))
        lines.append("")

    replicated = [r for r in rows if r.get("work_mean") is not None]
    if replicated:
        lines.append("## Monte-Carlo replication")
        lines.append("")
        source = ("randomized scenario instances" if spec.kind == "scenario"
                  else "randomized owner traces")
        lines.append(f"Statistics over {spec.replications} {source} "
                     f"per point (backend `{spec.backend}`).")
        methods = {str(r["quantile_method"]) for r in replicated
                   if r.get("quantile_method") is not None}
        if methods == {"p2"}:
            lines.append("Quantile columns (`*_q10/q50/q90`) are **P² "
                         "estimates** from the streaming accumulators; "
                         "mean/std/min/max are exact (Welford / running "
                         "extrema).")
        elif "p2" in methods:
            lines.append("Quantile columns (`*_q10/q50/q90`) mix exact "
                         "values and **P² estimates** — see each row's "
                         "`quantile_method`; mean/std/min/max are always "
                         "exact.")
        if any(r.get("work_sem") is not None for r in replicated):
            variance_modes = sorted({str(r["variance"]) for r in replicated
                                     if r.get("variance") is not None})
            lines.append(f"Variance reduction "
                         f"(`{'`, `'.join(variance_modes)}`) adds CI "
                         "columns: `work_sem` is the mode-aware standard "
                         "error and `[work_ci_lo, work_ci_hi]` the normal "
                         "95% interval; `*_bm` variants (in the stored "
                         "rows) re-derive them from batch means.")
        lines.append("")
        lines.append(_subtable(
            replicated,
            ("family", "scheduler", "adversary", "lifespan", "setup_cost",
             "max_interrupts", "work_mean", "work_std", "work_sem",
             "work_ci_lo", "work_ci_hi", "work_q10",
             "work_q50", "work_q90", "tasks_mean", "interrupts_mean",
             "episodes_mean", "quantile_method")))
        lines.append("")

        distinguishable = _distinguishability_rows(replicated)
        if distinguishable:
            lines.append("## Scheduler distinguishability at 95%")
            lines.append("")
            lines.append("Per opportunity: the two schedulers with the "
                         "highest mean Monte-Carlo work, their mean gap, "
                         "and the 95% half-width of that gap "
                         "(`z₀.₉₇₅·√(sem₁²+sem₂²)`).  A **yes** means the "
                         "ranking is resolved at this replication count; "
                         "a **no** means more replications (or a stronger "
                         "variance-reduction mode) are needed before "
                         "reading anything into the order.")
            lines.append("")
            lines.append(render_markdown_table(distinguishable))
            lines.append("")

    value_key = "work_mean" if replicated else "guaranteed_work"
    relative = _relative_output_rows(rows, value_key)
    if relative:
        lines.append("## Relative output (speedup summary)")
        lines.append("")
        basis = ("mean Monte-Carlo work" if value_key == "work_mean"
                 else "guaranteed work")
        lines.append(f"Per-scheduler {basis}, averaged across the run's "
                     "parameter points: as a speedup over the weakest "
                     "scheduler of each point and as a fraction of the "
                     "best.")
        lines.append("")
        lines.append(render_markdown_table(relative))
        lines.append("")

    if completed != total:
        lines.append("> **Note**: this run is incomplete; run "
                     f"`repro resume {run.run_id}` to finish it.")
        lines.append("")
    return "\n".join(lines)


def report_digest_path(path: str) -> str:
    """The cache-stamp file recording which run content a report renders."""
    return path + ".digest"


def _read_stamp(path: str) -> Optional[str]:
    try:
        with open(report_digest_path(path), "r", encoding="utf-8") as handle:
            return handle.read().strip() or None
    except OSError:
        return None


def refresh_run_report(run, path: Optional[str] = None, *,
                       force: bool = False) -> Tuple[str, bool]:
    """Write (or reuse) the rendered report; returns ``(path, cache_hit)``.

    The rendered markdown is cached against the run's *content digest*
    (:meth:`repro.runstore.Run.content_digest` — manifest plus the
    deterministic columnar sidecar): when the digest stamp next to the
    report matches and the report file exists, nothing is re-read or
    re-rendered — a second ``repro report`` on an unchanged run is a pure
    cache hit.  Any change to the run (new shards, spec, status) changes
    the digest; a run without a valid sidecar has no digest and is always
    rendered fresh.  ``force=True`` re-renders unconditionally (the CI
    smoke job uses it to prove cached and fresh bytes agree).
    """
    path = path or run.report_path
    digest = run.content_digest() if hasattr(run, "content_digest") else None
    if not force and digest is not None and os.path.isfile(path) \
            and _read_stamp(path) == digest:
        return path, True
    text = render_run_report(run)
    # The stamp records the digest captured BEFORE rendering.  If the run
    # changed while we rendered (an in-flight resume completing points),
    # the stamp no longer matches the new content and the next render is
    # a miss — a false miss at worst, never a false hit serving a report
    # of rows that are gone.  A run without a pre-render digest (no valid
    # sidecar yet) is stamped on its next render instead.
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".md.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    stamp = report_digest_path(path)
    if digest is not None:
        with open(stamp, "w", encoding="utf-8") as handle:
            handle.write(digest + "\n")
    else:  # no digest: never leave a stale stamp that could hit later
        try:
            os.remove(stamp)
        except OSError:
            pass
    return path, False


def write_run_report(run, path: Optional[str] = None, *,
                     force: bool = False) -> str:
    """Render ``run`` and write the markdown next to it (returns the path).

    Digest-cached: see :func:`refresh_run_report` (this is the same
    operation, returning only the path).
    """
    return refresh_run_report(run, path, force=force)[0]
