"""Cross-run comparison: the markdown behind ``repro catalog diff``.

A deliberately small report for the question "what changed between these
two runs?" — identity and spec deltas from the catalog index alone, plus a
metric table over the numeric columns both runs share (one sidecar read
per run, same fast path as :meth:`repro.catalog.Catalog.frame`).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from .table import render_markdown_table

__all__ = ["render_run_comparison"]


def _fmt(value: Any) -> Any:
    """Spec-summary values as short cells (lists joined, rest verbatim)."""
    if isinstance(value, (list, tuple)):
        return ", ".join(str(v) for v in value)
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
    return value


def render_run_comparison(a, b, *, source: str = "auto",
                          float_format: str = "{:.6g}") -> str:
    """Markdown diff of two indexed runs (``repro catalog diff``).

    ``a`` / ``b`` are :class:`repro.catalog.RunHandle` objects (anything
    with a ``.record`` and ``.columns()`` works).  Sections: identity,
    spec-summary fields that differ, columns present in only one run, and
    mean/min/max deltas over the shared numeric columns.
    """
    ra, rb = a.record, b.record
    label_a = f"{ra.tenant + '/' if ra.tenant else ''}{ra.run_id}"
    label_b = f"{rb.tenant + '/' if rb.tenant else ''}{rb.run_id}"
    lines: List[str] = [f"# Run comparison: `{label_a}` vs `{label_b}`", ""]

    identity = [
        {"field": "run id", "a": ra.run_id, "b": rb.run_id},
        {"field": "tenant", "a": ra.tenant or "-", "b": rb.tenant or "-"},
        {"field": "status", "a": ra.status, "b": rb.status},
        {"field": "points",
         "a": f"{ra.completed}/{ra.num_points}",
         "b": f"{rb.completed}/{rb.num_points}"},
        {"field": "spec digest",
         "a": ra.spec_digest[:12], "b": rb.spec_digest[:12]},
        {"field": "content digest",
         "a": (ra.content_digest or "-")[:12],
         "b": (rb.content_digest or "-")[:12]},
    ]
    lines += ["## Identity", "",
              render_markdown_table(identity, ["field", "a", "b"]), ""]

    spec_a: Dict[str, Any] = ra.spec
    spec_b: Dict[str, Any] = rb.spec
    changed = [{"field": key,
                "a": _fmt(spec_a.get(key, "-")),
                "b": _fmt(spec_b.get(key, "-"))}
               for key in sorted(set(spec_a) | set(spec_b))
               if spec_a.get(key) != spec_b.get(key)]
    lines.append("## Spec differences")
    lines.append("")
    if changed:
        lines += [render_markdown_table(changed, ["field", "a", "b"]), ""]
    else:
        lines += ["Identical spec summaries.", ""]

    schema_a, schema_b = ra.column_schema, rb.column_schema
    only_a = sorted(set(schema_a) - set(schema_b))
    only_b = sorted(set(schema_b) - set(schema_a))
    if only_a or only_b:
        lines.append("## Schema differences")
        lines.append("")
        if only_a:
            lines.append(f"- only in `{label_a}`: "
                         + ", ".join(f"`{c}`" for c in only_a))
        if only_b:
            lines.append(f"- only in `{label_b}`: "
                         + ", ".join(f"`{c}`" for c in only_b))
        lines.append("")

    cols_a = a.columns(source=source)
    cols_b = b.columns(source=source)
    metric_rows: List[Dict[str, Any]] = []
    for name, column_a in cols_a.data.items():
        column_b = cols_b.data.get(name)
        if column_b is None:
            continue
        if column_a.dtype.kind not in "biuf" \
                or column_b.dtype.kind not in "biuf":
            continue
        mask_a, mask_b = cols_a.mask.get(name), cols_b.mask.get(name)
        va = column_a if mask_a is None else column_a[mask_a]
        vb = column_b if mask_b is None else column_b[mask_b]
        if not len(va) or not len(vb):
            continue
        mean_a, mean_b = float(np.mean(va)), float(np.mean(vb))
        metric_rows.append({
            "column": name,
            "mean a": mean_a, "mean b": mean_b,
            "delta": mean_b - mean_a,
            "min a": float(np.min(va)), "min b": float(np.min(vb)),
            "max a": float(np.max(va)), "max b": float(np.max(vb)),
        })
    lines.append("## Shared metrics")
    lines.append("")
    if metric_rows:
        lines.append(render_markdown_table(
            metric_rows,
            ["column", "mean a", "mean b", "delta",
             "min a", "min b", "max a", "max b"],
            float_format=float_format))
    else:
        lines.append("No shared numeric columns with data.")
    lines.append("")
    return "\n".join(lines)
