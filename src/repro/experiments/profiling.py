"""Per-stage wall-time breakdown of experiment runs (``--profile``).

Perf work on the harness keeps re-asking the same question: of a sweep's
wall-clock, how much goes to the exact worst-case referees, the DP solves,
the Monte-Carlo replication, and the run-store shard I/O?  This module is
the measurement plumbing behind the ``--profile`` flag of ``repro sweep``
and ``repro run``:

* workers time each stage of a point with :func:`stage_column` /
  ``time.perf_counter`` and return the seconds as flat row columns under
  the reserved :data:`PROFILE_PREFIX`;
* the driver strips those columns off every result row
  (:func:`pop_profile`) — they never reach CSVs, run-store shards or
  reports — and aggregates them (:func:`aggregate_profiles`);
* :func:`render_profile` formats the totals as the small table printed to
  stderr.

Stage seconds are summed across worker processes, so with ``--jobs > 1``
the breakdown is *CPU* time per stage and its total legitimately exceeds
the wall-clock; the rendered table says so explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

__all__ = ["PROFILE_PREFIX", "STAGES", "COUNT_SUFFIX", "MAX_SUFFIX",
           "stage_column", "pop_profile", "aggregate_profiles",
           "render_profile"]

#: Reserved column prefix for per-point stage timings.
PROFILE_PREFIX = "_profile_"

#: Known stages, in reporting order.  ``spec_parse`` is spec expansion and
#: pending-point discovery in the run store, ``referee`` the exact
#: worst-case minimax/pattern measurement, ``dp_solve`` the (cached)
#: ``W^(p)[L]`` table resolution, ``monte_carlo`` the replication layer,
#: ``shard_io`` run-store reads/writes (shards and the columnar sidecar),
#: ``report_render`` the markdown report generation of ``repro report``.
STAGES = ("spec_parse", "referee", "dp_solve", "monte_carlo", "shard_io",
          "report_render")

#: Non-seconds per-chunk metrics the Monte-Carlo layer reports alongside
#: the stage timings: ``*_chunks`` columns are counts (summed across
#: points, rendered without a share), ``*_max`` columns are per-chunk
#: maxima (aggregated with ``max``, not ``+``).
COUNT_SUFFIX = "_chunks"
MAX_SUFFIX = "_max"


def stage_column(stage: str) -> str:
    """The reserved row-column name carrying one stage's seconds."""
    return f"{PROFILE_PREFIX}{stage}"


def _is_metric(stage: str) -> bool:
    return stage.endswith(COUNT_SUFFIX) or stage.endswith(MAX_SUFFIX)


def pop_profile(row: Dict[str, object]) -> Dict[str, float]:
    """Strip (and return) the profile columns of one result row, in place."""
    timings: Dict[str, float] = {}
    for key in [k for k in row if k.startswith(PROFILE_PREFIX)]:
        timings[key[len(PROFILE_PREFIX):]] = float(row.pop(key))  # type: ignore[arg-type]
    return timings


def aggregate_profiles(profiles: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Combine per-stage values over many per-point profiles.

    Stage seconds and chunk counts are summed; ``*_max`` metrics (the
    slowest single chunk) keep the maximum across points.
    """
    totals: Dict[str, float] = {}
    for profile in profiles:
        for stage, seconds in profile.items():
            if stage.endswith(MAX_SUFFIX):
                totals[stage] = max(totals.get(stage, 0.0), float(seconds))
            else:
                totals[stage] = totals.get(stage, 0.0) + float(seconds)
    return totals


def render_profile(totals: Mapping[str, float], *, wall_seconds: float,
                   points: int, jobs: int = 1) -> str:
    """Format the aggregated breakdown as the table ``--profile`` prints."""
    lines: List[str] = []
    parallel = jobs > 1
    kind = "CPU seconds summed across workers" if parallel else "wall seconds"
    lines.append(f"profile: {points} point(s) in {wall_seconds:.3f}s "
                 f"wall ({kind} per stage below)")
    staged = sum(v for k, v in totals.items() if not _is_metric(k))
    ordered = [s for s in STAGES if s in totals]
    ordered += sorted(set(totals) - set(STAGES))
    width = max((len(s) for s in ordered), default=7)
    for stage in ordered:
        seconds = totals[stage]
        if stage.endswith(COUNT_SUFFIX):
            lines.append(f"  {stage:<{width}}  {seconds:9.0f}")
            continue
        if stage.endswith(MAX_SUFFIX):
            lines.append(f"  {stage:<{width}}  {seconds:9.3f}s  (max)")
            continue
        share = seconds / staged if staged > 0.0 else 0.0
        lines.append(f"  {stage:<{width}}  {seconds:9.3f}s  {share:6.1%}")
    other = wall_seconds - staged
    if not parallel and other > 0.0:
        lines.append(f"  {'(other)':<{width}}  {other:9.3f}s  "
                     f"{other / wall_seconds:6.1%}")
    return "\n".join(lines)
