"""Online accumulators for streaming Monte-Carlo aggregation.

The exact aggregation path of :mod:`repro.experiments.montecarlo`
materialises one full per-replication array per statistic, so its peak
memory grows linearly in ``--replications``.  This module provides the
*streaming* alternative: replications are played in fixed-size chunks and
fed — in replication order — into online accumulators whose state is O(1)
per statistic, making peak memory flat in the replication count:

* :class:`RunningMoments` — Welford's algorithm for mean and (sample)
  standard deviation plus running min/max.  Updates are strictly
  sequential, one value at a time, so the result is **bit-identical no
  matter how the stream is chunked** (and agrees with numpy's pairwise
  summation to ~1e-15 relative, pinned at 1e-9 by the parity gates).
  Min/max are exact.
* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac (1985): a
  five-marker parabolic estimator of one quantile in O(1) memory.  Exact
  below five observations (it just sorts the buffer), an estimate above —
  the reporting layer flags streamed quantile columns as ``p2`` so exact
  and estimated quantiles are never conflated.
* :class:`StreamingAggregator` — one statistic's bundle of the above,
  producing the same ``{prefix}_n/mean/std/min/max/q*`` columns as
  :func:`repro.experiments.montecarlo.aggregate`.

All accumulators reject NaN on entry with an actionable error instead of
silently absorbing it into the running state (where it would poison every
later summary).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RunningMoments", "P2Quantile", "StreamingAggregator"]


def _reject_nan(name: Optional[str], count_nan: int, count_total: int,
                first_index: Optional[int] = None) -> None:
    label = f" {name!r}" if name else ""
    where = ("" if first_index is None
             else f" (first NaN at absolute replication index {first_index})")
    raise ValueError(
        f"replicated statistic{label}: {count_nan} of {count_total} values "
        f"in this update are NaN{where}; NaN cannot be aggregated (it would "
        "poison mean/std/quantiles) — check the scheduler/adversary/scenario "
        "for invalid parameters producing undefined work values")


class RunningMoments:
    """Welford mean/std plus exact running min/max, in O(1) state.

    The Welford update is applied strictly sequentially — one value at a
    time, in stream order — so feeding the same stream in any chunking
    yields bit-identical state.  ``std`` follows the convention of
    :func:`repro.experiments.montecarlo.aggregate`: sample standard
    deviation (``ddof=1``) for two or more values, ``0.0`` for fewer.
    """

    __slots__ = ("name", "count", "mean", "_m2", "minimum", "maximum")

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            _reject_nan(self.name, 1, 1, self.count)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=float)
        if arr.size == 0:
            return
        nan_mask = np.isnan(arr)
        nan_count = int(nan_mask.sum())
        if nan_count:
            _reject_nan(self.name, nan_count, int(arr.size),
                        self.count + int(nan_mask.argmax()))
        # Welford is inherently sequential (each step divides by the
        # running count); min/max are associative, so they merge from the
        # chunk's exact numpy reduction — both stay chunking-invariant.
        count = self.count
        mean = self.mean
        m2 = self._m2
        for value in arr.tolist():
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
        self.count = count
        self.mean = mean
        self._m2 = m2
        low = float(arr.min())
        high = float(arr.max())
        if low < self.minimum:
            self.minimum = low
        if high > self.maximum:
            self.maximum = high

    @property
    def std(self) -> float:
        """Sample standard deviation (``ddof=1``); ``0.0`` below 2 values."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


class P2Quantile:
    """One quantile, estimated online with the P² algorithm.

    Jain & Chlamtac, "The P² algorithm for dynamic calculation of
    quantiles and histograms without storing observations", CACM 1985:
    five markers track the running minimum, the target quantile, the two
    flanking mid-quantiles and the running maximum; marker heights move by
    piecewise-parabolic interpolation as observations arrive.  Below five
    observations the estimate is exact (``numpy.quantile`` of the sorted
    buffer).  Updates are sequential, so the estimate is bit-identical
    under any chunking of the same stream.
    """

    __slots__ = ("q", "name", "count", "_heights", "_positions", "_desired",
                 "_rates")

    def __init__(self, q: float, name: Optional[str] = None):
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        self.q = float(q)
        self.name = name
        self.count = 0
        self._heights: List[float] = []
        self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
        self._desired = [0.0, 0.0, 0.0, 0.0, 0.0]
        q = self.q
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def update(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            _reject_nan(self.name, 1, 1, self.count)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            if self.count == 5:
                heights.sort()
                q = self.q
                self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
            return

        positions = self._positions
        # Locate the marker cell containing the observation, widening the
        # extreme markers when it falls outside the current range.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        rates = self._rates
        for i in range(5):
            desired[i] += rates[i]

        for i in (1, 2, 3):
            drift = desired[i] - positions[i]
            if (drift >= 1.0 and positions[i + 1] - positions[i] > 1.0) or \
                    (drift <= -1.0 and positions[i - 1] - positions[i] < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def extend(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=float)
        if arr.size == 0:
            return
        nan_mask = np.isnan(arr)
        nan_count = int(nan_mask.sum())
        if nan_count:
            _reject_nan(self.name, nan_count, int(arr.size),
                        self.count + int(nan_mask.argmax()))
        update = self.update
        for value in arr.tolist():
            update(value)

    def value(self) -> float:
        """The current estimate (exact below five observations)."""
        if self.count == 0:
            raise ValueError("no observations yet")
        if self.count < 5:
            return float(np.quantile(np.asarray(self._heights), self.q))
        return float(self._heights[2])


class StreamingAggregator:
    """Online mean/std/min/max/quantile summary of one replicated statistic.

    Produces the same columns as
    :func:`repro.experiments.montecarlo.aggregate` — ``{prefix}_n``,
    ``{prefix}_mean/std/min/max`` and one ``{prefix}_q<percent>`` per
    requested quantile — but with O(1) memory in the stream length.
    Quantile columns carry P² *estimates* once the stream exceeds four
    values (monotone across quantiles by construction: the summary sorts
    the estimates so ``q10 <= q50 <= q90`` always holds, matching the
    order exact quantiles satisfy automatically).

    ``ci`` (optional) attaches a confidence-interval accumulator — any
    object with ``update(value, stratum)``, ``extend(values, strata)``
    and ``columns(prefix)``, in practice
    :class:`repro.experiments.variance.CiAccumulator`.  It is fed the
    same stream in the same order (after NaN screening), and its columns
    are merged into :meth:`summary`, so ``{prefix}_sem/_ci_lo/_ci_hi``
    ride along with the mean/std/quantile columns.  ``strata`` (optional
    per-value stratum labels, e.g. observed interrupt counts) are passed
    through to the accumulator untouched.
    """

    def __init__(self, name: Optional[str] = None,
                 quantiles: Sequence[float] = (0.1, 0.5, 0.9), ci=None):
        self.name = name
        self.quantiles: Tuple[float, ...] = tuple(sorted(quantiles))
        self.moments = RunningMoments(name)
        self.estimators = [P2Quantile(q, name) for q in self.quantiles]
        self.ci = ci

    @property
    def count(self) -> int:
        return self.moments.count

    def update(self, value: float, stratum: Optional[float] = None) -> None:
        self.moments.update(value)
        for estimator in self.estimators:
            estimator.update(value)
        if self.ci is not None:
            self.ci.update(value, stratum)

    def extend(self, values: Iterable[float],
               strata: Optional[Sequence[float]] = None) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=float)
        if arr.size == 0:
            return
        self.moments.extend(arr)
        for estimator in self.estimators:
            estimator.extend(arr)
        if self.ci is not None:
            self.ci.extend(arr.tolist(), strata)

    def summary(self, prefix: str) -> Dict[str, float]:
        """The aggregate row columns (same names/conventions as ``aggregate``)."""
        moments = self.moments
        if moments.count == 0:
            return {f"{prefix}_n": 0}
        out: Dict[str, float] = {
            f"{prefix}_n": int(moments.count),
            f"{prefix}_mean": float(moments.mean),
            f"{prefix}_std": float(moments.std),
            f"{prefix}_min": float(moments.minimum),
            f"{prefix}_max": float(moments.maximum),
        }
        estimates = sorted(est.value() for est in self.estimators)
        for q, estimate in zip(self.quantiles, estimates):
            out[f"{prefix}_q{int(round(q * 100))}"] = float(estimate)
        if self.ci is not None:
            out.update(self.ci.columns(prefix))
        return out
