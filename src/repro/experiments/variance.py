"""Variance reduction and confidence intervals for Monte-Carlo replication.

The paper's guideline-vs-optimal comparisons rank schedulers whose
expected guaranteed work is often near-tied; raw mean/std columns cannot
say when two points are *distinguishable*.  This module adds the
statistical machinery:

* **variance modes** (:data:`VARIANCE_MODES`) selecting how replication
  seeds are drawn — ``"none"`` (independent, the historical behaviour,
  byte-identical to the pre-variance pipeline), ``"antithetic"``
  (replication pairs on a common uniform stream and its complement, via
  :class:`repro.core.sampling.PairedSeed` /
  :class:`~repro.core.sampling.AntitheticRng`), and ``"stratified"``
  (the *same* independent seeds as ``"none"`` — so every existing column
  stays bitwise identical — with post-stratified standard errors over
  observed interrupt-count strata);
* :class:`CiAccumulator` — a strictly sequential confidence-interval
  accumulator emitting ``{prefix}_sem/_ci_lo/_ci_hi`` (the
  mode-appropriate normal-theory interval) and
  ``{prefix}_sem_bm/_ci_lo_bm/_ci_hi_bm`` (a bootstrap-free batch-means
  variant, robust to within-stream dependence) that composes with the
  streaming P² quantile path and is **bit-identical under any chunking**
  (the internal batch size is fixed, never the streaming chunk size);
* :func:`replication_seed` — the one place pair seeds are derived:
  replication ``r`` of an antithetic run shares
  ``point_seed(base_seed, key, r - (r % 2))`` with its pair partner and
  carries ``r % 2`` as the pair member, so seeds depend only on absolute
  replication indices and resume/chunking can never change a result.

Statistical conventions
-----------------------
``antithetic`` treats each *pair mean* as one i.i.d. observation: with
``m = n/2`` pairs, ``sem = std(pair_means, ddof=1) / sqrt(m)``.  The
point estimate (the overall mean) equals the mean of pair means exactly.

``stratified`` reports Cochran's post-stratification standard error over
the observed interrupt-count strata (capped at :data:`STRATA_CAP`):
``sem^2 = (1/n) * sum_h W_h s_h^2 + (1/n^2) * sum_h (1 - W_h) s_h^2``
with ``W_h = n_h / n`` and singleton strata contributing the pooled
sample variance.  The interval is *conditional on the observed
interrupt-count allocation* — the right instrument for ranking
schedulers that face identical adversary traces, where the allocation is
common to all contenders.  Statistics that are functions of the stratum
variable itself (interrupt and episode counts) keep the plain i.i.d.
standard error.

The batch-means columns use fixed consecutive batches of
:data:`BATCH_MEANS_SIZE` replications (even, so antithetic pairs never
straddle a batch boundary) and fall back to the mode's primary ``sem``
below two batches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..core.sampling import AntitheticRng, PairedSeed, reseed, spawn_rng
from .grid import point_seed

__all__ = ["VARIANCE_MODES", "resolve_variance", "replication_seed",
           "CiAccumulator", "Z95", "BATCH_MEANS_SIZE", "STRATA_CAP",
           "PairedSeed", "AntitheticRng", "spawn_rng", "reseed"]

#: Recognised variance-reduction modes.
VARIANCE_MODES = ("none", "antithetic", "stratified")

#: Two-sided 95% normal critical value, pinned so CI columns are
#: bit-reproducible across platforms and scipy-free.
Z95 = 1.959963984540054

#: Replications per batch for the batch-means standard error.  Fixed and
#: even: independent of the streaming chunk size (so CI columns are
#: bit-identical across chunkings) and aligned with antithetic pairs.
BATCH_MEANS_SIZE = 64

#: Interrupt-count strata above this are pooled into one tail stratum.
STRATA_CAP = 32


def resolve_variance(variance: str, replications: Optional[int] = None) -> str:
    """Validate a variance mode (and the replication count it requires).

    ``"antithetic"`` pairs replications ``(2k, 2k+1)``, so it requires an
    even replication count — rejecting odd counts up front beats silently
    leaving one unpaired replication with the wrong weight.
    """
    if variance not in VARIANCE_MODES:
        raise ValueError(f"unknown variance {variance!r}; "
                         f"known: {list(VARIANCE_MODES)}")
    if (variance == "antithetic" and replications is not None
            and int(replications) % 2):
        raise ValueError(
            f"variance='antithetic' pairs replications and needs an even "
            f"replication count, got {replications!r}")
    return variance


def replication_seed(base_seed: int, key, r: int, variance: str = "none"):
    """The seed for replication ``r`` under a variance mode.

    ``"none"`` and ``"stratified"`` use the historical independent seed
    ``point_seed(base_seed, key, r)`` — stratification changes only the
    standard-error estimate, never a single draw.  ``"antithetic"``
    returns a :class:`PairedSeed`: both members of pair ``k`` share
    ``point_seed(base_seed, key, 2k)`` and differ only in the member tag,
    so the pairing depends on absolute indices alone (chunk- and
    resume-invariant) and member 0 reproduces the ``"none"`` stream of
    the even replication bitwise.
    """
    if variance == "antithetic":
        member = int(r) % 2
        return PairedSeed(point_seed(base_seed, key, int(r) - member), member)
    return point_seed(base_seed, key, r)


class _Welford:
    """Minimal sequential mean/variance state (no NaN checks, no min/max)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (``ddof=1``); ``0.0`` below two values."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)


class CiAccumulator:
    """Streaming standard errors and 95% CIs for one replicated statistic.

    Strictly sequential (every internal estimator consumes the stream one
    value at a time in replication order), so its columns are
    bit-identical no matter how the stream is chunked, and identical
    between the exact and streaming aggregation paths.  NaN screening is
    the caller's job — values reach this accumulator only after
    :func:`repro.experiments.montecarlo.aggregate` or the streaming
    accumulators have already rejected NaN.

    ``mode`` selects the primary standard error: ``"none"`` the plain
    i.i.d. ``std/sqrt(n)``, ``"antithetic"`` the pair-means estimator,
    ``"stratified"`` Cochran's post-stratified estimator over the strata
    labels passed alongside each value (see the module docstring).
    """

    __slots__ = ("mode", "batch_size", "_overall", "_pairs", "_pending",
                 "_have_pending", "_strata", "_batches", "_batch_sum",
                 "_batch_count")

    def __init__(self, mode: str = "none", batch_size: int = BATCH_MEANS_SIZE):
        if mode not in VARIANCE_MODES:
            raise ValueError(f"unknown variance {mode!r}; "
                             f"known: {list(VARIANCE_MODES)}")
        self.mode = mode
        self.batch_size = int(batch_size)
        self._overall = _Welford()
        self._pairs = _Welford()
        self._pending = 0.0
        self._have_pending = False
        self._strata: Dict[int, _Welford] = {}
        self._batches = _Welford()
        self._batch_sum = 0.0
        self._batch_count = 0

    @property
    def count(self) -> int:
        return self._overall.count

    def update(self, value: float, stratum: Optional[float] = None) -> None:
        value = float(value)
        self._overall.update(value)
        self._batch_sum += value
        self._batch_count += 1
        if self._batch_count == self.batch_size:
            self._batches.update(self._batch_sum / self._batch_count)
            self._batch_sum = 0.0
            self._batch_count = 0
        if self.mode == "antithetic":
            if self._have_pending:
                self._pairs.update((self._pending + value) / 2.0)
                self._have_pending = False
            else:
                self._pending = value
                self._have_pending = True
        elif self.mode == "stratified":
            label = 0 if stratum is None else min(int(stratum), STRATA_CAP)
            cell = self._strata.get(label)
            if cell is None:
                cell = self._strata[label] = _Welford()
            cell.update(value)

    def extend(self, values: Iterable[float],
               strata: Optional[Iterable[float]] = None) -> None:
        if strata is None:
            for value in values:
                self.update(value)
        else:
            for value, stratum in zip(values, strata):
                self.update(value, stratum)

    # -- standard errors --------------------------------------------------
    def _plain_sem(self) -> float:
        n = self._overall.count
        if n < 2:
            return 0.0
        return math.sqrt(self._overall.variance / n)

    def _antithetic_sem(self) -> float:
        # Pair means are i.i.d.; an unpaired trailing value (impossible in
        # the replication pipeline, which enforces even counts, but legal
        # for direct users) counts as a singleton pair.
        count = self._pairs.count
        mean = self._pairs.mean
        m2 = self._pairs.m2
        if self._have_pending:
            count += 1
            delta = self._pending - mean
            mean += delta / count
            m2 += delta * (self._pending - mean)
        if count < 2:
            return self._plain_sem()
        return math.sqrt(m2 / (count - 1) / count)

    def _stratified_sem(self) -> float:
        n = self._overall.count
        if n < 2:
            return 0.0
        pooled = self._overall.variance
        within = 0.0
        correction = 0.0
        for cell in self._strata.values():
            weight = cell.count / n
            cell_var = cell.variance if cell.count > 1 else pooled
            within += weight * cell_var
            correction += (1.0 - weight) * cell_var
        return math.sqrt(within / n + correction / (n * n))

    def _batch_means_sem(self, fallback: float) -> float:
        count = self._batches.count
        mean = self._batches.mean
        m2 = self._batches.m2
        if self._batch_count:
            partial = self._batch_sum / self._batch_count
            count += 1
            delta = partial - mean
            mean += delta / count
            m2 += delta * (partial - mean)
        if count < 2:
            return fallback
        return math.sqrt(m2 / (count - 1) / count)

    def columns(self, prefix: str) -> Dict[str, float]:
        """The ``{prefix}_sem/_ci_lo/_ci_hi`` (+ ``_bm``) row columns."""
        if self._overall.count == 0:
            return {}
        if self.mode == "antithetic":
            sem = self._antithetic_sem()
        elif self.mode == "stratified":
            sem = self._stratified_sem()
        else:
            sem = self._plain_sem()
        sem_bm = self._batch_means_sem(sem)
        mean = self._overall.mean
        return {
            f"{prefix}_sem": float(sem),
            f"{prefix}_ci_lo": float(mean - Z95 * sem),
            f"{prefix}_ci_hi": float(mean + Z95 * sem),
            f"{prefix}_sem_bm": float(sem_bm),
            f"{prefix}_ci_lo_bm": float(mean - Z95 * sem_bm),
            f"{prefix}_ci_hi_bm": float(mean + Z95 * sem_bm),
        }
