"""Parallel experiment orchestrator.

Fans a :class:`~repro.experiments.grid.SweepGrid` out over a
``concurrent.futures`` worker pool and assembles one result row per point:

* **guaranteed work** — the exact worst case of the point's scheduler,
  via the minimax referee (always computed);
* **DP optimum** — ``W^(p)[U]`` from the two-level
  :class:`~repro.experiments.cache.DPTableCache` (optional; only for
  integer-valued parameters);
* **Monte-Carlo statistics** — mean/std/quantiles over ``N`` randomized
  owner traces (optional; only for points that name an adversary).

Three properties the tests pin down:

1. **Determinism.**  Rows depend only on ``(grid, seed, replications)`` —
   never on ``jobs``, worker scheduling or iteration order — because every
   replication is seeded from its own ``(point index, replication index)``
   coordinates.
2. **Serial equivalence.**  ``jobs=1`` runs everything in-process (no pool,
   easier debugging, identical rows).
3. **Solve-once DP.**  Workers share the on-disk cache level through
   ``cache_dir``, and each process keeps a memory-level cache, so a DP
   table is computed once per ``(L, c, p, method)`` across the whole sweep
   — and across *repeated* sweeps when ``cache_dir`` persists.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.gap import measure_guaranteed_work
from .cache import DPTableCache
from .grid import SweepGrid, SweepPoint, make_scheduler
from .montecarlo import replicate_point

__all__ = ["ExperimentConfig", "run_sweep", "parallel_map"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a worker needs besides the point itself (picklable)."""

    replications: int = 0
    seed: int = 0
    cache_dir: Optional[str] = None
    dp_method: str = "fast"
    include_optimal: bool = False
    include_guaranteed: bool = True
    backend: str = "event"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# One memory-level DP cache per worker process, keyed by cache directory so
# a worker reused across sweeps with different directories stays correct.
_worker_caches: Dict[Optional[str], DPTableCache] = {}


def _worker_cache(cache_dir: Optional[str]) -> DPTableCache:
    cache = _worker_caches.get(cache_dir)
    if cache is None:
        cache = DPTableCache(cache_dir=cache_dir)
        _worker_caches[cache_dir] = cache
    return cache


def _evaluate_point(payload: Tuple[SweepPoint, ExperimentConfig]) -> Dict[str, Any]:
    """Compute one result row.  Module-level so it pickles to worker processes."""
    point, config = payload
    params = point.params()
    row: Dict[str, Any] = point.key_columns()

    if config.include_guaranteed:
        scheduler = make_scheduler(point.scheduler, params)
        guaranteed = measure_guaranteed_work(scheduler, params)
        row["guaranteed_work"] = guaranteed
        row["efficiency"] = guaranteed / params.lifespan

    if config.include_optimal:
        L, c = params.lifespan, params.setup_cost
        if float(L).is_integer() and float(c).is_integer():
            table = _worker_cache(config.cache_dir).solve(
                int(L), int(c), params.max_interrupts, method=config.dp_method)
            optimal = table.value(params.max_interrupts, int(L))
            row["optimal_work"] = float(optimal)
            if config.include_guaranteed:
                row["gap"] = float(optimal) - row["guaranteed_work"]

    if config.replications > 0 and point.adversary is not None:
        row.update(replicate_point(point, config.replications,
                                   base_seed=config.seed,
                                   backend=config.backend))
    return row


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:  # 0 / None: one worker per CPU
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def parallel_map(func: Callable[[Any], Any], payloads: Sequence[Any],
                 *, jobs: int = 1, chunksize: Optional[int] = None) -> List[Any]:
    """Order-preserving map over a process pool (serial when ``jobs <= 1``).

    ``func`` must be a module-level callable and every payload picklable
    when ``jobs > 1``.  Results come back in payload order regardless of
    which worker finished first.
    """
    payloads = list(payloads)
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [func(p) for p in payloads]
    if chunksize is None:
        chunksize = max(1, len(payloads) // (4 * jobs))
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(func, payloads, chunksize=chunksize))


def run_sweep(grid: SweepGrid, *, jobs: int = 1, replications: int = 0,
              seed: int = 0, cache_dir: Optional[str] = None,
              include_optimal: bool = False, dp_method: str = "fast",
              include_guaranteed: bool = True,
              backend: str = "event") -> List[Dict[str, Any]]:
    """Run a full sweep and return one row per grid point, in grid order.

    Parameters
    ----------
    grid:
        The parameter grid to expand.
    jobs:
        Worker processes (``1`` = in-process serial; ``0`` = one per CPU).
    replications:
        Monte-Carlo replications per point (``0`` disables the layer;
        points without an adversary are always purely analytic).
    seed:
        Base seed for the deterministic per-(point, replication) seeding.
    cache_dir:
        Directory for the shared on-disk DP-table cache level.
    include_optimal:
        Also compute the exact DP optimum (and the gap to it) for
        integer-valued parameter points.
    dp_method:
        DP solver method (``"fast"`` or ``"reference"``).
    include_guaranteed:
        Compute the exact worst-case (guaranteed) work per point.  Switch
        off for sweeps that only need the Monte-Carlo layer.
    backend:
        Replication backend: ``"event"`` (reference, one game per trace) or
        ``"batch"`` (vectorized, see
        :mod:`repro.experiments.montecarlo`).  Aggregates agree to float
        summation order for the same seeds.
    """
    from .montecarlo import _check_backend

    _check_backend(backend)
    config = ExperimentConfig(replications=int(replications), seed=int(seed),
                              cache_dir=cache_dir, dp_method=dp_method,
                              include_optimal=bool(include_optimal),
                              include_guaranteed=bool(include_guaranteed),
                              backend=str(backend))
    payloads = [(point, config) for point in grid.points()]
    return parallel_map(_evaluate_point, payloads, jobs=jobs)
