"""Parallel experiment orchestrator.

Fans a :class:`~repro.experiments.grid.SweepGrid` out over a
``concurrent.futures`` worker pool and assembles one result row per point:

* **guaranteed work** — the exact worst case of the point's scheduler,
  via the minimax referee (always computed);
* **DP optimum** — ``W^(p)[U]`` from the two-level
  :class:`~repro.experiments.cache.DPTableCache` (optional; only for
  integer-valued parameters);
* **Monte-Carlo statistics** — mean/std/quantiles over ``N`` randomized
  owner traces (optional; only for points that name an adversary).

Three properties the tests pin down:

1. **Determinism.**  Rows depend only on ``(grid, seed, replications)`` —
   never on ``jobs``, worker scheduling or iteration order — because every
   replication is seeded from its own ``(point index, replication index)``
   coordinates.
2. **Serial equivalence.**  ``jobs=1`` runs everything in-process (no pool,
   easier debugging, identical rows).
3. **Solve-once DP.**  Workers share the on-disk cache level through
   ``cache_dir``, and each process keeps a memory-level cache, so a DP
   table is computed once per ``(L, c, p, method)`` across the whole sweep
   — and across *repeated* sweeps when ``cache_dir`` persists.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.gap import measure_guaranteed_work
from .cache import (
    DPTableCache,
    SharedTableHandle,
    SharedTablePublisher,
    attach_shared_table,
    shared_cache,
)
from .grid import SweepGrid, SweepPoint, make_scheduler
from .montecarlo import replicate_point
from .profiling import aggregate_profiles, pop_profile, render_profile, stage_column

__all__ = ["ExperimentConfig", "run_sweep", "parallel_map",
           "publish_shared_tables", "shared_table_keys"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a worker needs besides the point itself (picklable)."""

    replications: int = 0
    seed: int = 0
    cache_dir: Optional[str] = None
    dp_method: str = "fast"
    include_optimal: bool = False
    include_guaranteed: bool = True
    backend: str = "event"
    #: Monte-Carlo aggregation mode: ``"exact"``, ``"streaming"`` or
    #: ``"auto"`` (see :mod:`repro.experiments.montecarlo`).
    aggregation: str = "auto"
    #: Streaming chunk size (replications per chunk); ``None`` auto-sizes
    #: from the replication count.  Never affects results, only memory.
    chunk_size: Optional[int] = None
    #: Variance-reduction mode: ``"none"``, ``"antithetic"`` or
    #: ``"stratified"`` (see :mod:`repro.experiments.variance`).  Non-default
    #: modes add ``{prefix}_sem/_ci_lo/_ci_hi`` columns to replicated rows.
    variance: str = "none"
    #: DP tables the driver published to shared memory (attach-by-name in
    #: workers; empty = every worker resolves tables itself).
    shared_tables: Tuple[SharedTableHandle, ...] = ()
    #: Return per-stage wall-time columns with every row (see
    #: :mod:`repro.experiments.profiling`).
    profile: bool = False


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# One memory-level DP cache per worker process, keyed by cache directory so
# a worker reused across sweeps with different directories stays correct.
_worker_caches: Dict[Optional[str], DPTableCache] = {}


def _worker_cache(cache_dir: Optional[str]) -> DPTableCache:
    cache = _worker_caches.get(cache_dir)
    if cache is None:
        cache = DPTableCache(cache_dir=cache_dir)
        _worker_caches[cache_dir] = cache
    return cache


#: (cache_dir, block name) pairs already attached and preloaded here.
_adopted_tables: Set[Tuple[Optional[str], str]] = set()


def _adopt_shared_tables(config: ExperimentConfig) -> None:
    """Attach the driver's published DP tables into this process's caches.

    Preloads each attached (zero-copy) table into both the per-worker
    :class:`DPTableCache` and the process-wide shared cache, so every
    solve path — the optimal column and the ``dp-optimal`` scheduler
    factory — reads the one machine-wide copy.  A handle whose block has
    vanished (driver already exited) is skipped; the worker then solves
    normally, which is only slower, never wrong.
    """
    for handle in config.shared_tables:
        marker = (config.cache_dir, handle.block_name)
        if marker in _adopted_tables:
            continue
        try:
            table = attach_shared_table(handle)
        except (OSError, ValueError):
            continue
        _worker_cache(config.cache_dir).preload(table, method=handle.key[3])
        shared_cache().preload(table, method=handle.key[3])
        _adopted_tables.add(marker)


def _evaluate_point(payload: Tuple[SweepPoint, ExperimentConfig]) -> Dict[str, Any]:
    """Compute one result row.  Module-level so it pickles to worker processes."""
    point, config = payload
    params = point.params()
    row: Dict[str, Any] = point.key_columns()
    if config.shared_tables:
        _adopt_shared_tables(config)
    profile = config.profile

    if config.include_guaranteed:
        scheduler = make_scheduler(point.scheduler, params)
        started = time.perf_counter() if profile else 0.0
        guaranteed = measure_guaranteed_work(scheduler, params)
        if profile:
            row[stage_column("referee")] = time.perf_counter() - started
        row["guaranteed_work"] = guaranteed
        row["efficiency"] = guaranteed / params.lifespan

    if config.include_optimal:
        L, c = params.lifespan, params.setup_cost
        if float(L).is_integer() and float(c).is_integer():
            started = time.perf_counter() if profile else 0.0
            table = _worker_cache(config.cache_dir).solve(
                int(L), int(c), params.max_interrupts, method=config.dp_method)
            if profile:
                row[stage_column("dp_solve")] = time.perf_counter() - started
            optimal = table.value(params.max_interrupts, int(L))
            row["optimal_work"] = float(optimal)
            if config.include_guaranteed:
                row["gap"] = float(optimal) - row["guaranteed_work"]

    if config.replications > 0 and point.adversary is not None:
        started = time.perf_counter() if profile else 0.0
        chunk_profile: Optional[Dict[str, float]] = {} if profile else None
        row.update(replicate_point(point, config.replications,
                                   base_seed=config.seed,
                                   backend=config.backend,
                                   aggregation=config.aggregation,
                                   chunk_size=config.chunk_size,
                                   variance=config.variance,
                                   profile=chunk_profile))
        if profile:
            row[stage_column("monte_carlo")] = time.perf_counter() - started
            for key, value in (chunk_profile or {}).items():
                row[stage_column(key)] = value
    return row


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:  # 0 / None: one worker per CPU
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def shared_table_keys(points: Sequence[SweepPoint],
                      config: ExperimentConfig) -> List[Tuple[int, int, int]]:
    """Distinct integer DP ``(L, c, p)`` keys the worker fleet will need.

    Public because the distributed executor asks the same question per
    leased point: which tables must be fetched from the coordinator's
    table service before this point can be evaluated locally.  Sorted for
    deterministic publish order.
    """
    keys: Set[Tuple[int, int, int]] = set()
    for point in points:
        if not (config.include_optimal or point.scheduler == "dp-optimal"):
            continue
        L, c = float(point.lifespan), float(point.setup_cost)
        if L.is_integer() and c.is_integer():
            keys.add((int(L), int(c), int(point.max_interrupts)))
    return sorted(keys)


#: Backwards-compatible alias (pre-distributed name).
_shared_table_keys = shared_table_keys


def publish_shared_tables(points: Sequence[SweepPoint],
                          config: ExperimentConfig,
                          *, cache: Optional[DPTableCache] = None,
                          publisher: Optional[SharedTablePublisher] = None
                          ) -> Tuple[Optional[SharedTablePublisher],
                                     ExperimentConfig]:
    """Solve the sweep's DP tables once and publish them to shared memory.

    Called by the driver before fanning points out to worker processes:
    every distinct integer ``(L, c, p)`` key the grid needs — for the
    optimal column or a ``dp-optimal`` scheduler point — is solved in the
    driver (through ``cache``, so disk levels still help) and copied into
    one shared-memory block.  Returns the publisher (close it in a
    ``finally``; ``None`` when there is nothing to share) and the config
    carrying the attach-by-name handles for the workers.

    With ``publisher`` given, publication goes through that externally
    owned (e.g. service-lifetime) publisher instead: already-published
    keys are reused across calls, the returned config carries only *this*
    call's handles, and the returned publisher is ``None`` — ownership
    (and ``close()``) stays with the caller.

    If shared memory is unavailable (e.g. an exhausted ``/dev/shm``) the
    sweep falls back to per-worker solving — slower and per-worker RSS
    grows again, but results are identical.
    """
    keys = _shared_table_keys(points, config)
    if not keys:
        return None, config
    cache = cache if cache is not None else DPTableCache(cache_dir=config.cache_dir)
    owned = publisher is None
    pub = SharedTablePublisher() if owned else publisher
    handles: List[SharedTableHandle] = []
    try:
        for L, c, p in keys:
            handles.append(
                pub.publish(cache.solve(L, c, p, method=config.dp_method),
                            method=config.dp_method))
    except OSError:
        if owned:
            pub.close()
        return None, config
    return (pub if owned else None), replace(config,
                                             shared_tables=tuple(handles))


def parallel_map(func: Callable[[Any], Any], payloads: Sequence[Any],
                 *, jobs: int = 1, chunksize: Optional[int] = None) -> List[Any]:
    """Order-preserving map over a process pool (serial when ``jobs <= 1``).

    ``func`` must be a module-level callable and every payload picklable
    when ``jobs > 1``.  Results come back in payload order regardless of
    which worker finished first.
    """
    payloads = list(payloads)
    jobs = _resolve_jobs(jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [func(p) for p in payloads]
    if chunksize is None:
        chunksize = max(1, len(payloads) // (4 * jobs))
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(func, payloads, chunksize=chunksize))


def run_sweep(grid: SweepGrid, *, jobs: int = 1, replications: int = 0,
              seed: int = 0, cache_dir: Optional[str] = None,
              include_optimal: bool = False, dp_method: str = "fast",
              include_guaranteed: bool = True,
              backend: str = "event",
              aggregation: str = "auto",
              chunk_size: Optional[int] = None,
              variance: str = "none",
              profile: bool = False) -> List[Dict[str, Any]]:
    """Run a full sweep and return one row per grid point, in grid order.

    Parameters
    ----------
    grid:
        The parameter grid to expand.
    jobs:
        Worker processes (``1`` = in-process serial; ``0`` = one per CPU).
    replications:
        Monte-Carlo replications per point (``0`` disables the layer;
        points without an adversary are always purely analytic).
    seed:
        Base seed for the deterministic per-(point, replication) seeding.
    cache_dir:
        Directory for the shared on-disk DP-table cache level.
    include_optimal:
        Also compute the exact DP optimum (and the gap to it) for
        integer-valued parameter points.
    dp_method:
        DP solver method (``"fast"`` or ``"reference"``).
    include_guaranteed:
        Compute the exact worst-case (guaranteed) work per point.  Switch
        off for sweeps that only need the Monte-Carlo layer.
    backend:
        Replication backend: ``"event"`` (reference, one game per trace) or
        ``"batch"`` (vectorized, see
        :mod:`repro.experiments.montecarlo`).  Aggregates agree to float
        summation order for the same seeds.
    aggregation:
        Monte-Carlo aggregation mode: ``"exact"`` (one-shot arrays, exact
        quantiles), ``"streaming"`` (chunked online accumulators, flat
        memory in ``replications``, P² quantile estimates) or ``"auto"``
        (exact at or below the streaming threshold, streaming above).
    chunk_size:
        Streaming chunk size (replications per chunk); ``None`` auto-sizes
        from the replication count.  Chunking never changes results.
    variance:
        Variance-reduction mode: ``"none"`` (independent seeds, the
        historical behaviour), ``"antithetic"`` (paired interrupt traces)
        or ``"stratified"`` (post-stratified standard errors; identical
        seeds and base columns to ``"none"``).  Non-default modes add CI
        columns (``{prefix}_sem/_ci_lo/_ci_hi`` and ``_bm`` variants) and
        a ``variance`` label to replicated rows; ``"antithetic"`` needs an
        even replication count.
    profile:
        Collect a per-stage wall-time breakdown (referee / DP solve /
        Monte-Carlo) and print it to stderr when the sweep finishes.  The
        profile columns never appear in the returned rows.

    Notes
    -----
    With ``jobs > 1``, every DP table the sweep needs (the optimal column,
    ``dp-optimal`` scheduler points) is solved once in the driver and
    *published to shared memory*; workers attach by name instead of
    solving or loading their own copies, so worker RSS is independent of
    ``jobs`` (see :func:`publish_shared_tables` and
    ``benchmarks/results/shared_dp_memory.*``).
    """
    from .montecarlo import (
        _check_backend,
        resolve_aggregation,
        resolve_chunk_size,
        resolve_variance,
    )

    _check_backend(backend)
    resolve_aggregation(aggregation, int(replications))
    if chunk_size is not None:
        resolve_chunk_size(chunk_size, int(replications))
    resolve_variance(variance, int(replications) if replications else None)
    config = ExperimentConfig(replications=int(replications), seed=int(seed),
                              cache_dir=cache_dir, dp_method=dp_method,
                              include_optimal=bool(include_optimal),
                              include_guaranteed=bool(include_guaranteed),
                              backend=str(backend),
                              aggregation=str(aggregation),
                              chunk_size=(None if chunk_size is None
                                          else int(chunk_size)),
                              variance=str(variance),
                              profile=bool(profile))
    points = grid.points()
    publisher: Optional[SharedTablePublisher] = None
    if _resolve_jobs(jobs) > 1 and len(points) > 1:
        publisher, config = publish_shared_tables(points, config)
    started = time.perf_counter()
    try:
        rows = parallel_map(_evaluate_point,
                            [(point, config) for point in points], jobs=jobs)
    finally:
        if publisher is not None:
            publisher.close()
    if profile:
        totals = aggregate_profiles([pop_profile(row) for row in rows])
        print(render_profile(totals,
                             wall_seconds=time.perf_counter() - started,
                             points=len(rows), jobs=_resolve_jobs(jobs)),
              file=sys.stderr)
    return rows
