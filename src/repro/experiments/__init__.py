"""Experiment harness: parallel sweeps, Monte-Carlo replication, DP caching.

This subsystem turns the library's one-off analyses into a scalable
experiment pipeline:

* :mod:`repro.experiments.grid` — declarative sweep grids (lifespan ×
  set-up cost × interrupts × scheduler × adversary) with deterministic,
  process-independent per-point seeding;
* :mod:`repro.experiments.cache` — a two-level (in-process LRU + on-disk
  ``.npz``) cache of solved ``W^(p)[L]`` tables keyed by
  ``(L, c, p, method)``;
* :mod:`repro.experiments.montecarlo` — N-replication statistics over the
  stochastic owners and randomized scenario families;
* :mod:`repro.experiments.orchestrator` — the ``concurrent.futures`` fan-out
  driving it all, exposed on the CLI as ``cycle-stealing sweep``.
"""

from .cache import (
    CacheStats,
    DPTableCache,
    cached_solve,
    configure_shared_cache,
    shared_cache,
)
from .grid import (
    SweepGrid,
    SweepPoint,
    adversary_names,
    make_adversary,
    make_scheduler,
    point_seed,
    scheduler_names,
)
from .montecarlo import BACKENDS, aggregate, replicate_point, replicate_scenario
from .orchestrator import ExperimentConfig, parallel_map, run_sweep

__all__ = [
    "CacheStats",
    "DPTableCache",
    "cached_solve",
    "configure_shared_cache",
    "shared_cache",
    "SweepGrid",
    "SweepPoint",
    "point_seed",
    "make_scheduler",
    "make_adversary",
    "scheduler_names",
    "adversary_names",
    "BACKENDS",
    "aggregate",
    "replicate_point",
    "replicate_scenario",
    "ExperimentConfig",
    "parallel_map",
    "run_sweep",
]
