"""Sweep grids: parameter points, registries and deterministic seeding.

A sweep is the Cartesian product of lifespans × set-up costs × interrupt
budgets × schedulers × adversaries.  Because the orchestrator fans points
out over worker *processes*, a point carries only plain data — scheduler
and adversary are referenced **by registry name** (see
:mod:`repro.registry`, where downstream code can add its own entries) and
instantiated inside the worker.  This keeps every payload picklable and,
more importantly, makes results independent of how points are assigned to
workers.

Seeding is deterministic and collision-resistant: :func:`point_seed`
derives a 63-bit seed from SHA-256 of the base seed plus the point's
coordinates (never from Python's salted ``hash``), so replication ``r`` of
point ``i`` samples the same owner trace no matter which process runs it,
in which order, on which machine.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import InvalidParameterError
from ..core.params import CycleStealingParams
from ..registry import ADVERSARIES, SCHEDULERS

__all__ = [
    "SweepPoint",
    "SweepGrid",
    "point_seed",
    "make_scheduler",
    "make_adversary",
    "scheduler_names",
    "adversary_names",
]


def point_seed(base_seed: int, *coordinates) -> int:
    """Stable 63-bit seed for one (point, replication, ...) coordinate tuple.

    Uses SHA-256 of the ``repr`` of the inputs, so the value is identical
    across processes and Python invocations (unlike the built-in ``hash``,
    which is salted per process).
    """
    payload = repr((int(base_seed),) + tuple(coordinates)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


# ----------------------------------------------------------------------
# Built-in registry entries (names -> factories), used inside workers.
# The canonical registries live in repro.registry; this module registers
# the built-ins and re-exports Mapping views under the historical names.
# ----------------------------------------------------------------------
def _fixed_period(params: CycleStealingParams):
    from ..schedules import FixedPeriodScheduler
    return FixedPeriodScheduler(period_length=max(10.0, params.lifespan / 50.0))


def _dp_optimal(params: CycleStealingParams):
    """The exactly-optimal DP scheduler, via the shared solve-once cache.

    Requires integer-valued lifespan and set-up cost (the DP grid);
    :func:`repro.analysis.gap.dp_table_for` raises a clear error otherwise.
    """
    from ..analysis.gap import dp_table_for
    from ..schedules import DPOptimalScheduler
    return DPOptimalScheduler(dp_table_for(params))


def _simple(name: str) -> Callable[[CycleStealingParams], object]:
    def factory(_params: CycleStealingParams):
        from .. import schedules
        return getattr(schedules, name)()
    factory.__name__ = f"make_{name}"
    return factory


for _name, _factory in {
    "equalizing-adaptive": _simple("EqualizingAdaptiveScheduler"),
    "rosenberg-adaptive": _simple("RosenbergAdaptiveScheduler"),
    "rosenberg-nonadaptive": _simple("RosenbergNonAdaptiveScheduler"),
    "single-period": _simple("SinglePeriodScheduler"),
    "equal-split": _simple("EqualSplitScheduler"),
    "geometric": _simple("GeometricPeriodScheduler"),
    "fixed-period": _fixed_period,
    "dp-optimal": _dp_optimal,
}.items():
    if _name not in SCHEDULERS:
        SCHEDULERS.register(_name, _factory)

#: Scheduler factories: ``name -> factory(params) -> scheduler``
#: (a read-only view of :data:`repro.registry.SCHEDULERS`).
SCHEDULER_FACTORIES = SCHEDULERS


def _poisson_owner(params: CycleStealingParams, seed: Optional[int]):
    from ..adversary import PoissonOwner
    rate = max(params.max_interrupts, 1) / params.lifespan
    return PoissonOwner(rate=rate, seed=seed)


def _uniform_owner(params: CycleStealingParams, seed: Optional[int]):
    from ..adversary import UniformResidualOwner
    return UniformResidualOwner(reclaim_probability=1.0, seed=seed)


def _random_period(params: CycleStealingParams, seed: Optional[int]):
    from ..adversary import RandomPeriodAdversary
    return RandomPeriodAdversary(probability=0.8, seed=seed)


def _never(params: CycleStealingParams, seed: Optional[int]):
    from ..adversary import NeverInterruptAdversary
    return NeverInterruptAdversary()


def _last_period(params: CycleStealingParams, seed: Optional[int]):
    from ..adversary import LastPeriodAdversary
    return LastPeriodAdversary()


for _name, _factory in {
    "poisson-owner": _poisson_owner,
    "uniform-owner": _uniform_owner,
    "random-period": _random_period,
    "never": _never,
    "last-period": _last_period,
}.items():
    if _name not in ADVERSARIES:
        ADVERSARIES.register(_name, _factory)

#: Adversary factories: ``name -> factory(params, seed) -> adversary``
#: (a read-only view of :data:`repro.registry.ADVERSARIES`).
#: Stochastic owners consume the seed; deterministic ones ignore it.
ADVERSARY_FACTORIES = ADVERSARIES


def scheduler_names() -> List[str]:
    """Registered scheduler names, for CLI choices and error messages."""
    return SCHEDULERS.names()


def adversary_names() -> List[str]:
    """Registered adversary names, for CLI choices and error messages."""
    return ADVERSARIES.names()


def make_scheduler(name: str, params: CycleStealingParams):
    """Instantiate a registered scheduler for the given opportunity."""
    return SCHEDULERS.create(name, params)


def make_adversary(name: str, params: CycleStealingParams,
                   seed: Optional[int] = None):
    """Instantiate a registered adversary (seeded when stochastic)."""
    return ADVERSARIES.create(name, params, seed)


# ----------------------------------------------------------------------
# Grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified parameter point of a sweep (plain, picklable data)."""

    index: int
    lifespan: float
    setup_cost: float
    max_interrupts: int
    scheduler: str
    adversary: Optional[str] = None

    def params(self) -> CycleStealingParams:
        """The opportunity parameters of this point."""
        return CycleStealingParams(lifespan=float(self.lifespan),
                                   setup_cost=float(self.setup_cost),
                                   max_interrupts=int(self.max_interrupts))

    def key_columns(self) -> Dict[str, object]:
        """The identifying columns shared by every result row of this point."""
        out: Dict[str, object] = {
            "scheduler": self.scheduler,
            "lifespan": float(self.lifespan),
            "setup_cost": float(self.setup_cost),
            "max_interrupts": int(self.max_interrupts),
        }
        if self.adversary is not None:
            out["adversary"] = self.adversary
        return out


@dataclass(frozen=True)
class SweepGrid:
    """The Cartesian product defining a sweep.

    ``adversaries`` may be empty: the sweep is then purely analytic
    (guaranteed work, optionally DP optima) with no Monte-Carlo layer.
    """

    lifespans: Tuple[float, ...]
    setup_costs: Tuple[float, ...] = (1.0,)
    interrupt_budgets: Tuple[int, ...] = (1,)
    schedulers: Tuple[str, ...] = ("equalizing-adaptive",)
    adversaries: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "lifespans",
                           tuple(float(u) for u in self.lifespans))
        object.__setattr__(self, "setup_costs",
                           tuple(float(c) for c in self.setup_costs))
        object.__setattr__(self, "interrupt_budgets",
                           tuple(int(p) for p in self.interrupt_budgets))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "adversaries", tuple(self.adversaries))
        if not self.lifespans or not self.setup_costs \
                or not self.interrupt_budgets or not self.schedulers:
            raise InvalidParameterError(
                "a sweep grid needs at least one lifespan, setup cost, "
                "interrupt budget and scheduler")
        for name in self.schedulers:
            if name not in SCHEDULER_FACTORIES:
                raise InvalidParameterError(
                    f"unknown scheduler {name!r}; known: {scheduler_names()}")
        for name in self.adversaries:
            if name not in ADVERSARY_FACTORIES:
                raise InvalidParameterError(
                    f"unknown adversary {name!r}; known: {adversary_names()}")

    @property
    def size(self) -> int:
        """Number of points the grid expands to."""
        return (len(self.lifespans) * len(self.setup_costs)
                * len(self.interrupt_budgets) * len(self.schedulers)
                * max(1, len(self.adversaries)))

    def points(self) -> List[SweepPoint]:
        """Expand the grid into an ordered list of :class:`SweepPoint`."""
        adversaries: Sequence[Optional[str]] = self.adversaries or (None,)
        combos = itertools.product(self.schedulers, self.setup_costs,
                                   self.interrupt_budgets, self.lifespans,
                                   adversaries)
        return [SweepPoint(index=i, lifespan=U, setup_cost=c,
                           max_interrupts=p, scheduler=sched, adversary=adv)
                for i, (sched, c, p, U, adv) in enumerate(combos)]

    def point_at(self, index: int) -> SweepPoint:
        """Point ``index`` of :meth:`points`, without expanding the grid.

        The grid order is the ``itertools.product`` order of
        ``(schedulers, setup_costs, interrupt_budgets, lifespans,
        adversaries)`` with adversaries varying fastest, so one
        mixed-radix decomposition of ``index`` recovers the coordinates.
        The run store resumes large grids through this (only *pending*
        points are materialised); ``test_grid_point_at_matches_points``
        pins the equivalence with the expanded list.
        """
        if not 0 <= index < self.size:
            raise InvalidParameterError(
                f"point index {index} out of range for a {self.size}-point grid")
        adversaries: Sequence[Optional[str]] = self.adversaries or (None,)
        axes = (self.schedulers, self.setup_costs, self.interrupt_budgets,
                self.lifespans, adversaries)
        coords = []
        remaining = index
        for axis in reversed(axes):
            coords.append(axis[remaining % len(axis)])
            remaining //= len(axis)
        adv, U, p, c, sched = coords
        return SweepPoint(index=index, lifespan=U, setup_cost=c,
                          max_interrupts=p, scheduler=sched, adversary=adv)
