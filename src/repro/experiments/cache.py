"""Two-level cache for solved ``W^(p)[L]`` dynamic-programming tables.

Every parameter sweep, optimality-gap measurement and benchmark needs the
same handful of :class:`~repro.dp.value.ValueTable` objects, and solving one
is by far the most expensive primitive in the library (``O(p·L)`` after the
fast-solver rewrite, but with ``L`` in the tens of thousands).  The cache
here makes a table a solve-once artefact:

* **Level 1 — in-process LRU.**  An ``OrderedDict`` of the most recently
  used tables, keyed by the exact ``(max_lifespan, setup_cost,
  max_interrupts, method)`` tuple.  A *covering* lookup is also supported:
  a cached table with the same ``(setup_cost, method)`` but a larger
  lifespan/interrupt range answers requests for any smaller range, because
  the DP over a lifespan prefix is independent of ``L_max``.
* **Level 2 — on-disk ``.npz`` store.**  Compressed NumPy archives under a
  cache directory, one file per key, written atomically (temp file +
  ``os.replace``) so concurrent sweep workers sharing the directory never
  observe a torn file.  Corrupt or unreadable files are treated as misses
  and transparently rewritten.

* **Level 0 — shared-memory publication.**  Both lower levels still hand
  every worker *process* its own private copy of the solved arrays; for
  nightly-sized tables (``L = 60k``) that multiplies megabytes by
  ``--jobs``.  :class:`SharedTablePublisher` (driver side) copies a solved
  :class:`~repro.dp.value.ValueTable`'s ``values``/``first_periods`` into
  one ``multiprocessing.shared_memory`` block per key and hands workers a
  picklable :class:`SharedTableHandle`; :func:`attach_shared_table`
  (worker side) maps that block **by name** and wraps zero-copy read-only
  arrays over it, so a table is materialised once per *machine*, not once
  per worker.  The orchestrator preloads attached tables into each
  worker's :class:`DPTableCache` memory level, which keeps every lookup
  path (including covering lookups) unchanged.

The orchestrator in :mod:`repro.experiments.orchestrator` gives every worker
process its own :class:`DPTableCache` pointed at the same directory, so a
table is computed once per parameter point across *all* sweeps and runs.
"""

from __future__ import annotations

import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.exceptions import InvalidParameterError
from ..dp.solver import solve
from ..dp.value import ValueTable

__all__ = ["CacheStats", "DPTableCache", "cached_solve", "shared_cache",
           "configure_shared_cache", "SharedTableHandle", "PublisherStats",
           "SharedTablePublisher", "attach_shared_table",
           "serialize_table", "deserialize_table"]

#: Cache key: ``(max_lifespan, setup_cost, max_interrupts, method)``.
CacheKey = Tuple[int, int, int, str]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`DPTableCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`DPTableCache.solve` calls."""
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without re-solving the DP."""
        if self.lookups == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / self.lookups


class DPTableCache:
    """LRU + on-disk cache in front of :func:`repro.dp.solver.solve`.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk ``.npz`` level.  ``None`` disables the
        disk level (the LRU level always operates).  Created on demand.
    max_memory_entries:
        Capacity of the in-process LRU level.
    allow_covering:
        When ``True`` (the default) an in-memory table whose range covers
        the request (same ``setup_cost`` and ``method``, lifespan and
        interrupt range at least as large) is returned instead of solving a
        smaller table from scratch.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 max_memory_entries: int = 16,
                 allow_covering: bool = True):
        if max_memory_entries < 1:
            raise InvalidParameterError(
                f"max_memory_entries must be >= 1, got {max_memory_entries!r}")
        self.cache_dir = cache_dir
        self.max_memory_entries = int(max_memory_entries)
        self.allow_covering = bool(allow_covering)
        self._memory: "OrderedDict[CacheKey, ValueTable]" = OrderedDict()
        self.stats = CacheStats()
        # The run-service shares one cache across worker THREADS; the LRU
        # OrderedDict (and the covering lookup's iteration over it) is not
        # safe under concurrent mutation.  Holding the lock across a full
        # solve() also means concurrent requests for the same key solve it
        # exactly once per process — the behaviour the service wants.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, max_lifespan: int, setup_cost: int, max_interrupts: int,
              *, method: str = "fast") -> ValueTable:
        """Return the solved table, computing it at most once per key."""
        key = self._key(max_lifespan, setup_cost, max_interrupts, method)

        with self._lock:
            table = self._memory_lookup(key)
            if table is not None:
                self.stats.memory_hits += 1
                return table

            table = self._disk_lookup(key)
            if table is not None:
                self.stats.disk_hits += 1
                self._memory_store(key, table)
                return table

            self.stats.misses += 1
            table = solve(key[0], key[1], key[2], method=key[3])
            self._memory_store(key, table)
            self._disk_store(key, table)
            return table

    def preload(self, table: ValueTable, *, method: str = "fast") -> None:
        """Seed the memory level with an externally obtained table.

        Used by the shared-memory path: workers attach a published table
        (zero-copy) and preload it here, so every subsequent
        :meth:`solve` — including covering lookups for smaller ranges —
        is served without touching disk or re-solving.  Does not count as
        a lookup in :attr:`stats`.
        """
        key = self._key(table.max_lifespan, table.setup_cost,
                        table.max_interrupts, method)
        with self._lock:
            self._memory_store(key, table)

    def clear(self, *, memory: bool = True, disk: bool = False) -> None:
        """Drop cached tables (the disk level only when asked explicitly)."""
        if memory:
            with self._lock:
                self._memory.clear()
        if disk and self.cache_dir and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.startswith("dp_") and name.endswith(".npz"):
                    try:
                        os.remove(os.path.join(self.cache_dir, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Level 1: in-process LRU
    # ------------------------------------------------------------------
    @staticmethod
    def _key(max_lifespan: int, setup_cost: int, max_interrupts: int,
             method: str) -> CacheKey:
        L, c, p = int(max_lifespan), int(setup_cost), int(max_interrupts)
        if (L, c, p) != (max_lifespan, setup_cost, max_interrupts):
            raise InvalidParameterError(
                "DP cache keys must be integer-valued, got "
                f"({max_lifespan!r}, {setup_cost!r}, {max_interrupts!r})")
        return (L, c, p, str(method))

    def _memory_lookup(self, key: CacheKey) -> Optional[ValueTable]:
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.allow_covering:
            L, c, p, method = key
            for (kL, kc, kp, kmethod), table in self._memory.items():
                if kc == c and kmethod == method and kL >= L and kp >= p:
                    self._memory.move_to_end((kL, kc, kp, kmethod))
                    return table
        return None

    def _memory_store(self, key: CacheKey, table: ValueTable) -> None:
        self._memory[key] = table
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Level 2: on-disk .npz store
    # ------------------------------------------------------------------
    def _path(self, key: CacheKey) -> Optional[str]:
        if not self.cache_dir:
            return None
        L, c, p, method = key
        return os.path.join(self.cache_dir, f"dp_L{L}_c{c}_p{p}_{method}.npz")

    def _disk_lookup(self, key: CacheKey) -> Optional[ValueTable]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                values = np.asarray(archive["values"], dtype=np.int64)
                first = np.asarray(archive["first_periods"], dtype=np.int64)
                setup_cost = int(archive["setup_cost"])
            L, c, p, _method = key
            if (setup_cost != c or values.shape != (p + 1, L + 1)
                    or first.shape != values.shape):
                return None  # stale or mismatched file: treat as a miss
            return ValueTable(setup_cost=setup_cost, values=values,
                              first_periods=first)
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
            return None  # corrupt file: recompute and rewrite

    def _disk_store(self, key: CacheKey, table: ValueTable) -> None:
        path = self._path(key)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key, but
        # each writes a complete temp file and os.replace() is atomic, so
        # readers only ever see whole archives.
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    values=table.values,
                    first_periods=table.first_periods,
                    setup_cost=np.int64(table.setup_cost),
                )
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Shared default cache
# ----------------------------------------------------------------------
_shared: Optional[DPTableCache] = None


def shared_cache() -> DPTableCache:
    """The process-wide default cache (memory-only until configured)."""
    global _shared
    if _shared is None:
        _shared = DPTableCache(cache_dir=os.environ.get("REPRO_DP_CACHE_DIR"))
    return _shared


def configure_shared_cache(cache_dir: Optional[str] = None,
                           max_memory_entries: int = 16) -> DPTableCache:
    """Replace the process-wide default cache (e.g. to point it at a directory)."""
    global _shared
    _shared = DPTableCache(cache_dir=cache_dir,
                           max_memory_entries=max_memory_entries)
    return _shared


def cached_solve(max_lifespan: int, setup_cost: int, max_interrupts: int,
                 *, method: str = "fast",
                 cache: Optional[DPTableCache] = None) -> ValueTable:
    """Drop-in replacement for :func:`repro.dp.solver.solve` with caching."""
    cache = cache if cache is not None else shared_cache()
    return cache.solve(max_lifespan, setup_cost, max_interrupts, method=method)


# ----------------------------------------------------------------------
# Level 0: shared-memory publication (one table per machine, not per worker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedTableHandle:
    """Picklable pointer to a DP table published in shared memory.

    Workers receive handles through the (pickled) experiment config and
    attach by ``block_name`` — no table bytes ever travel through the
    pickle stream or the process pool's pipes.
    """

    #: ``multiprocessing.shared_memory`` block name to attach to.
    block_name: str
    #: The cache key ``(max_lifespan, setup_cost, max_interrupts, method)``.
    key: CacheKey

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of each of the two stacked ``int64`` arrays."""
        L, _c, p, _method = self.key
        return (p + 1, L + 1)

    @property
    def num_bytes(self) -> int:
        """Total size of the block (``values`` + ``first_periods``)."""
        rows, cols = self.shape
        return 2 * rows * cols * 8


@dataclass
class PublisherStats:
    """Publication counters of one :class:`SharedTablePublisher`.

    The run-service asserts on these: two concurrent submissions sharing
    an ``(L, c, p)`` key must show ``created == 1`` and ``reused >= 1``
    for it — the shared-memory table really was published exactly once
    per machine.  Counters survive :meth:`SharedTablePublisher.close`.
    """

    #: Blocks actually created (one per distinct cache key).
    created: int = 0
    #: ``publish()`` calls answered by an already-published block.
    reused: int = 0
    #: The keys created, in publication order.
    created_keys: List[CacheKey] = field(default_factory=list)


class SharedTablePublisher:
    """Driver-side owner of DP tables published to shared memory.

    ``publish()`` copies a solved table's ``values`` and ``first_periods``
    into one shared-memory block (stacked, ``int64``); the publisher keeps
    the block objects alive and ``close()`` unlinks them when the sweep is
    done.  Workers that attached keep valid mappings until they exit —
    POSIX keeps an unlinked segment alive while mapped — so the driver can
    clean up unconditionally in a ``finally``.

    Usable as a context manager; exceptions during ``publish`` (e.g. an
    exhausted ``/dev/shm``) surface to the caller, which should fall back
    to per-worker solving rather than fail the sweep.  ``publish()`` is
    thread-safe: the run-service calls it from concurrent worker threads
    and relies on per-key idempotence holding under that concurrency.
    """

    def __init__(self) -> None:
        self._blocks: List[object] = []
        self._handles: Dict[CacheKey, SharedTableHandle] = {}
        self._lock = threading.Lock()
        self.stats = PublisherStats()

    def publish(self, table: ValueTable, *, method: str = "fast") -> SharedTableHandle:
        """Publish one solved table; idempotent per cache key."""
        from multiprocessing import shared_memory

        key = DPTableCache._key(table.max_lifespan, table.setup_cost,
                                table.max_interrupts, method)
        with self._lock:
            handle = self._handles.get(key)
            if handle is not None:
                self.stats.reused += 1
                return handle
            values = np.ascontiguousarray(table.values, dtype=np.int64)
            first = np.ascontiguousarray(table.first_periods, dtype=np.int64)
            block = shared_memory.SharedMemory(create=True,
                                               size=values.nbytes + first.nbytes)
            self._blocks.append(block)
            stacked = np.ndarray((2,) + values.shape, dtype=np.int64,
                                 buffer=block.buf)
            stacked[0] = values
            stacked[1] = first
            handle = SharedTableHandle(block_name=block.name, key=key)
            self._handles[key] = handle
            self.stats.created += 1
            self.stats.created_keys.append(key)
            return handle

    @property
    def handles(self) -> Tuple[SharedTableHandle, ...]:
        """Every published handle, in publication order."""
        return tuple(self._handles.values())

    def close(self, *, unlink: bool = True) -> None:
        """Release (and by default unlink) every published block.

        :attr:`stats` is deliberately left intact — the counters describe
        the publisher's whole lifetime and are read after shutdown.
        """
        with self._lock:
            blocks, self._blocks = self._blocks, []
            self._handles = {}
        for block in blocks:
            try:
                block.close()
                if unlink:
                    block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedTablePublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _attach_block(name: str):
    """Attach a shared-memory block without resource-tracker side effects.

    Python 3.13+ exposes ``track=False`` so an attach never involves the
    resource tracker.  Before 3.13, attaching (re-)registers the segment —
    but multiprocessing workers share the driver's tracker process, where
    the duplicate registration is an idempotent no-op and the driver's
    ``unlink()`` removes the single entry, so a plain attach is already
    clean.  (Never *unregister* here: with a shared tracker that would
    drop the driver's own registration.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        return shared_memory.SharedMemory(name=name, create=False)


#: Worker-side attachment memo: block name -> (block, ValueTable).  Keeps
#: the SharedMemory objects (and therefore the mappings) alive for the
#: lifetime of the worker process; attaching the same handle twice is free.
_attached_tables: Dict[str, ValueTable] = {}
_attached_blocks: Dict[str, object] = {}


def attach_shared_table(handle: SharedTableHandle) -> ValueTable:
    """Map a published table by name and wrap it zero-copy (read-only).

    The returned :class:`~repro.dp.value.ValueTable` views the shared
    block directly — no bytes are copied, so a 60k-lifespan table costs a
    worker a few page-table entries instead of megabytes of private RSS.
    Attachments are memoised per block name for the process lifetime.
    """
    table = _attached_tables.get(handle.block_name)
    if table is not None:
        return table
    block = _attach_block(handle.block_name)
    stacked = np.ndarray((2,) + handle.shape, dtype=np.int64, buffer=block.buf)
    stacked.setflags(write=False)
    table = ValueTable(setup_cost=handle.key[1], values=stacked[0],
                       first_periods=stacked[1])
    _attached_blocks[handle.block_name] = block
    _attached_tables[handle.block_name] = table
    return table


# ----------------------------------------------------------------------
# Wire format: content-addressed table shipping (cluster table service)
# ----------------------------------------------------------------------
def serialize_table(table: ValueTable) -> bytes:
    """Flatten a solved table to wire bytes (stacked little-endian int64).

    The cluster table service ships these from the coordinator to workers
    alongside the cache key and a sha256 of the bytes: ``values`` and
    ``first_periods`` stacked as a ``(2, p + 1, L + 1)`` array in a fixed
    ``<i8`` byte order, so the digest is machine-independent and
    :func:`deserialize_table` needs only the key to rebuild the table.
    """
    values = np.ascontiguousarray(table.values, dtype="<i8")
    first = np.ascontiguousarray(table.first_periods, dtype="<i8")
    if values.shape != first.shape:  # pragma: no cover - ValueTable invariant
        raise InvalidParameterError(
            f"table arrays disagree on shape: {values.shape} vs {first.shape}")
    return values.tobytes() + first.tobytes()


def deserialize_table(data: bytes, *, key: CacheKey) -> ValueTable:
    """Rebuild a :class:`ValueTable` from :func:`serialize_table` bytes.

    Validates the byte count against the shape the key implies — a
    truncated or padded blob (a torn stream the sha256 check somehow
    missed, or a coordinator/worker version skew) raises rather than
    yielding a silently wrong table.
    """
    max_lifespan, setup_cost, max_interrupts, _method = key
    rows, cols = max_interrupts + 1, max_lifespan + 1
    expected = 2 * rows * cols * 8
    if len(data) != expected:
        raise InvalidParameterError(
            f"table blob for key {key!r} holds {len(data)} bytes, "
            f"expected {expected}")
    stacked = np.frombuffer(data, dtype="<i8").astype(np.int64)
    stacked = stacked.reshape(2, rows, cols)
    values = np.ascontiguousarray(stacked[0])
    first = np.ascontiguousarray(stacked[1])
    values.setflags(write=False)
    first.setflags(write=False)
    return ValueTable(setup_cost=setup_cost, values=values,
                      first_periods=first)
