"""Two-level cache for solved ``W^(p)[L]`` dynamic-programming tables.

Every parameter sweep, optimality-gap measurement and benchmark needs the
same handful of :class:`~repro.dp.value.ValueTable` objects, and solving one
is by far the most expensive primitive in the library (``O(p·L)`` after the
fast-solver rewrite, but with ``L`` in the tens of thousands).  The cache
here makes a table a solve-once artefact:

* **Level 1 — in-process LRU.**  An ``OrderedDict`` of the most recently
  used tables, keyed by the exact ``(max_lifespan, setup_cost,
  max_interrupts, method)`` tuple.  A *covering* lookup is also supported:
  a cached table with the same ``(setup_cost, method)`` but a larger
  lifespan/interrupt range answers requests for any smaller range, because
  the DP over a lifespan prefix is independent of ``L_max``.
* **Level 2 — on-disk ``.npz`` store.**  Compressed NumPy archives under a
  cache directory, one file per key, written atomically (temp file +
  ``os.replace``) so concurrent sweep workers sharing the directory never
  observe a torn file.  Corrupt or unreadable files are treated as misses
  and transparently rewritten.

The orchestrator in :mod:`repro.experiments.orchestrator` gives every worker
process its own :class:`DPTableCache` pointed at the same directory, so a
table is computed once per parameter point across *all* sweeps and runs.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.exceptions import InvalidParameterError
from ..dp.solver import solve
from ..dp.value import ValueTable

__all__ = ["CacheStats", "DPTableCache", "cached_solve", "shared_cache",
           "configure_shared_cache"]

#: Cache key: ``(max_lifespan, setup_cost, max_interrupts, method)``.
CacheKey = Tuple[int, int, int, str]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`DPTableCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`DPTableCache.solve` calls."""
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without re-solving the DP."""
        if self.lookups == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / self.lookups


class DPTableCache:
    """LRU + on-disk cache in front of :func:`repro.dp.solver.solve`.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk ``.npz`` level.  ``None`` disables the
        disk level (the LRU level always operates).  Created on demand.
    max_memory_entries:
        Capacity of the in-process LRU level.
    allow_covering:
        When ``True`` (the default) an in-memory table whose range covers
        the request (same ``setup_cost`` and ``method``, lifespan and
        interrupt range at least as large) is returned instead of solving a
        smaller table from scratch.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 max_memory_entries: int = 16,
                 allow_covering: bool = True):
        if max_memory_entries < 1:
            raise InvalidParameterError(
                f"max_memory_entries must be >= 1, got {max_memory_entries!r}")
        self.cache_dir = cache_dir
        self.max_memory_entries = int(max_memory_entries)
        self.allow_covering = bool(allow_covering)
        self._memory: "OrderedDict[CacheKey, ValueTable]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, max_lifespan: int, setup_cost: int, max_interrupts: int,
              *, method: str = "fast") -> ValueTable:
        """Return the solved table, computing it at most once per key."""
        key = self._key(max_lifespan, setup_cost, max_interrupts, method)

        table = self._memory_lookup(key)
        if table is not None:
            self.stats.memory_hits += 1
            return table

        table = self._disk_lookup(key)
        if table is not None:
            self.stats.disk_hits += 1
            self._memory_store(key, table)
            return table

        self.stats.misses += 1
        table = solve(key[0], key[1], key[2], method=key[3])
        self._memory_store(key, table)
        self._disk_store(key, table)
        return table

    def clear(self, *, memory: bool = True, disk: bool = False) -> None:
        """Drop cached tables (the disk level only when asked explicitly)."""
        if memory:
            self._memory.clear()
        if disk and self.cache_dir and os.path.isdir(self.cache_dir):
            for name in os.listdir(self.cache_dir):
                if name.startswith("dp_") and name.endswith(".npz"):
                    try:
                        os.remove(os.path.join(self.cache_dir, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Level 1: in-process LRU
    # ------------------------------------------------------------------
    @staticmethod
    def _key(max_lifespan: int, setup_cost: int, max_interrupts: int,
             method: str) -> CacheKey:
        L, c, p = int(max_lifespan), int(setup_cost), int(max_interrupts)
        if (L, c, p) != (max_lifespan, setup_cost, max_interrupts):
            raise InvalidParameterError(
                "DP cache keys must be integer-valued, got "
                f"({max_lifespan!r}, {setup_cost!r}, {max_interrupts!r})")
        return (L, c, p, str(method))

    def _memory_lookup(self, key: CacheKey) -> Optional[ValueTable]:
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.allow_covering:
            L, c, p, method = key
            for (kL, kc, kp, kmethod), table in self._memory.items():
                if kc == c and kmethod == method and kL >= L and kp >= p:
                    self._memory.move_to_end((kL, kc, kp, kmethod))
                    return table
        return None

    def _memory_store(self, key: CacheKey, table: ValueTable) -> None:
        self._memory[key] = table
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Level 2: on-disk .npz store
    # ------------------------------------------------------------------
    def _path(self, key: CacheKey) -> Optional[str]:
        if not self.cache_dir:
            return None
        L, c, p, method = key
        return os.path.join(self.cache_dir, f"dp_L{L}_c{c}_p{p}_{method}.npz")

    def _disk_lookup(self, key: CacheKey) -> Optional[ValueTable]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                values = np.asarray(archive["values"], dtype=np.int64)
                first = np.asarray(archive["first_periods"], dtype=np.int64)
                setup_cost = int(archive["setup_cost"])
            L, c, p, _method = key
            if (setup_cost != c or values.shape != (p + 1, L + 1)
                    or first.shape != values.shape):
                return None  # stale or mismatched file: treat as a miss
            return ValueTable(setup_cost=setup_cost, values=values,
                              first_periods=first)
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
            return None  # corrupt file: recompute and rewrite

    def _disk_store(self, key: CacheKey, table: ValueTable) -> None:
        path = self._path(key)
        if path is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key, but
        # each writes a complete temp file and os.replace() is atomic, so
        # readers only ever see whole archives.
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    values=table.values,
                    first_periods=table.first_periods,
                    setup_cost=np.int64(table.setup_cost),
                )
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Shared default cache
# ----------------------------------------------------------------------
_shared: Optional[DPTableCache] = None


def shared_cache() -> DPTableCache:
    """The process-wide default cache (memory-only until configured)."""
    global _shared
    if _shared is None:
        _shared = DPTableCache(cache_dir=os.environ.get("REPRO_DP_CACHE_DIR"))
    return _shared


def configure_shared_cache(cache_dir: Optional[str] = None,
                           max_memory_entries: int = 16) -> DPTableCache:
    """Replace the process-wide default cache (e.g. to point it at a directory)."""
    global _shared
    _shared = DPTableCache(cache_dir=cache_dir,
                           max_memory_entries=max_memory_entries)
    return _shared


def cached_solve(max_lifespan: int, setup_cost: int, max_interrupts: int,
                 *, method: str = "fast",
                 cache: Optional[DPTableCache] = None) -> ValueTable:
    """Drop-in replacement for :func:`repro.dp.solver.solve` with caching."""
    cache = cache if cache is not None else shared_cache()
    return cache.solve(max_lifespan, setup_cost, max_interrupts, method=method)
