"""Monte-Carlo replication on top of the single-trace game and simulator.

The analytic layer answers "what is the *worst case*?" exactly; this module
answers "what happens *typically*?" by replication: ``N`` randomized
owner-interrupt traces per parameter point, drawn from the stochastic
adversaries in :mod:`repro.adversary` (game-level replication) or from the
randomized scenario generators in :mod:`repro.workloads.scenarios`
(simulator-level replication), aggregated into mean/std/quantile rows.

Determinism: replication ``r`` of point ``i`` is seeded with
``point_seed(base_seed, i, r)``, so aggregate rows are bit-identical no
matter how the orchestrator spreads replications over worker processes.

Backends
--------
Both replication entry points accept ``backend="event"`` (the reference:
one event-driven game/simulation per replication) or ``backend="batch"``
(the vectorized backend of :mod:`repro.simulator.batch`, which plays all
replications of a point level-by-level, sharing episode-schedule
construction and doing the accounting with array passes).  Adversaries are
seeded and consulted identically under both backends, so for the same
seeds the batch results match the event results exactly up to float
summation order (``~1e-15`` relative; the equivalence tests pin ``1e-9``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.exceptions import InvalidScheduleError, SchedulingError
from ..core.game import play_adaptive, play_nonadaptive
from ..core.schedule import EpisodeSchedule
from .grid import SweepPoint, make_adversary, make_scheduler, point_seed

__all__ = ["aggregate", "replicate_point", "replicate_scenario", "BACKENDS"]

#: Quantiles reported for every replicated statistic.
QUANTILES = (0.1, 0.5, 0.9)

#: Recognised replication backends.
BACKENDS = ("event", "batch")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    return backend


def aggregate(values: Sequence[float], prefix: str) -> Dict[str, float]:
    """Mean/std/min/max/quantile summary of one replicated statistic.

    ``values`` are the per-replication measurements of one quantity in
    whatever unit that quantity carries — work and efficiency statistics
    inherit the time unit of the lifespan ``U`` (the paper's ``L`` on the
    integer grid) and the set-up cost ``c``; interrupt and episode counts
    are dimensionless.  The returned columns are ``{prefix}_n`` (the
    replication count), ``{prefix}_mean/std/min/max`` and one
    ``{prefix}_q<percent>`` per entry of :data:`QUANTILES`.

    The standard deviation is the *sample* standard deviation (``ddof=1``)
    when two or more replications are available, ``0.0`` otherwise.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"{prefix}_n": 0}
    out: Dict[str, float] = {
        f"{prefix}_n": int(arr.size),
        f"{prefix}_mean": float(arr.mean()),
        f"{prefix}_std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        f"{prefix}_min": float(arr.min()),
        f"{prefix}_max": float(arr.max()),
    }
    for q in QUANTILES:
        out[f"{prefix}_q{int(round(q * 100))}"] = float(np.quantile(arr, q))
    return out


def replicate_point(point: SweepPoint, replications: int,
                    base_seed: int = 0, *, backend: str = "event") -> Dict[str, float]:
    """Play ``replications`` randomized traces of one sweep point.

    The point's scheduler plays against freshly seeded instances of the
    point's adversary; adaptive schedulers use the adaptive referee,
    pure non-adaptive ones the oblivious referee.  Returns the aggregated
    ``work_*`` / ``efficiency_*`` / ``interrupts_*`` / ``episodes_*``
    columns: work is in the time unit of the point's lifespan ``U`` (the
    paper's ``L`` on the integer DP grid) and set-up cost ``c``;
    efficiency is work divided by ``U`` (dimensionless); interrupts per
    game never exceed the point's budget ``p`` because the referee stops
    consulting the adversary once the budget is spent.

    ``backend="batch"`` plays all replications level-synchronously with
    shared episode-schedule construction (adaptive schedulers only;
    non-adaptive points transparently use the event referee, which is
    already cheap for them).
    """
    if point.adversary is None:
        raise ValueError(f"point {point.index} has no adversary to sample")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    _check_backend(backend)
    params = point.params()
    scheduler = make_scheduler(point.scheduler, params)
    adaptive = hasattr(scheduler, "episode_schedule")

    if backend == "batch" and adaptive:
        works, interrupts, episodes = _play_point_batch(point, scheduler,
                                                        int(replications),
                                                        base_seed)
    else:
        works, interrupts, episodes = [], [], []
        for r in range(int(replications)):
            seed = point_seed(base_seed, point.index, r)
            adversary = make_adversary(point.adversary, params, seed=seed)
            if adaptive:
                result = play_adaptive(scheduler, adversary, params)
            else:
                result = play_nonadaptive(scheduler, adversary, params)
            works.append(result.total_work)
            interrupts.append(float(result.num_interrupts))
            episodes.append(float(result.num_episodes))

    row: Dict[str, float] = {}
    row.update(aggregate(works, "work"))
    row.update(aggregate([w / params.lifespan for w in works], "efficiency"))
    row.update(aggregate(interrupts, "interrupts"))
    row.update(aggregate(episodes, "episodes"))
    return row


def _play_point_batch(point: SweepPoint, scheduler, replications: int,
                      base_seed: int):
    """Adaptive game over all replications at once, level by level.

    Mirrors :func:`repro.core.game.play_adaptive` step for step: every
    replication's adversary is constructed with the same seed and consulted
    in the same episode order as under the event backend, so both backends
    consume identical randomness.  Replications sharing a game state
    (residual lifespan, interrupts left) share one validated schedule and
    its prefix-sum work table; only the interrupted episodes' work values
    differ from the referee's by float summation order (``~1e-15``).
    """
    params = point.params()
    c = params.setup_cost
    adversaries = [make_adversary(point.adversary, params,
                                  seed=point_seed(base_seed, point.index, r))
                   for r in range(replications)]
    residual = [params.lifespan] * replications
    p_left = [params.max_interrupts] * replications
    works = [0.0] * replications
    interrupts = [0.0] * replications
    episodes = [0.0] * replications
    alive = list(range(replications))

    # (residual, interrupts_left) -> (schedule, total_length, finishes,
    #                                 prefix work, uninterrupted work)
    memo: Dict[tuple, tuple] = {}
    while alive:
        groups: Dict[tuple, List[int]] = {}
        for r in alive:
            groups.setdefault((residual[r], p_left[r]), []).append(r)

        missing: Dict[int, List[float]] = {}
        for (res, p) in groups:
            if (res, p) not in memo:
                missing.setdefault(p, []).append(res)
        for p, residuals in missing.items():
            build = getattr(scheduler, "episode_schedule_batch", None)
            if build is not None:
                schedules = build(residuals, p, c)
            else:
                schedules = [scheduler.episode_schedule(res, p, c)
                             for res in residuals]
            for res, schedule in zip(residuals, schedules):
                # The referee's checks, once per distinct schedule.
                if not isinstance(schedule, EpisodeSchedule):
                    raise SchedulingError(
                        f"scheduler returned {type(schedule).__name__}, "
                        "expected EpisodeSchedule")
                try:
                    schedule.validate_for_lifespan(res, require_exact=False)
                except InvalidScheduleError as exc:
                    raise SchedulingError(
                        "scheduler produced an inadmissible schedule for "
                        f"residual {res!r}: {exc}") from exc
                finishes = schedule.finish_times
                prefix = np.maximum(schedule.periods - c, 0.0).cumsum()
                memo[(res, p)] = (schedule, schedule.total_length, finishes,
                                  prefix, schedule.work_if_uninterrupted(c))

        next_alive: List[int] = []
        for (res, p), group_reps in groups.items():
            schedule, total_length, finishes, prefix, full_work = memo[(res, p)]
            for r in group_reps:
                episodes[r] += 1.0
                interrupt: Optional[float] = None
                if p > 0:
                    interrupt = adversaries[r].choose_interrupt(schedule, res,
                                                                p, c)
                    if interrupt is not None:
                        interrupt = float(interrupt)
                        if not (0.0 <= interrupt < total_length):
                            raise SchedulingError(
                                f"adversary chose interrupt time {interrupt!r} "
                                f"outside [0, {total_length!r})")
                if interrupt is None:
                    works[r] += full_work
                    continue
                completed = int(np.searchsorted(finishes, interrupt,
                                                side="right"))
                if completed:
                    works[r] += float(prefix[completed - 1])
                interrupts[r] += 1.0
                residual[r] = residual[r] - interrupt
                p_left[r] = p - 1
                if residual[r] > 0.0:
                    next_alive.append(r)
        alive = next_alive
    return works, interrupts, episodes


def replicate_scenario(family, replications: int, *, base_seed: int = 0,
                       scheduler=None, scheduler_factory=None,
                       backend: str = "event",
                       **family_kwargs) -> Dict[str, float]:
    """Replicate a randomized scenario family through the NOW simulator.

    Parameters
    ----------
    family:
        A scenario generator from :mod:`repro.workloads.scenarios` (or any
        callable accepting a ``seed=`` keyword and returning a
        :class:`~repro.workloads.scenarios.Scenario`).
    replications:
        How many independently seeded scenario instances to simulate.
    scheduler / scheduler_factory:
        Passed through to
        :class:`~repro.simulator.engine.CycleStealingSimulation`; defaults
        to a fresh :class:`~repro.schedules.EqualizingAdaptiveScheduler`.
    backend:
        ``"event"`` simulates each replication through the event-driven
        engine; ``"batch"`` runs them all through
        :func:`repro.simulator.batch.simulate_scenarios_batch` in one array
        pass (bit-identical reports, see the module docstring).
    family_kwargs:
        Extra keyword arguments forwarded to the scenario generator.

    Returns the aggregated ``work_*`` / ``tasks_*`` / ``interrupts_*``
    columns plus a ``scenario`` label.  Work is in the scenario's time
    unit (that of its contracts' lifespans ``U`` and set-up costs ``c``);
    task counts and interrupt counts are dimensionless; interrupts here
    are the *observed* owner reclaims, which may exceed the negotiated
    budget ``p`` for contract-breaking families.  Replication ``r``
    samples scenario instance ``family(seed=point_seed(base_seed,
    family_label, r))`` — the seed depends on the family and replication
    only, never on the scheduler, so different schedulers face identical
    instances (paired comparison).
    """
    from ..simulator import CycleStealingSimulation

    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    _check_backend(backend)

    # Stable label for seeding and reporting.  Never fall back to repr():
    # it embeds the object's memory address, which would break the
    # bit-identical determinism this module promises (e.g. for
    # functools.partial-wrapped families).
    family_label = (getattr(family, "__name__", None)
                    or getattr(getattr(family, "func", None), "__name__", None)
                    or type(family).__name__)

    def default_scheduler():
        from ..schedules import EqualizingAdaptiveScheduler
        return EqualizingAdaptiveScheduler()

    works: List[float] = []
    tasks: List[float] = []
    interrupts: List[float] = []
    if backend == "batch":
        from ..simulator.batch import simulate_scenarios_batch

        scenarios = [family(seed=point_seed(base_seed, family_label, r),
                            **family_kwargs)
                     for r in range(int(replications))]
        run_scheduler = scheduler
        if scheduler is None and scheduler_factory is None:
            run_scheduler = default_scheduler()
        reports = simulate_scenarios_batch(scenarios, run_scheduler,
                                           scheduler_factory=scheduler_factory)
    else:
        reports = []
        for r in range(int(replications)):
            scenario = family(seed=point_seed(base_seed, family_label, r),
                              **family_kwargs)
            if scheduler is None and scheduler_factory is None:
                run_scheduler = default_scheduler()
            else:
                run_scheduler = scheduler
            sim = CycleStealingSimulation(scenario.workstations, run_scheduler,
                                          task_bag=scenario.task_bag,
                                          scheduler_factory=scheduler_factory)
            reports.append(sim.run())
    for report in reports:
        works.append(report.total_work)
        tasks.append(float(report.total_tasks_completed))
        interrupts.append(float(report.total_interrupts))

    row: Dict[str, float] = {"scenario": family_label}
    row.update(aggregate(works, "work"))
    row.update(aggregate(tasks, "tasks"))
    row.update(aggregate(interrupts, "interrupts"))
    return row
