"""Monte-Carlo replication on top of the single-trace game and simulator.

The analytic layer answers "what is the *worst case*?" exactly; this module
answers "what happens *typically*?" by replication: ``N`` randomized
owner-interrupt traces per parameter point, drawn from the stochastic
adversaries in :mod:`repro.adversary` (game-level replication) or from the
randomized scenario generators in :mod:`repro.workloads.scenarios`
(simulator-level replication), aggregated into mean/std/quantile rows.

Determinism: replication ``r`` of point ``i`` is seeded with
``point_seed(base_seed, i, r)``, so aggregate rows are bit-identical no
matter how the orchestrator spreads replications over worker processes —
and, in streaming mode, no matter how the replications are chunked.

Backends
--------
Both replication entry points accept ``backend="event"`` (the reference:
one event-driven game/simulation per replication) or ``backend="batch"``
(the vectorized backend of :mod:`repro.simulator.batch`, which plays all
replications of a point level-by-level, sharing episode-schedule
construction and doing the accounting with array passes).  Adversaries are
seeded and consulted identically under both backends, so for the same
seeds the batch results match the event results exactly up to float
summation order (``~1e-15`` relative; the equivalence tests pin ``1e-9``).
Non-adaptive sweep points route through a dedicated batch path that
mirrors :func:`repro.core.game.play_nonadaptive` with a tail-reuse-aware
array pass (shared truncated/extended schedules, shared tails, vectorized
completed-period accounting).

Aggregation modes
-----------------
``aggregation="exact"`` materialises every replication's statistics and
aggregates them in one numpy pass (the historical behaviour — quantiles
are exact).  ``aggregation="streaming"`` plays replications in fixed-size
chunks (``chunk_size``, auto-sized from the replication count by default)
and feeds the per-replication values into the online accumulators of
:mod:`repro.experiments.streaming` — Welford mean/std, exact running
min/max and P² quantile estimates — so peak memory is flat in the
replication count.  ``aggregation="auto"`` (the default) selects exact at
or below :data:`STREAMING_AUTO_THRESHOLD` replications and streaming
above, preserving exact results for every small run.  Each replicated row
carries a ``quantile_method`` column (``"exact"`` or ``"p2"``) so reports
can flag which convention its quantile columns follow.

Variance reduction
------------------
``variance="antithetic"`` replaces independent replication seeds with
antithetic pairs (see :mod:`repro.experiments.variance`): replications
``(2k, 2k+1)`` share a pair seed and consume a common uniform stream and
its complement, threaded through the interrupt-trace samplers and the
stochastic adversaries identically under both backends.
``variance="stratified"`` keeps the exact seeds of ``variance="none"``
(every historical column stays bitwise identical) and post-stratifies
the standard errors over observed interrupt-count strata.  Both modes
add ``{prefix}_sem/_ci_lo/_ci_hi`` (and batch-means ``_bm`` variants)
plus a ``variance`` label column to the row; ``variance="none"`` (the
default) emits no new columns and stays byte-identical to the
pre-variance pipeline.  CI columns are bit-identical across chunk sizes
and across the exact/streaming aggregation paths (the accumulators are
strictly sequential with a fixed internal batch size).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._compat import keyword_only
from ..core.exceptions import InvalidScheduleError, SchedulingError
from ..core.game import play_adaptive, play_nonadaptive
from ..core.schedule import EpisodeSchedule
from .grid import SweepPoint, make_adversary, make_scheduler
from .streaming import StreamingAggregator
from .variance import (
    CiAccumulator,
    VARIANCE_MODES,
    replication_seed,
    resolve_variance,
)

__all__ = ["aggregate", "replicate_point", "replicate_scenario", "BACKENDS",
           "AGGREGATIONS", "STREAMING_AUTO_THRESHOLD", "resolve_aggregation",
           "resolve_chunk_size", "VARIANCE_MODES", "resolve_variance"]

#: Quantiles reported for every replicated statistic.
QUANTILES = (0.1, 0.5, 0.9)

#: Recognised replication backends.
BACKENDS = ("event", "batch")

#: Recognised aggregation modes.
AGGREGATIONS = ("exact", "streaming", "auto")

#: ``aggregation="auto"`` uses exact aggregation at or below this many
#: replications and the streaming accumulators above it.
STREAMING_AUTO_THRESHOLD = 10_000

#: Bounds for the auto-sized streaming chunk (replications per chunk).
_MIN_CHUNK = 256
_MAX_CHUNK = 8192


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    return backend


def resolve_aggregation(aggregation: str, replications: int) -> str:
    """Resolve an aggregation mode to ``"exact"`` or ``"streaming"``.

    ``"auto"`` picks exact at or below :data:`STREAMING_AUTO_THRESHOLD`
    replications (results byte-identical to the historical one-shot
    aggregation) and streaming above.  The resolution depends only on the
    mode and the replication count, never on memory probing or the
    environment, so resumed runs re-resolve identically.
    """
    if aggregation not in AGGREGATIONS:
        raise ValueError(f"unknown aggregation {aggregation!r}; "
                         f"known: {list(AGGREGATIONS)}")
    if aggregation == "auto":
        return "streaming" if replications > STREAMING_AUTO_THRESHOLD else "exact"
    return aggregation


def resolve_chunk_size(chunk_size: Optional[int], replications: int) -> int:
    """The streaming chunk size: explicit, or auto-sized from replications.

    The auto size grows with the replication count between
    :data:`_MIN_CHUNK` and :data:`_MAX_CHUNK` — big enough to amortise the
    batch backend's shared schedule construction, small enough that peak
    memory stays flat.  Chunking never affects results (accumulators are
    fed in replication order), only memory and throughput.
    """
    if chunk_size is not None:
        chunk = int(chunk_size)
        if chunk < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        return chunk
    return max(_MIN_CHUNK, min(_MAX_CHUNK, int(replications) // 8))


def aggregate(values: Sequence[float], prefix: str) -> Dict[str, float]:
    """Mean/std/min/max/quantile summary of one replicated statistic.

    ``values`` are the per-replication measurements of one quantity in
    whatever unit that quantity carries — work and efficiency statistics
    inherit the time unit of the lifespan ``U`` (the paper's ``L`` on the
    integer grid) and the set-up cost ``c``; interrupt and episode counts
    are dimensionless.  The returned columns are ``{prefix}_n`` (the
    replication count), ``{prefix}_mean/std/min/max`` and one
    ``{prefix}_q<percent>`` per entry of :data:`QUANTILES`.

    The standard deviation is the *sample* standard deviation (``ddof=1``)
    when two or more replications are available and **exactly ``0.0``
    otherwise** — a single replication has no spread estimate, and pinning
    ``0.0`` (rather than numpy's NaN for ``ddof=1`` on one value) keeps
    report tables and downstream comparisons NaN-free.  The streaming
    accumulators follow the same convention.

    NaN inputs are rejected with an actionable error: a NaN statistic
    means a replication produced undefined work, and silently propagating
    it would poison every mean/std/quantile column downstream.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"{prefix}_n": 0}
    nan_mask = np.isnan(arr)
    nan_count = int(nan_mask.sum())
    if nan_count:
        raise ValueError(
            f"cannot aggregate {prefix!r}: {nan_count} of {arr.size} "
            f"replication values are NaN (first at replication index "
            f"{int(nan_mask.argmax())}); NaN cannot be aggregated (it would "
            "poison mean/std/quantiles) — check the scheduler/adversary/"
            "scenario for invalid parameters producing undefined work values")
    out: Dict[str, float] = {
        f"{prefix}_n": int(arr.size),
        f"{prefix}_mean": float(arr.mean()),
        f"{prefix}_std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        f"{prefix}_min": float(arr.min()),
        f"{prefix}_max": float(arr.max()),
    }
    for q in QUANTILES:
        out[f"{prefix}_q{int(round(q * 100))}"] = float(np.quantile(arr, q))
    return out


def _chunk_ranges(replications: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Half-open ``[start, stop)`` replication ranges covering the stream."""
    for start in range(0, replications, chunk):
        yield start, min(start + chunk, replications)


def _record_chunk(profile: Optional[Dict[str, float]], seconds: float) -> None:
    """Per-chunk stage accounting for ``--profile`` (see profiling module)."""
    if profile is None:
        return
    profile["mc_chunks"] = profile.get("mc_chunks", 0.0) + 1.0
    profile["mc_chunk_s_max"] = max(profile.get("mc_chunk_s_max", 0.0),
                                    float(seconds))


def _make_cis(variance: str, names: Sequence[str],
              stratified: Sequence[str]) -> Optional[Dict[str, CiAccumulator]]:
    """One CI accumulator per statistic, or ``None`` under ``variance="none"``.

    Under ``"stratified"``, only the statistics in ``stratified`` get the
    post-stratified standard error — statistics that are functions of the
    stratum variable itself (interrupt/episode counts) keep the plain
    i.i.d. one, which is what their CI should be.
    """
    if variance == "none":
        return None
    return {name: CiAccumulator(variance if variance != "stratified"
                                or name in stratified else "none")
            for name in names}


def _chunk_context(exc: ValueError, index: int, start: int,
                   stop: int) -> ValueError:
    """Annotate an aggregation error with its chunk's identity.

    The streaming accumulators already report the absolute replication
    index of the first offending value; adding the chunk ordinal and its
    ``[start, stop)`` replication range makes a bad replication in a
    10^6-point run findable (re-run just that chunk's range).
    """
    return ValueError(f"{exc} [while aggregating chunk {index}, "
                      f"replications [{start}, {stop})]")


@keyword_only("base_seed", lead=2)
def replicate_point(point: SweepPoint, replications: int,
                    *, base_seed: int = 0, backend: str = "event",
                    aggregation: str = "auto",
                    chunk_size: Optional[int] = None,
                    variance: str = "none",
                    profile: Optional[Dict[str, float]] = None) -> Dict[str, float]:
    """Play ``replications`` randomized traces of one sweep point.

    The point's scheduler plays against freshly seeded instances of the
    point's adversary; adaptive schedulers use the adaptive referee,
    pure non-adaptive ones the oblivious referee.  Returns the aggregated
    ``work_*`` / ``efficiency_*`` / ``interrupts_*`` / ``episodes_*``
    columns plus ``quantile_method`` (``"exact"`` or ``"p2"``): work is in
    the time unit of the point's lifespan ``U`` (the paper's ``L`` on the
    integer DP grid) and set-up cost ``c``; efficiency is work divided by
    ``U`` (dimensionless); interrupts per game never exceed the point's
    budget ``p`` because the referee stops consulting the adversary once
    the budget is spent.

    ``backend="batch"`` plays replications level-synchronously with shared
    episode-schedule construction; non-adaptive points use the dedicated
    tail-reuse-aware batch pass.  ``aggregation`` / ``chunk_size`` select
    the aggregation pipeline (see the module docstring); replication ``r``
    is always seeded by its absolute index, so results are independent of
    the chunking.  ``variance`` selects the replication design and CI
    columns (see the module docstring); ``profile`` (a mutable mapping,
    optional) receives per-chunk stage accounting under the
    ``mc_chunks`` / ``mc_chunk_s_max`` keys.
    """
    if point.adversary is None:
        raise ValueError(f"point {point.index} has no adversary to sample")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    _check_backend(backend)
    resolve_variance(variance, int(replications))
    mode = resolve_aggregation(aggregation, int(replications))
    params = point.params()
    scheduler = make_scheduler(point.scheduler, params)
    adaptive = hasattr(scheduler, "episode_schedule")

    def play_range(start: int, stop: int):
        if backend == "batch" and adaptive:
            return _play_point_batch(point, scheduler, start, stop, base_seed,
                                     variance)
        if backend == "batch":
            return _play_point_nonadaptive_batch(point, scheduler, start,
                                                 stop, base_seed, variance)
        works: List[float] = []
        interrupts: List[float] = []
        episodes: List[float] = []
        for r in range(start, stop):
            seed = replication_seed(base_seed, point.index, r, variance)
            adversary = make_adversary(point.adversary, params, seed=seed)
            if adaptive:
                result = play_adaptive(scheduler, adversary, params)
            else:
                result = play_nonadaptive(scheduler, adversary, params)
            works.append(result.total_work)
            interrupts.append(float(result.num_interrupts))
            episodes.append(float(result.num_episodes))
        return works, interrupts, episodes

    cis = _make_cis(variance, ("work", "efficiency", "interrupts",
                               "episodes"), ("work", "efficiency"))
    row: Dict[str, float] = {}
    if mode == "exact":
        started = time.perf_counter()
        works, interrupts, episodes = play_range(0, int(replications))
        _record_chunk(profile, time.perf_counter() - started)
        efficiencies = [w / params.lifespan for w in works]
        row.update(aggregate(works, "work"))
        row.update(aggregate(efficiencies, "efficiency"))
        row.update(aggregate(interrupts, "interrupts"))
        row.update(aggregate(episodes, "episodes"))
        if cis is not None:
            cis["work"].extend(works, interrupts)
            cis["efficiency"].extend(efficiencies, interrupts)
            cis["interrupts"].extend(interrupts)
            cis["episodes"].extend(episodes)
            for name, ci in cis.items():
                row.update(ci.columns(name))
            row["variance"] = variance
        row["quantile_method"] = "exact"
        return row

    chunk = resolve_chunk_size(chunk_size, int(replications))
    aggregators = {name: StreamingAggregator(
                       name, QUANTILES, ci=None if cis is None else cis[name])
                   for name in ("work", "efficiency", "interrupts",
                                "episodes")}
    for index, (start, stop) in enumerate(_chunk_ranges(int(replications),
                                                        chunk)):
        started = time.perf_counter()
        works, interrupts, episodes = play_range(start, stop)
        try:
            aggregators["work"].extend(works, interrupts)
            aggregators["efficiency"].extend(
                [w / params.lifespan for w in works], interrupts)
            aggregators["interrupts"].extend(interrupts)
            aggregators["episodes"].extend(episodes)
        except ValueError as exc:
            raise _chunk_context(exc, index, start, stop) from exc
        _record_chunk(profile, time.perf_counter() - started)
    for name, aggregator in aggregators.items():
        row.update(aggregator.summary(name))
    if variance != "none":
        row["variance"] = variance
    row["quantile_method"] = "p2"
    return row


def _play_point_batch(point: SweepPoint, scheduler, rep_start: int,
                      rep_stop: int, base_seed: int,
                      variance: str = "none"):
    """Adaptive game over replications ``[rep_start, rep_stop)``, level by level.

    Mirrors :func:`repro.core.game.play_adaptive` step for step: every
    replication's adversary is constructed with the same (absolute-index)
    seed and consulted in the same episode order as under the event
    backend, so both backends consume identical randomness regardless of
    chunking.  Replications sharing a game state (residual lifespan,
    interrupts left) share one validated schedule and its prefix-sum work
    table; only the interrupted episodes' work values differ from the
    referee's by float summation order (``~1e-15``).  The schedule memo
    lives for one call — one chunk — so streaming chunked runs keep peak
    memory flat even when every replication visits a distinct residual.
    """
    params = point.params()
    c = params.setup_cost
    count = rep_stop - rep_start
    adversaries = [make_adversary(point.adversary, params,
                                  seed=replication_seed(base_seed, point.index,
                                                        r, variance))
                   for r in range(rep_start, rep_stop)]
    residual = [params.lifespan] * count
    p_left = [params.max_interrupts] * count
    works = [0.0] * count
    interrupts = [0.0] * count
    episodes = [0.0] * count
    alive = list(range(count))

    # (residual, interrupts_left) -> (schedule, total_length, finishes,
    #                                 prefix work, uninterrupted work)
    memo: Dict[tuple, tuple] = {}
    while alive:
        groups: Dict[tuple, List[int]] = {}
        for r in alive:
            groups.setdefault((residual[r], p_left[r]), []).append(r)

        missing: Dict[int, List[float]] = {}
        for (res, p) in groups:
            if (res, p) not in memo:
                missing.setdefault(p, []).append(res)
        for p, residuals in missing.items():
            build = getattr(scheduler, "episode_schedule_batch", None)
            if build is not None:
                schedules = build(residuals, p, c)
            else:
                schedules = [scheduler.episode_schedule(res, p, c)
                             for res in residuals]
            for res, schedule in zip(residuals, schedules):
                # The referee's checks, once per distinct schedule.
                if not isinstance(schedule, EpisodeSchedule):
                    raise SchedulingError(
                        f"scheduler returned {type(schedule).__name__}, "
                        "expected EpisodeSchedule")
                try:
                    schedule.validate_for_lifespan(res, require_exact=False)
                except InvalidScheduleError as exc:
                    raise SchedulingError(
                        "scheduler produced an inadmissible schedule for "
                        f"residual {res!r}: {exc}") from exc
                finishes = schedule.finish_times
                prefix = np.maximum(schedule.periods - c, 0.0).cumsum()
                memo[(res, p)] = (schedule, schedule.total_length, finishes,
                                  prefix, schedule.work_if_uninterrupted(c))

        next_alive: List[int] = []
        for (res, p), group_reps in groups.items():
            schedule, total_length, finishes, prefix, full_work = memo[(res, p)]
            for r in group_reps:
                episodes[r] += 1.0
                interrupt: Optional[float] = None
                if p > 0:
                    interrupt = adversaries[r].choose_interrupt(schedule, res,
                                                                p, c)
                    if interrupt is not None:
                        interrupt = float(interrupt)
                        if not (0.0 <= interrupt < total_length):
                            raise SchedulingError(
                                f"adversary chose interrupt time {interrupt!r} "
                                f"outside [0, {total_length!r})")
                if interrupt is None:
                    works[r] += full_work
                    continue
                completed = int(np.searchsorted(finishes, interrupt,
                                                side="right"))
                if completed:
                    works[r] += float(prefix[completed - 1])
                interrupts[r] += 1.0
                residual[r] = residual[r] - interrupt
                p_left[r] = p - 1
                if residual[r] > 0.0:
                    next_alive.append(r)
        alive = next_alive
    return works, interrupts, episodes


def _play_point_nonadaptive_batch(point: SweepPoint, scheduler,
                                  rep_start: int, rep_stop: int,
                                  base_seed: int, variance: str = "none"):
    """Non-adaptive game over replications ``[rep_start, rep_stop)``.

    Mirrors :func:`repro.core.game.play_nonadaptive` with a
    *tail-reuse-aware* array pass: the committed opportunity schedule is
    built and validated once; per stretch, replications facing the same
    tail object with the same residual share one truncated/extended
    schedule, its finish times and its prefix-sum work table; replications
    interrupted in the same period of a shared schedule share one tail
    object (so the grouping keeps paying off in later stretches); and the
    completed-period lookups of a group run as one vectorized
    ``searchsorted``.  Adversaries are consulted with exactly the event
    referee's arguments, in replication order, so both paths consume
    identical randomness; per-stretch work values differ from the event
    referee's only by float summation order (cumsum vs pairwise,
    ``~1e-15``).  All memos live for one call (one chunk), keeping peak
    memory flat in streaming mode.
    """
    params = point.params()
    c = params.setup_cost
    lifespan = params.lifespan
    budget = params.max_interrupts
    count = rep_stop - rep_start

    base = scheduler.opportunity_schedule(params)
    if not isinstance(base, EpisodeSchedule):
        raise SchedulingError(
            f"scheduler returned {type(base).__name__}, expected EpisodeSchedule")
    base.validate_for_lifespan(lifespan, require_exact=False)

    adversaries = [make_adversary(point.adversary, params,
                                  seed=replication_seed(base_seed, point.index,
                                                        r, variance))
                   for r in range(rep_start, rep_stop)]
    clock = [0.0] * count
    left = [budget] * count
    seen_interrupts = [0] * count
    tails: List[Optional[EpisodeSchedule]] = [base] * count
    works = [0.0] * count
    interrupts = [0.0] * count
    episodes = [0.0] * count
    alive = list(range(count))

    # (tail key, remaining) -> (schedule, total_length, finishes,
    #                           prefix work, uninterrupted work)
    current_memo: Dict[tuple, tuple] = {}
    # (id(schedule), first kept period) -> shared tail object (or None)
    tail_memo: Dict[tuple, Optional[EpisodeSchedule]] = {}
    while alive:
        groups: Dict[tuple, List[int]] = {}
        for r in alive:
            remaining = lifespan - clock[r]
            # The Section 2.2 exception: after the p-th interrupt the rest
            # of the lifespan runs as one long period.
            if left[r] == 0 and budget > 0 and seen_interrupts[r] > 0:
                tail_key: tuple = ("single",)
            elif tails[r] is None:
                tail_key = ("single",)
            else:
                tail_key = ("tail", id(tails[r]))
            groups.setdefault((tail_key, remaining), []).append(r)

        for (tail_key, remaining), group_reps in groups.items():
            if (tail_key, remaining) not in current_memo:
                if tail_key[0] == "single":
                    current = EpisodeSchedule.single_period(remaining)
                else:
                    tail = tails[group_reps[0]]
                    current = tail.truncated_to(remaining)
                    if current.total_length < remaining:
                        current = current.with_appended(
                            remaining - current.total_length)
                current_memo[(tail_key, remaining)] = (
                    current, current.total_length, current.finish_times,
                    np.maximum(current.periods - c, 0.0).cumsum(),
                    current.work_if_uninterrupted(c))

        next_alive: List[int] = []
        for (tail_key, remaining), group_reps in groups.items():
            current, total_length, finishes, prefix, full_work = \
                current_memo[(tail_key, remaining)]
            pending: List[Tuple[int, float]] = []
            for r in group_reps:
                episodes[r] += 1.0
                interrupt: Optional[float] = None
                if left[r] > 0:
                    interrupt = adversaries[r].choose_interrupt(
                        current, remaining, left[r], c)
                    if interrupt is not None:
                        interrupt = float(interrupt)
                        if not (0.0 <= interrupt < total_length):
                            raise SchedulingError(
                                f"adversary chose interrupt time {interrupt!r} "
                                f"outside [0, {total_length!r})")
                if interrupt is None:
                    works[r] += full_work
                else:
                    pending.append((r, interrupt))
            if not pending:
                continue
            times = np.asarray([t for _, t in pending], dtype=float)
            completed = np.searchsorted(finishes, times, side="right")
            # Oblivious continuation: the period containing the interrupt
            # (clamped away from the exact end, as the event referee does)
            # and everything before it are dropped; the rest is the tail.
            clamped = (np.minimum(times, total_length * (1 - 1e-15))
                       if total_length > 0 else times)
            kept = np.searchsorted(finishes, clamped, side="right") + 1
            for (r, interrupt), done, first_kept in zip(pending,
                                                        completed.tolist(),
                                                        kept.tolist()):
                if done:
                    works[r] += float(prefix[done - 1])
                interrupts[r] += 1.0
                seen_interrupts[r] += 1
                tail_ref = (id(current), int(first_kept) + 1)
                if tail_ref not in tail_memo:
                    tail_memo[tail_ref] = current.tail_from(int(first_kept) + 1)
                tails[r] = tail_memo[tail_ref]
                clock[r] += interrupt
                left[r] -= 1
                if clock[r] < lifespan:
                    next_alive.append(r)
        alive = next_alive
    return works, interrupts, episodes


def replicate_scenario(family, replications: int, *, base_seed: int = 0,
                       scheduler=None, scheduler_factory=None,
                       backend: str = "event",
                       aggregation: str = "auto",
                       chunk_size: Optional[int] = None,
                       variance: str = "none",
                       profile: Optional[Dict[str, float]] = None,
                       **family_kwargs) -> Dict[str, float]:
    """Replicate a randomized scenario family through the NOW simulator.

    Parameters
    ----------
    family:
        A scenario generator from :mod:`repro.workloads.scenarios` (or any
        callable accepting a ``seed=`` keyword and returning a
        :class:`~repro.workloads.scenarios.Scenario`).
    replications:
        How many independently seeded scenario instances to simulate.
    scheduler / scheduler_factory:
        Passed through to
        :class:`~repro.simulator.engine.CycleStealingSimulation`; defaults
        to a fresh :class:`~repro.schedules.EqualizingAdaptiveScheduler`.
    backend:
        ``"event"`` simulates each replication through the event-driven
        engine; ``"batch"`` runs them all through
        :func:`repro.simulator.batch.simulate_scenarios_batch` in one array
        pass (bit-identical reports, see the module docstring).
    aggregation / chunk_size:
        Aggregation pipeline (see the module docstring): exact one-shot
        aggregation, or fixed-size chunks of scenario instances feeding
        the streaming accumulators — instances are generated, simulated
        and released chunk by chunk, so peak memory is flat in
        ``replications``.
    variance:
        Replication design and CI columns (see the module docstring):
        ``"antithetic"`` draws scenario instances in paired-seed couples
        whose interrupt traces reflect each other (structural randomness
        — task bags, machine counts, speeds — stays identical within a
        pair); ``"stratified"`` keeps independent seeds and
        post-stratifies standard errors over observed interrupt counts.
    profile:
        Optional mutable mapping receiving per-chunk stage accounting
        (``mc_chunks`` / ``mc_chunk_s_max``).
    family_kwargs:
        Extra keyword arguments forwarded to the scenario generator.

    Returns the aggregated ``work_*`` / ``tasks_*`` / ``interrupts_*``
    columns plus ``scenario`` and ``quantile_method`` labels.  Work is in
    the scenario's time unit (that of its contracts' lifespans ``U`` and
    set-up costs ``c``); task counts and interrupt counts are
    dimensionless; interrupts here are the *observed* owner reclaims,
    which may exceed the negotiated budget ``p`` for contract-breaking
    families.  Replication ``r`` samples scenario instance
    ``family(seed=replication_seed(base_seed, family_label, r, variance))``
    — the seed depends on the family, the (absolute) replication index
    and the variance mode only, never on the scheduler or the chunking,
    so different schedulers face identical instances (paired comparison)
    and chunked results are bit-identical for any chunk size.
    """
    from ..simulator import CycleStealingSimulation

    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    _check_backend(backend)
    resolve_variance(variance, int(replications))
    mode = resolve_aggregation(aggregation, int(replications))

    # Stable label for seeding and reporting.  Never fall back to repr():
    # it embeds the object's memory address, which would break the
    # bit-identical determinism this module promises (e.g. for
    # functools.partial-wrapped families).
    family_label = (getattr(family, "__name__", None)
                    or getattr(getattr(family, "func", None), "__name__", None)
                    or type(family).__name__)

    def default_scheduler():
        from ..schedules import EqualizingAdaptiveScheduler
        return EqualizingAdaptiveScheduler()

    def simulate_range(start: int, stop: int) -> List:
        if backend == "batch":
            from ..simulator.batch import simulate_scenarios_batch

            scenarios = [family(seed=replication_seed(base_seed, family_label,
                                                      r, variance),
                                **family_kwargs)
                         for r in range(start, stop)]
            run_scheduler = scheduler
            if scheduler is None and scheduler_factory is None:
                run_scheduler = default_scheduler()
            return simulate_scenarios_batch(
                scenarios, run_scheduler, scheduler_factory=scheduler_factory)
        reports = []
        for r in range(start, stop):
            scenario = family(seed=replication_seed(base_seed, family_label,
                                                    r, variance),
                              **family_kwargs)
            if scheduler is None and scheduler_factory is None:
                run_scheduler = default_scheduler()
            else:
                run_scheduler = scheduler
            sim = CycleStealingSimulation(scenario.workstations, run_scheduler,
                                          task_bag=scenario.task_bag,
                                          scheduler_factory=scheduler_factory)
            reports.append(sim.run())
        return reports

    cis = _make_cis(variance, ("work", "tasks", "interrupts"),
                    ("work", "tasks"))
    row: Dict[str, float] = {"scenario": family_label}
    if mode == "exact":
        started = time.perf_counter()
        reports = simulate_range(0, int(replications))
        _record_chunk(profile, time.perf_counter() - started)
        works = [report.total_work for report in reports]
        tasks = [float(report.total_tasks_completed) for report in reports]
        interrupts = [float(report.total_interrupts) for report in reports]
        row.update(aggregate(works, "work"))
        row.update(aggregate(tasks, "tasks"))
        row.update(aggregate(interrupts, "interrupts"))
        if cis is not None:
            cis["work"].extend(works, interrupts)
            cis["tasks"].extend(tasks, interrupts)
            cis["interrupts"].extend(interrupts)
            for name, ci in cis.items():
                row.update(ci.columns(name))
            row["variance"] = variance
        row["quantile_method"] = "exact"
        return row

    chunk = resolve_chunk_size(chunk_size, int(replications))
    aggregators = {name: StreamingAggregator(
                       name, QUANTILES, ci=None if cis is None else cis[name])
                   for name in ("work", "tasks", "interrupts")}
    for index, (start, stop) in enumerate(_chunk_ranges(int(replications),
                                                        chunk)):
        started = time.perf_counter()
        reports = simulate_range(start, stop)
        works = [report.total_work for report in reports]
        tasks = [float(report.total_tasks_completed) for report in reports]
        interrupts = [float(report.total_interrupts) for report in reports]
        try:
            aggregators["work"].extend(works, interrupts)
            aggregators["tasks"].extend(tasks, interrupts)
            aggregators["interrupts"].extend(interrupts)
        except ValueError as exc:
            raise _chunk_context(exc, index, start, stop) from exc
        _record_chunk(profile, time.perf_counter() - started)
    for name, aggregator in aggregators.items():
        row.update(aggregator.summary(name))
    if variance != "none":
        row["variance"] = variance
    row["quantile_method"] = "p2"
    return row
