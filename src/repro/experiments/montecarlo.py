"""Monte-Carlo replication on top of the single-trace game and simulator.

The analytic layer answers "what is the *worst case*?" exactly; this module
answers "what happens *typically*?" by replication: ``N`` randomized
owner-interrupt traces per parameter point, drawn from the stochastic
adversaries in :mod:`repro.adversary` (game-level replication) or from the
randomized scenario generators in :mod:`repro.workloads.scenarios`
(simulator-level replication), aggregated into mean/std/quantile rows.

Determinism: replication ``r`` of point ``i`` is seeded with
``point_seed(base_seed, i, r)``, so aggregate rows are bit-identical no
matter how the orchestrator spreads replications over worker processes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.game import play_adaptive, play_nonadaptive
from .grid import SweepPoint, make_adversary, make_scheduler, point_seed

__all__ = ["aggregate", "replicate_point", "replicate_scenario"]

#: Quantiles reported for every replicated statistic.
QUANTILES = (0.1, 0.5, 0.9)


def aggregate(values: Sequence[float], prefix: str) -> Dict[str, float]:
    """Mean/std/min/max/quantile summary of one replicated statistic.

    The standard deviation is the *sample* standard deviation (``ddof=1``)
    when two or more replications are available, ``0.0`` otherwise.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"{prefix}_n": 0}
    out: Dict[str, float] = {
        f"{prefix}_n": int(arr.size),
        f"{prefix}_mean": float(arr.mean()),
        f"{prefix}_std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        f"{prefix}_min": float(arr.min()),
        f"{prefix}_max": float(arr.max()),
    }
    for q in QUANTILES:
        out[f"{prefix}_q{int(round(q * 100))}"] = float(np.quantile(arr, q))
    return out


def replicate_point(point: SweepPoint, replications: int,
                    base_seed: int = 0) -> Dict[str, float]:
    """Play ``replications`` randomized traces of one sweep point.

    The point's scheduler plays against freshly seeded instances of the
    point's adversary; adaptive schedulers use the adaptive referee,
    pure non-adaptive ones the oblivious referee.  Returns the aggregated
    ``work_*`` / ``efficiency_*`` / ``interrupts_*`` columns.
    """
    if point.adversary is None:
        raise ValueError(f"point {point.index} has no adversary to sample")
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")
    params = point.params()
    scheduler = make_scheduler(point.scheduler, params)
    adaptive = hasattr(scheduler, "episode_schedule")

    works: List[float] = []
    interrupts: List[float] = []
    episodes: List[float] = []
    for r in range(int(replications)):
        seed = point_seed(base_seed, point.index, r)
        adversary = make_adversary(point.adversary, params, seed=seed)
        if adaptive:
            result = play_adaptive(scheduler, adversary, params)
        else:
            result = play_nonadaptive(scheduler, adversary, params)
        works.append(result.total_work)
        interrupts.append(float(result.num_interrupts))
        episodes.append(float(result.num_episodes))

    row: Dict[str, float] = {}
    row.update(aggregate(works, "work"))
    row.update(aggregate([w / params.lifespan for w in works], "efficiency"))
    row.update(aggregate(interrupts, "interrupts"))
    row.update(aggregate(episodes, "episodes"))
    return row


def replicate_scenario(family, replications: int, *, base_seed: int = 0,
                       scheduler=None, scheduler_factory=None,
                       **family_kwargs) -> Dict[str, float]:
    """Replicate a randomized scenario family through the NOW simulator.

    Parameters
    ----------
    family:
        A scenario generator from :mod:`repro.workloads.scenarios` (or any
        callable accepting a ``seed=`` keyword and returning a
        :class:`~repro.workloads.scenarios.Scenario`).
    replications:
        How many independently seeded scenario instances to simulate.
    scheduler / scheduler_factory:
        Passed through to
        :class:`~repro.simulator.engine.CycleStealingSimulation`; defaults
        to a fresh :class:`~repro.schedules.EqualizingAdaptiveScheduler`.
    family_kwargs:
        Extra keyword arguments forwarded to the scenario generator.
    """
    from ..simulator import CycleStealingSimulation

    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications!r}")

    # Stable label for seeding and reporting.  Never fall back to repr():
    # it embeds the object's memory address, which would break the
    # bit-identical determinism this module promises (e.g. for
    # functools.partial-wrapped families).
    family_label = (getattr(family, "__name__", None)
                    or getattr(getattr(family, "func", None), "__name__", None)
                    or type(family).__name__)

    works: List[float] = []
    tasks: List[float] = []
    interrupts: List[float] = []
    for r in range(int(replications)):
        scenario = family(seed=point_seed(base_seed, family_label, r),
                          **family_kwargs)
        if scheduler is None and scheduler_factory is None:
            from ..schedules import EqualizingAdaptiveScheduler
            run_scheduler = EqualizingAdaptiveScheduler()
        else:
            run_scheduler = scheduler
        sim = CycleStealingSimulation(scenario.workstations, run_scheduler,
                                      task_bag=scenario.task_bag,
                                      scheduler_factory=scheduler_factory)
        report = sim.run()
        works.append(report.total_work)
        tasks.append(float(report.total_tasks_completed))
        interrupts.append(float(report.total_interrupts))

    row: Dict[str, float] = {"scenario": family_label}
    row.update(aggregate(works, "work"))
    row.update(aggregate(tasks, "tasks"))
    row.update(aggregate(interrupts, "interrupts"))
    return row
