"""String-keyed registries for schedulers, adversaries and scenario families.

Everything the experiment layer fans out over worker processes — and
everything a declarative spec (:mod:`repro.specs`) may name — is referenced
by a **stable string name** rather than by a Python object: a name is
picklable, diffable, printable in error messages, and survives in a
``runs/<run-id>/manifest.json`` long after the process that wrote it has
exited.  This module is the single source of truth for those names.

Three registries are exposed:

``SCHEDULERS``
    ``name -> factory(params) -> scheduler``.  A factory receives the
    opportunity's :class:`~repro.core.params.CycleStealingParams` (lifespan
    ``U`` — the paper also writes ``L`` for the integer DP grid — set-up
    cost ``c`` in the same time units, interrupt budget ``p``) so
    parameter-dependent baselines such as ``fixed-period`` can size
    themselves.
``ADVERSARIES``
    ``name -> factory(params, seed) -> adversary``.  Stochastic owners
    consume the seed; deterministic ones ignore it.
``SCENARIO_FAMILIES``
    ``name -> generator(seed=..., **kwargs) -> Scenario``.  Parameterised
    NOW scenario generators from :mod:`repro.workloads.scenarios`.

Each registry is a read-only :class:`~collections.abc.Mapping` (iteration,
``in``, ``[...]``, ``len`` all work), plus :meth:`Registry.register` for
adding entries and :meth:`Registry.create` for instantiating with a helpful
error on unknown names.  The built-in entries live next to the objects they
name (:mod:`repro.experiments.grid` registers schedulers and adversaries,
:mod:`repro.workloads.scenarios` registers scenario families); the
registries import those modules lazily on first lookup, so
``from repro.registry import SCHEDULERS`` alone is enough to see every
built-in name.

Adding an entry from downstream code is one call::

    from repro.registry import SCHEDULERS
    SCHEDULERS.register("my-scheduler", lambda params: MyScheduler())

and the name immediately works everywhere names do: ``sweep --schedulers``,
spec files, the run store, the report generator.
"""

from __future__ import annotations

import importlib
from collections.abc import Mapping
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .core.exceptions import InvalidParameterError

__all__ = [
    "Registry",
    "RegistryError",
    "SCHEDULERS",
    "ADVERSARIES",
    "SCENARIO_FAMILIES",
]


class RegistryError(InvalidParameterError):
    """An unknown or duplicate registry name."""


class Registry(Mapping):
    """A read-only mapping of stable names to factories, with registration.

    Parameters
    ----------
    kind:
        Human label used in error messages (``"scheduler"``, ...).
    populate_from:
        Module paths imported lazily before the first lookup; importing
        them triggers their module-level :meth:`register` calls.  This
        keeps each built-in entry defined next to the code it names while
        letting ``repro.registry`` be imported on its own.
    """

    def __init__(self, kind: str,
                 populate_from: Sequence[str] = ()) -> None:
        self.kind = str(kind)
        self._factories: Dict[str, Callable] = {}
        self._populate_from: Tuple[str, ...] = tuple(populate_from)
        self._populated = not self._populate_from
        self._populating = False

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _ensure_populated(self) -> None:
        if self._populated or self._populating:
            return
        # The imported modules call register(), which reads the mapping
        # through the Mapping API — the _populating sentinel breaks that
        # recursion without marking population done, so a failed import
        # propagates now *and* is retried on the next lookup instead of
        # leaving the registry silently empty forever.
        self._populating = True
        try:
            for module in self._populate_from:
                importlib.import_module(module)
        finally:
            self._populating = False
        self._populated = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, factory: Optional[Callable] = None,
                 *, overwrite: bool = False) -> Callable:
        """Register ``factory`` under ``name`` (usable as a decorator).

        Names must be non-empty strings; re-registering a taken name raises
        unless ``overwrite=True`` (tests use overwrite to patch entries).
        Returns the factory so ``@REGISTRY.register("name")`` works.
        """
        # Populate the built-ins first so the duplicate check below sees
        # them even when register() is the very first call on this
        # registry.  (No-op during population itself: the _populating
        # sentinel makes this recursion-safe.)
        self._ensure_populated()
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} registry names must be non-empty strings, "
                f"got {name!r}")
        if factory is None:  # decorator form
            def decorator(func: Callable) -> Callable:
                self.register(name, func, overwrite=overwrite)
                return func
            return decorator
        if not callable(factory):
            raise RegistryError(
                f"{self.kind} factory for {name!r} must be callable, "
                f"got {factory!r}")
        if not overwrite and name in self._factories:
            raise RegistryError(
                f"{self.kind} name {name!r} is already registered; "
                "pass overwrite=True to replace it")
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests patching the registry)."""
        self._ensure_populated()
        self._factories.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered names, sorted (for CLI choices and messages)."""
        self._ensure_populated()
        return sorted(self._factories)

    def create(self, name: str, *args, **kwargs):
        """Instantiate ``name`` with the given arguments.

        Unlike plain ``registry[name](...)`` this raises a
        :class:`RegistryError` that lists every known name — the message
        the CLI and the spec validator surface to the user.
        """
        self._ensure_populated()
        try:
            factory = self._factories[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None
        return factory(*args, **kwargs)

    def validate(self, names: Sequence[str], *, context: str = "") -> None:
        """Raise a :class:`RegistryError` naming every unknown entry in ``names``."""
        self._ensure_populated()
        unknown = [n for n in names if n not in self._factories]
        if unknown:
            where = f" in {context}" if context else ""
            raise RegistryError(
                f"unknown {self.kind} name(s) {unknown!r}{where}; "
                f"known: {self.names()}")

    # ------------------------------------------------------------------
    # Mapping protocol (read-only view)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Callable:
        self._ensure_populated()
        return self._factories[name]

    def __iter__(self) -> Iterator[str]:
        self._ensure_populated()
        return iter(self._factories)

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._ensure_populated()
        return f"Registry({self.kind!r}, {self.names()})"


#: ``name -> factory(params) -> scheduler`` (populated by repro.experiments.grid).
SCHEDULERS = Registry("scheduler", populate_from=("repro.experiments.grid",))

#: ``name -> factory(params, seed) -> adversary`` (populated by repro.experiments.grid).
ADVERSARIES = Registry("adversary", populate_from=("repro.experiments.grid",))

#: ``name -> generator(seed=..., **kwargs) -> Scenario``
#: (populated by repro.workloads.scenarios).
SCENARIO_FAMILIES = Registry("scenario family",
                             populate_from=("repro.workloads.scenarios",))
