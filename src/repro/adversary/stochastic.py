"""Stochastic owners (non-adversarial interrupt processes).

The guaranteed-output submodel assumes a malicious owner; its companion
(expected-output) submodel and any realistic NOW deployment face *random*
owner behaviour instead.  The classes here model such owners so the same
schedulers can be evaluated under both regimes — the comparison benchmarks
use them to show how much the worst-case guidelines give up (or do not give
up) when the owner is merely busy rather than malicious.
"""

from __future__ import annotations

from typing import Optional

from ..core.sampling import spawn_rng
from ..core.schedule import EpisodeSchedule
from .base import Adversary

__all__ = ["PoissonOwner", "UniformResidualOwner"]


class PoissonOwner(Adversary):
    """Owner whose reclaims arrive as a Poisson process.

    Parameters
    ----------
    rate:
        Expected number of reclaims per unit time (``> 0``).
    seed:
        Seed for the internal NumPy generator.
    """

    name = "poisson-owner"

    def __init__(self, rate: float, seed: Optional[int] = None):
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self._rng = spawn_rng(seed)

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Sample the next reclaim; interrupt if it lands inside the episode."""
        gap = self._rng.exponential(1.0 / self.rate)
        if gap < schedule.total_length:
            return float(gap)
        return None


class UniformResidualOwner(Adversary):
    """Owner who reclaims at a time uniform over the residual lifespan.

    With probability ``reclaim_probability`` a reclaim time is drawn
    uniformly from ``[0, residual_lifespan)``; if it falls beyond the
    announced episode the episode completes untouched.
    """

    name = "uniform-owner"

    def __init__(self, reclaim_probability: float = 1.0, seed: Optional[int] = None):
        if not (0.0 <= reclaim_probability <= 1.0):
            raise ValueError(
                f"reclaim_probability must lie in [0, 1], got {reclaim_probability!r}"
            )
        self.reclaim_probability = float(reclaim_probability)
        self._rng = spawn_rng(seed)

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Sample a uniform reclaim time over the residual lifespan."""
        if self._rng.random() > self.reclaim_probability:
            return None
        t = float(self._rng.uniform(0.0, residual_lifespan))
        if t < schedule.total_length:
            return t
        return None
