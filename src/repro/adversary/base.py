"""Adversary base class.

In the guaranteed-output submodel the owner of the borrowed workstation is
modelled as a malicious adversary who places (up to ``p``) interrupts so as
to minimise the work the borrower accomplishes.  Concrete adversaries differ
in how hard they try:

* the *optimal* adversaries in :mod:`repro.adversary.malicious` compute a
  genuinely worst-case response (they define the guaranteed work);
* the *heuristic* adversaries in :mod:`repro.adversary.heuristics` capture
  simpler behaviours (kill the last periods, kill the longest period, kill
  at fixed times, never kill) that are useful for sanity checks and for the
  comparison benchmarks;
* the *stochastic* owners in :mod:`repro.adversary.stochastic` are not
  adversarial at all — they model real owner behaviour for the
  expected-output companion analysis and for the NOW simulator.

All of them implement :class:`Adversary.choose_interrupt`, the contract
consumed by the game referees in :mod:`repro.core.game`.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.schedule import EpisodeSchedule

__all__ = ["Adversary"]


class Adversary(abc.ABC):
    """Base class for owner-interrupt strategies."""

    #: Short machine-friendly identifier; subclasses override.
    name: str = "adversary"

    @abc.abstractmethod
    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Decide whether (and when) to interrupt the announced episode.

        Parameters
        ----------
        schedule:
            The episode-schedule the borrower has committed to for the
            current episode.
        residual_lifespan:
            Usable lifespan remaining at the start of the episode.
        interrupts_remaining:
            How many interrupts the owner may still use (always ``>= 1``
            when the referee consults the adversary).
        setup_cost:
            The communication set-up cost ``c``.

        Returns
        -------
        Optional[float]
            Episode-relative interrupt time in ``[0, schedule.total_length)``,
            or ``None`` to let the episode run to completion.
        """

    def reset(self) -> None:
        """Forget any per-opportunity state (no-op by default)."""

    def describe(self) -> str:
        """One-line human-readable description used in reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def last_instant_of_period(schedule: EpisodeSchedule, period_index: int) -> float:
    """Episode time "just before" the end of the given 1-based period.

    The model's interrupt intervals are half-open (``[τ_k, T_k)``), so the
    adversary cannot name ``T_k`` itself; the referee and the work
    accounting treat any time inside the period identically (the whole
    period is killed), so we return a point a hair's breadth before ``T_k``
    that is guaranteed to still lie inside the period.
    """
    start = schedule.finish_time(period_index - 1)
    end = schedule.finish_time(period_index)
    # Stay strictly inside [start, end) while being as late as floating
    # point allows for reporting purposes.
    late = end - max((end - start) * 1e-12, 1e-15)
    return max(start, late)
