"""Adversaries and owner models for the cycle-stealing game."""

from .base import Adversary, last_instant_of_period
from .heuristics import (
    FirstPeriodAdversary,
    FixedTimesAdversary,
    LastPeriodAdversary,
    LongestPeriodAdversary,
    NeverInterruptAdversary,
    RandomPeriodAdversary,
)
from .malicious import MinimaxAdversary, OptimalNonAdaptiveAdversary
from .stochastic import PoissonOwner, UniformResidualOwner

__all__ = [
    "Adversary",
    "last_instant_of_period",
    "MinimaxAdversary",
    "OptimalNonAdaptiveAdversary",
    "NeverInterruptAdversary",
    "FirstPeriodAdversary",
    "LastPeriodAdversary",
    "LongestPeriodAdversary",
    "FixedTimesAdversary",
    "RandomPeriodAdversary",
    "PoissonOwner",
    "UniformResidualOwner",
]
