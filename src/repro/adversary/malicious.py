"""Optimal (worst-case) adversaries.

These adversaries realise the minimum in the definition of guaranteed work:
playing a scheduler against them yields exactly the scheduler's worst-case
output, which is what the paper's analysis is about.

* :class:`MinimaxAdversary` — optimal response to a *known, deterministic
  adaptive scheduler*.  For every period-end option it evaluates the work
  the borrower would still manage to secure (via the memoised minimax in
  :func:`repro.core.game.guaranteed_adaptive_work`) and picks the option
  minimising the total.
* :class:`OptimalNonAdaptiveAdversary` — optimal response to a non-adaptive
  schedule, re-solving the period-end interrupt-placement problem
  (:func:`repro.core.work.worst_case_nonadaptive_pattern`) for the tail it
  currently faces.
"""

from __future__ import annotations

from typing import Optional

from ..core.game import AdaptiveSchedulerProtocol, guaranteed_adaptive_work
from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from ..core.work import worst_case_nonadaptive_pattern
from ..core.arithmetic import positive_subtraction
from .base import Adversary, last_instant_of_period

__all__ = ["MinimaxAdversary", "OptimalNonAdaptiveAdversary"]


class MinimaxAdversary(Adversary):
    """Worst-case adversary against a known adaptive scheduler.

    Parameters
    ----------
    scheduler:
        The adaptive scheduler being attacked.  The adversary assumes the
        scheduler is deterministic (all schedulers in this library are);
        against a randomised scheduler the play is still legal but no longer
        guaranteed to be worst-case.
    residual_grain:
        Rounding grain used by the memoised continuation values.
    """

    name = "minimax"

    def __init__(self, scheduler: AdaptiveSchedulerProtocol,
                 residual_grain: float = 1e-6):
        self.scheduler = scheduler
        self.residual_grain = float(residual_grain)

    def _continuation(self, residual: float, interrupts: int, setup_cost: float) -> float:
        if residual <= 0.0 or interrupts < 0:
            return 0.0
        if interrupts == 0:
            schedule = self.scheduler.episode_schedule(residual, 0, setup_cost)
            return schedule.work_if_uninterrupted(setup_cost)
        params = CycleStealingParams(lifespan=residual, setup_cost=setup_cost,
                                     max_interrupts=interrupts)
        return guaranteed_adaptive_work(self.scheduler, params,
                                        residual_grain=self.residual_grain)

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Pick the period-end interrupt (or abstention) minimising total work."""
        c = setup_cost
        best_choice: Optional[float] = None
        best_value = schedule.work_if_uninterrupted(c)

        prefix_work = 0.0
        finishes = schedule.finish_times
        for k in range(1, schedule.num_periods + 1):
            residual_after = residual_lifespan - float(finishes[k - 1])
            value = prefix_work + self._continuation(residual_after,
                                                     interrupts_remaining - 1, c)
            if value < best_value - 1e-12:
                best_value = value
                best_choice = last_instant_of_period(schedule, k)
            prefix_work += positive_subtraction(schedule[k - 1], c)
        return best_choice


class OptimalNonAdaptiveAdversary(Adversary):
    """Worst-case adversary against a non-adaptive (oblivious) schedule.

    When consulted it recomputes the optimal placement of its remaining
    interrupts over the tail schedule it is currently facing and interrupts
    at the earliest period of that placement (optimal play is
    time-consistent, so recomputing at every episode is equivalent to
    committing to the placement up front).
    """

    name = "optimal-nonadaptive"

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt at the first period of the worst-case placement (if any)."""
        params = CycleStealingParams(lifespan=schedule.total_length,
                                     setup_cost=setup_cost,
                                     max_interrupts=interrupts_remaining)
        pattern, _ = worst_case_nonadaptive_pattern(schedule, params)
        if pattern.is_empty:
            return None
        return last_instant_of_period(schedule, pattern.indices[0])
