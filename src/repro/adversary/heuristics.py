"""Heuristic (non-optimal) adversaries.

These simple strategies are useful as sanity checks (no adversary should
ever extract more work-loss than the optimal ones in
:mod:`repro.adversary.malicious`), as the explicit strategies the paper's
analysis names (e.g. "kill the last ``p`` periods at their last instants"
for the non-adaptive guideline), and as mild opponents in the comparison
benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.sampling import spawn_rng
from ..core.schedule import EpisodeSchedule
from .base import Adversary, last_instant_of_period

__all__ = [
    "NeverInterruptAdversary",
    "FirstPeriodAdversary",
    "LastPeriodAdversary",
    "LongestPeriodAdversary",
    "FixedTimesAdversary",
    "RandomPeriodAdversary",
]


class NeverInterruptAdversary(Adversary):
    """An owner who never reclaims the workstation."""

    name = "never"

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Always let the episode run to completion."""
        return None


class FirstPeriodAdversary(Adversary):
    """Kill the first period of every episode (eager harassment)."""

    name = "first-period"

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt at the last instant of period 1."""
        return last_instant_of_period(schedule, 1)


class LastPeriodAdversary(Adversary):
    """Kill the final period of every episode.

    Against the equal-period non-adaptive guideline, an owner who does this
    with every available interrupt realises exactly the worst case analysed
    in Section 3.1 (the last ``p`` periods die).
    """

    name = "last-period"

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt at the last instant of the final period."""
        return last_instant_of_period(schedule, schedule.num_periods)


class LongestPeriodAdversary(Adversary):
    """Kill the longest period of the announced episode (greedy damage)."""

    name = "longest-period"

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt at the last instant of the longest period."""
        k = int(np.argmax(schedule.periods)) + 1
        return last_instant_of_period(schedule, k)


class FixedTimesAdversary(Adversary):
    """Interrupt at predetermined opportunity times (a replayed owner trace).

    Parameters
    ----------
    times:
        Interrupt times measured from the start of the opportunity.
    lifespan:
        The opportunity's total lifespan ``U`` (needed to translate the
        residual lifespan the referee reports into elapsed time).
    """

    name = "fixed-times"

    def __init__(self, times: Iterable[float], lifespan: float):
        self.times = sorted(float(t) for t in times)
        self.lifespan = float(lifespan)

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt at the first trace time that falls inside this episode."""
        elapsed = self.lifespan - residual_lifespan
        episode_end = elapsed + schedule.total_length
        for t in self.times:
            if elapsed <= t < episode_end:
                return t - elapsed
        return None


class RandomPeriodAdversary(Adversary):
    """Interrupt a uniformly random period with a given probability.

    Parameters
    ----------
    probability:
        Chance of interrupting a given episode at all (per consultation).
    seed:
        Seed for the internal NumPy generator, for reproducible runs.
    """

    name = "random-period"

    def __init__(self, probability: float = 1.0, seed: Optional[int] = None):
        if not (0.0 <= probability <= 1.0):
            raise ValueError(f"probability must lie in [0, 1], got {probability!r}")
        self.probability = float(probability)
        self._rng = spawn_rng(seed)

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Interrupt a random period at its last instant (or abstain)."""
        if self._rng.random() > self.probability:
            return None
        k = int(self._rng.integers(1, schedule.num_periods + 1))
        return last_instant_of_period(schedule, k)
