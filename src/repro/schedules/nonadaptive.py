"""Non-adaptive scheduling guidelines (Section 3.1 of the paper).

The paper's non-adaptive guideline ``S_na^(p)[U]`` splits the lifespan into
``m = ⌊√(pU/c)⌋`` equal periods of length ``√(cU/p)``.  The adversary's best
response is to kill the last ``p`` periods at their last instants, leaving
``U − Θ(√(pcU)) + pc`` units of guaranteed work, which is optimal (up to
low-order terms) among equal-period non-adaptive schedules.

Besides the literal guideline this module provides
:class:`TunedEqualPeriodScheduler`, which searches numerically for the
best equal-period count against the exact worst-case adversary — useful in
the benchmarks to show how close the closed-form guideline lands to the best
member of its own family.
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis import bounds
from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from ..core.work import worst_case_nonadaptive_work
from .base import NonAdaptiveScheduler

__all__ = ["RosenbergNonAdaptiveScheduler", "TunedEqualPeriodScheduler"]


class RosenbergNonAdaptiveScheduler(NonAdaptiveScheduler):
    """The paper's non-adaptive guideline ``S_na^(p)[U]`` (Section 3.1).

    Period count ``m^(p)[U] = ⌊√(pU/c)⌋`` with equal period lengths
    ``≈ √(cU/p)``.  Because the floor generally leaves a sliver of lifespan
    unscheduled, the ``m`` periods are stretched uniformly to ``U/m`` so the
    schedule covers the lifespan exactly while staying equal-length — the
    convention that keeps the measured worst case at the Section 3.1 value
    (a single fat remainder period would hand the adversary a better
    target).

    For ``p = 0`` the guideline degenerates to the single-period schedule,
    which Proposition 4.1(d) shows is optimal.
    """

    name = "rosenberg-nonadaptive"

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the guideline schedule for the given opportunity."""
        U = params.lifespan
        c = params.setup_cost
        p = params.max_interrupts
        if p == 0 or c == 0.0:
            return EpisodeSchedule.single_period(U)
        m = bounds.nonadaptive_num_periods(U, c, p)
        t = bounds.nonadaptive_period_length(U, c, p)
        if m <= 1 or t >= U:
            return EpisodeSchedule.single_period(U)
        return EpisodeSchedule.equal_periods(U, m)

    def predicted_work(self, params: CycleStealingParams) -> float:
        """The Section 3.1 closed-form estimate of this schedule's work."""
        return bounds.nonadaptive_guarantee(params.lifespan, params.setup_cost,
                                            params.max_interrupts)


class TunedEqualPeriodScheduler(NonAdaptiveScheduler):
    """Best equal-period non-adaptive schedule found by direct search.

    Evaluates every candidate period count ``m`` in a window around the
    guideline value (and a geometric sweep outside it) against the *exact*
    worst-case adversary and keeps the best.  This is the strongest member
    of the equal-period family and serves as the upper envelope the
    closed-form guideline is compared against.

    Parameters
    ----------
    max_candidates:
        Cap on the number of period counts evaluated (the search space is
        pruned geometrically beyond the window around ``√(pU/c)``).
    """

    name = "tuned-equal-period"

    def __init__(self, max_candidates: int = 200):
        if max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")
        self.max_candidates = int(max_candidates)

    def _candidate_counts(self, params: CycleStealingParams) -> list:
        U, c, p = params.lifespan, params.setup_cost, params.max_interrupts
        upper = max(2, int(U / max(c, 1e-12)))
        guess = bounds.nonadaptive_num_periods(U, c, max(p, 1))
        window = range(max(1, guess - 25), min(upper, guess + 25) + 1)
        candidates = set(window)
        candidates.add(1)
        m = 1
        while m <= upper and len(candidates) < self.max_candidates:
            candidates.add(m)
            m = max(m + 1, int(m * 1.3))
        return sorted(candidates)[: self.max_candidates]

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the best equal-period schedule for the given opportunity."""
        best_schedule: Optional[EpisodeSchedule] = None
        best_work = -math.inf
        for m in self._candidate_counts(params):
            schedule = EpisodeSchedule.equal_periods(params.lifespan, m)
            work = worst_case_nonadaptive_work(schedule, params)
            if work > best_work:
                best_work = work
                best_schedule = schedule
        assert best_schedule is not None  # at least m = 1 is always evaluated
        return best_schedule
