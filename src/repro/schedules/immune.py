"""r-immune schedules and tail compaction (Theorem 4.2).

An ``m``-period episode-schedule is *r-immune* when the adversary will never
interrupt a period whose index exceeds ``m − r`` (because doing so would be
strictly worse for the adversary than its other options).  Theorem 4.2 shows
that for such a schedule every period in that immune tail can be replaced by
periods of length in ``(c, 2c]`` without decreasing the guaranteed work:
splitting a long immune period into two halves only adds work.

This module provides:

* :func:`immunity_order` — the largest ``r`` for which a schedule is
  r-immune against the exact worst-case adversary (measured, not assumed);
* :func:`compact_immune_tail` — the Theorem 4.2 rewrite, replacing the last
  ``r`` periods by short periods of length ``(1 + ε)c``.
"""

from __future__ import annotations

from typing import List

from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from ..core.work import worst_case_nonadaptive_pattern

__all__ = ["immunity_order", "compact_immune_tail"]


def immunity_order(schedule: EpisodeSchedule, params: CycleStealingParams) -> int:
    """Measured immunity of a schedule against the exact worst-case adversary.

    Returns the largest ``r`` such that the optimal adversary pattern never
    interrupts a period of index greater than ``m − r``.  (``0`` means the
    very last period is attacked; ``m`` means the adversary prefers not to
    interrupt at all.)
    """
    pattern, _ = worst_case_nonadaptive_pattern(schedule, params)
    m = schedule.num_periods
    if pattern.is_empty:
        return m
    return m - pattern.last_index


def compact_immune_tail(schedule: EpisodeSchedule, setup_cost: float, r: int,
                        *, epsilon: float = 0.5) -> EpisodeSchedule:
    """Rewrite the last ``r`` periods into short periods of ``(1 + ε)c``.

    Implements the constructive direction of Theorem 4.2: the combined
    length of the last ``r`` periods is redistributed into periods of length
    ``(1 + ε)c`` (with one final period absorbing the remainder so the
    episode length is exactly preserved).  For a genuinely r-immune schedule
    this cannot decrease the guaranteed work; callers can verify the effect
    with :func:`repro.core.work.worst_case_nonadaptive_work`.

    Parameters
    ----------
    r:
        Number of trailing periods to compact; clipped to the schedule
        length.
    epsilon:
        The ε of the replacement periods, in ``(0, 1]``.
    """
    if not (0.0 < epsilon <= 1.0):
        raise ValueError(f"epsilon must lie in (0, 1], got {epsilon!r}")
    c = float(setup_cost)
    m = schedule.num_periods
    r = max(0, min(int(r), m))
    if r == 0 or c == 0.0:
        return schedule

    head = schedule.periods[: m - r].tolist()
    tail_budget = float(schedule.periods[m - r:].sum())
    short = (1.0 + epsilon) * c

    new_tail: List[float] = []
    while tail_budget >= 2.0 * short:
        new_tail.append(short)
        tail_budget -= short
    if tail_budget > 0.0:
        new_tail.append(tail_budget)

    return EpisodeSchedule(head + new_tail)
