"""Productive-schedule transformation (Theorem 4.1).

A schedule is *productive* when every period except possibly the last one in
each episode is strictly longer than the set-up cost ``c``.  Theorem 4.1
shows that any opportunity-schedule can be replaced by a productive one
without decreasing its work: a non-productive non-terminal period is merged
with its successor (the merged period contains at least as much productive
time, and one fewer set-up is paid).

:func:`make_productive` implements that transformation for a single episode
schedule; :func:`make_fully_productive` additionally merges a short terminal
period into its predecessor, producing the *fully productive* schedules the
paper concentrates on in Section 4.1.
"""

from __future__ import annotations

from typing import List

from ..core.schedule import EpisodeSchedule

__all__ = ["make_productive", "make_fully_productive", "count_nonproductive"]


def count_nonproductive(schedule: EpisodeSchedule, setup_cost: float,
                        *, include_last: bool = False) -> int:
    """Number of periods of length at most ``c`` (optionally counting the last)."""
    periods = schedule.periods
    scope = periods if include_last else periods[:-1]
    return int((scope <= float(setup_cost)).sum())


def make_productive(schedule: EpisodeSchedule, setup_cost: float) -> EpisodeSchedule:
    """Merge non-productive non-terminal periods forward (Theorem 4.1).

    Scans the schedule left to right; whenever a non-terminal period has
    length ``<= c`` it is combined with the following period.  The total
    episode length is preserved and the work under any adversary behaviour
    never decreases (each merge removes one interruptable boundary and one
    set-up charge).
    """
    c = float(setup_cost)
    merged: List[float] = []
    carry = 0.0
    periods = schedule.periods.tolist()
    for i, t in enumerate(periods):
        t = t + carry
        carry = 0.0
        is_last = i == len(periods) - 1
        if t <= c and not is_last:
            carry = t
        else:
            merged.append(t)
    if carry > 0.0:
        if merged:
            merged[-1] += carry
        else:
            merged.append(carry)
    return EpisodeSchedule(merged)


def make_fully_productive(schedule: EpisodeSchedule, setup_cost: float) -> EpisodeSchedule:
    """Make every period (including the last) strictly exceed ``c`` if possible.

    Applies :func:`make_productive` and then, if the final period is still
    ``<= c``, merges it into its predecessor.  A single-period schedule is
    returned unchanged (there is nothing to merge it into).
    """
    c = float(setup_cost)
    productive = make_productive(schedule, setup_cost)
    periods = productive.periods.tolist()
    if len(periods) >= 2 and periods[-1] <= c:
        periods[-2] += periods[-1]
        periods = periods[:-1]
    return EpisodeSchedule(periods)
