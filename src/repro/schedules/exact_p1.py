"""The exactly-optimal single-interrupt episode-schedule (Section 5.2).

For ``p = 1`` the paper derives the optimal episode-schedule ``S_opt^(1)[U]``
in closed form (eq. 5.1 and Table 2):

* ``m = ⌈√(2U/c − 7/4) − 1/2⌉`` periods,
* a fractional part ``ε = (U − c)/(mc) − (m − 1)/2 ∈ (0, 1]``,
* period lengths ``t_k = (m − k + ε)c`` for ``k ≤ m − 2`` and
  ``t_{m−1} = t_m = (1 + ε)c``,
* guaranteed work ``W^(1)[U] ≈ U − √(2cU) − c/2``.

:class:`ExactP1Scheduler` implements this schedule.  It is an adaptive
scheduler that is only defined for interrupt budgets of at most one; it is
used as the reference point when measuring how close the p = 1 guideline
``S_a^(1)`` comes to optimal (Table 2 reproduction), and as a strong
building block inside other schedulers once only one interrupt remains.
"""

from __future__ import annotations

from typing import List

from ..analysis import bounds
from ..core.exceptions import SchedulingError
from ..core.schedule import EpisodeSchedule
from .base import AdaptiveScheduler

__all__ = ["ExactP1Scheduler"]


class ExactP1Scheduler(AdaptiveScheduler):
    """Optimal episode-schedules for opportunities with at most one interrupt.

    ``episode_schedule`` raises :class:`SchedulingError` when asked for a
    schedule with ``interrupts_remaining >= 2`` — the closed form simply does
    not cover that case (that is exactly what the general guidelines and the
    DP-optimal scheduler are for).
    """

    name = "exact-p1"

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return ``S_opt^(p)`` for ``p ∈ {0, 1}``."""
        L = float(residual_lifespan)
        c = float(setup_cost)
        p = int(interrupts_remaining)
        if L <= 0.0:
            raise SchedulingError(f"residual lifespan must be positive, got {L!r}")
        if p == 0:
            # Proposition 4.1(d): the single long period is uniquely optimal.
            return EpisodeSchedule.single_period(L)
        if p >= 2:
            raise SchedulingError(
                "ExactP1Scheduler only covers p <= 1; use EqualizingAdaptiveScheduler "
                "or DPOptimalScheduler for larger interrupt budgets"
            )
        if c == 0.0 or L <= 2.0 * c:
            # Too short for two productive periods: nothing can be guaranteed,
            # a single period at least wins the no-interrupt case.
            return EpisodeSchedule.single_period(L)
        return self._p1_schedule(L, c)

    @staticmethod
    def _p1_schedule(lifespan: float, setup_cost: float) -> EpisodeSchedule:
        """Construct the Table 2 optimal schedule for ``p = 1``."""
        U, c = lifespan, setup_cost
        m = bounds.optimal_p1_num_periods(U, c)
        eps = bounds.optimal_p1_epsilon(U, c, m)
        # Guard against pathological ε outside (0, 1] for very small U/c; the
        # closed form is only claimed for lifespans long enough to support
        # m >= 2 productive periods.  Nudging m keeps the sum exact.
        attempts = 0
        while not (0.0 < eps <= 1.0) and attempts < 4:
            m += 1 if eps <= 0.0 else -1
            m = max(2, m)
            eps = bounds.optimal_p1_epsilon(U, c, m)
            attempts += 1
        lengths: List[float] = []
        for k in range(1, m + 1):
            if k >= m - 1:
                lengths.append((1.0 + eps) * c)
            else:
                lengths.append((m - k + eps) * c)
        return EpisodeSchedule.from_period_lengths(lengths, U)

    @staticmethod
    def predicted_work(lifespan: float, setup_cost: float) -> float:
        """Table 2's closed-form ``W^(1)[U] ≈ U − √(2cU) − c/2``."""
        return bounds.optimal_p1_work(lifespan, setup_cost)
