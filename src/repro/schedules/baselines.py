"""Baseline schedulers the guidelines are compared against.

The paper motivates its guidelines by contrasting the two naive extremes —
"many short periods" (safe but communication-bound) and "few long periods"
(efficient but fragile) — and by contrast with prior NOW scheduling work
that auctions off *equal, fixed-size chunks* of a data-parallel job
(Atallah et al. [1]).  The baselines here make those alternatives concrete:

* :class:`SinglePeriodScheduler` — one long period (optimal only for p = 0);
* :class:`FixedPeriodScheduler` — fixed-size chunks, the "auction" style of
  prior work, with a chunk size the user picks (e.g. tuned to the expected
  number of interrupts, or simply a round number);
* :class:`GeometricPeriodScheduler` — periods growing geometrically, the
  classic "start cautious, then trust the machine" heuristic used by
  practical cycle-stealing systems;
* :class:`EqualSplitScheduler` — splits the lifespan into ``p + 1`` equal
  periods (one per potential episode), the natural first guess for a
  guaranteed-output schedule.

Each implements both the adaptive and the non-adaptive protocol so it can be
run through either referee and through the discrete-event simulator.
"""

from __future__ import annotations

from ..core.exceptions import SchedulingError
from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from .base import AdaptiveScheduler, NonAdaptiveScheduler

__all__ = [
    "SinglePeriodScheduler",
    "FixedPeriodScheduler",
    "GeometricPeriodScheduler",
    "EqualSplitScheduler",
]


class SinglePeriodScheduler(AdaptiveScheduler, NonAdaptiveScheduler):
    """One long period covering the whole (residual) lifespan.

    This maximises output when no interrupt occurs but guarantees nothing as
    soon as a single interrupt is possible — the cautionary extreme of the
    paper's introduction.
    """

    name = "single-period"

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the one-period schedule for the residual lifespan."""
        if residual_lifespan <= 0.0:
            raise SchedulingError("residual lifespan must be positive")
        return EpisodeSchedule.single_period(residual_lifespan)

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the one-period schedule for the whole lifespan."""
        return EpisodeSchedule.single_period(params.lifespan)


class FixedPeriodScheduler(AdaptiveScheduler, NonAdaptiveScheduler):
    """Fixed-size chunks of a user-chosen length.

    Parameters
    ----------
    period_length:
        The chunk size.  The final period of each episode absorbs whatever
        remainder is left so the lifespan is covered exactly.
    """

    name = "fixed-period"

    def __init__(self, period_length: float):
        if period_length <= 0.0:
            raise ValueError(f"period_length must be positive, got {period_length!r}")
        self.period_length = float(period_length)

    def describe(self) -> str:
        return f"{self.name}(t={self.period_length:g})"

    def _build(self, lifespan: float) -> EpisodeSchedule:
        if lifespan <= self.period_length:
            return EpisodeSchedule.single_period(lifespan)
        full = int(lifespan // self.period_length)
        lengths = [self.period_length] * full
        return EpisodeSchedule.from_period_lengths(lengths, lifespan)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return fixed-size chunks covering the residual lifespan."""
        if residual_lifespan <= 0.0:
            raise SchedulingError("residual lifespan must be positive")
        return self._build(residual_lifespan)

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return fixed-size chunks covering the whole lifespan."""
        return self._build(params.lifespan)


class GeometricPeriodScheduler(AdaptiveScheduler, NonAdaptiveScheduler):
    """Periods growing geometrically from an initial probe.

    Parameters
    ----------
    initial_length:
        Length of the first period (defaults to twice the set-up cost at
        schedule-construction time when left ``None``).
    growth:
        Multiplicative factor applied to successive periods (``> 1``).
    """

    name = "geometric-period"

    def __init__(self, initial_length: float = None, growth: float = 2.0):
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth!r}")
        if initial_length is not None and initial_length <= 0.0:
            raise ValueError(f"initial_length must be positive, got {initial_length!r}")
        self.initial_length = initial_length
        self.growth = float(growth)

    def describe(self) -> str:
        return f"{self.name}(x{self.growth:g})"

    def _build(self, lifespan: float, setup_cost: float) -> EpisodeSchedule:
        first = self.initial_length if self.initial_length is not None else max(
            2.0 * setup_cost, lifespan * 1e-3)
        if first <= 0.0 or first >= lifespan:
            return EpisodeSchedule.single_period(lifespan)
        lengths = []
        t = first
        total = 0.0
        while total + t < lifespan:
            lengths.append(t)
            total += t
            t *= self.growth
        return EpisodeSchedule.from_period_lengths(lengths, lifespan)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return geometrically growing periods for the residual lifespan."""
        if residual_lifespan <= 0.0:
            raise SchedulingError("residual lifespan must be positive")
        return self._build(residual_lifespan, setup_cost)

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return geometrically growing periods for the whole lifespan."""
        return self._build(params.lifespan, params.setup_cost)


class EqualSplitScheduler(AdaptiveScheduler, NonAdaptiveScheduler):
    """Split the lifespan into ``p + 1`` equal periods (one per episode).

    The intuition "I can be interrupted p times, so give the machine p + 1
    pieces" is natural but badly suboptimal: the adversary still kills the
    piece in progress each time, so the guaranteed work is zero.  Keeping
    this baseline in the comparison benchmarks makes the value of the
    guideline's √-scaling visible.
    """

    name = "equal-split"

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return ``interrupts_remaining + 1`` equal periods."""
        if residual_lifespan <= 0.0:
            raise SchedulingError("residual lifespan must be positive")
        return EpisodeSchedule.equal_periods(residual_lifespan,
                                             max(1, interrupts_remaining + 1))

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return ``p + 1`` equal periods covering the lifespan."""
        return EpisodeSchedule.equal_periods(params.lifespan,
                                             max(1, params.max_interrupts + 1))
