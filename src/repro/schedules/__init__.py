"""Schedulers: the paper's guidelines, exact optima and baselines.

* Guidelines — :class:`RosenbergNonAdaptiveScheduler` (Section 3.1),
  :class:`EqualizingAdaptiveScheduler` (Theorem 4.3),
  :class:`RosenbergAdaptiveScheduler` (the literal ``S_a^(p)`` of
  Section 3.2).
* Exact optima — :class:`ExactP1Scheduler` (Section 5.2 / Table 2) and
  :class:`DPOptimalScheduler` (integer-grid dynamic programming).
* Baselines — single period, fixed chunks, geometric chunks, equal split.
* Structural transformations — :func:`make_productive` (Theorem 4.1),
  :func:`compact_immune_tail` (Theorem 4.2).
"""

from .adaptive import EqualizingAdaptiveScheduler, RosenbergAdaptiveScheduler, WorkOracle
from .base import AdaptiveScheduler, NonAdaptiveScheduler
from .baselines import (
    EqualSplitScheduler,
    FixedPeriodScheduler,
    GeometricPeriodScheduler,
    SinglePeriodScheduler,
)
from .dp_optimal import DPOptimalScheduler
from .exact_p1 import ExactP1Scheduler
from .immune import compact_immune_tail, immunity_order
from .nonadaptive import RosenbergNonAdaptiveScheduler, TunedEqualPeriodScheduler
from .productive import count_nonproductive, make_fully_productive, make_productive

__all__ = [
    "AdaptiveScheduler",
    "NonAdaptiveScheduler",
    "RosenbergNonAdaptiveScheduler",
    "TunedEqualPeriodScheduler",
    "EqualizingAdaptiveScheduler",
    "RosenbergAdaptiveScheduler",
    "WorkOracle",
    "ExactP1Scheduler",
    "DPOptimalScheduler",
    "SinglePeriodScheduler",
    "FixedPeriodScheduler",
    "GeometricPeriodScheduler",
    "EqualSplitScheduler",
    "make_productive",
    "make_fully_productive",
    "count_nonproductive",
    "immunity_order",
    "compact_immune_tail",
]
