"""Adaptive scheduling guidelines (Sections 3.2, 4.2 and 5 of the paper).

Two adaptive schedulers are provided.

:class:`EqualizingAdaptiveScheduler`
    The constructive form of the paper's guideline methodology
    (Theorem 4.3): period lengths are chosen so that every option available
    to the adversary — interrupting at the last instant of any period —
    has the same consequence for the total work.  The construction needs an
    estimate ("oracle") of the optimal work ``W^(p−1)[L]`` achievable with
    one fewer interrupt; by default the closed-form approximation of
    Theorem 5.1 is used, and an exact dynamic-programming oracle can be
    plugged in instead (see :mod:`repro.dp`).

:class:`RosenbergAdaptiveScheduler`
    The literal printed episode-schedules ``S_a^(p)[U]`` of Section 3.2:
    a tail of ``⌈2p/3⌉`` periods of length ``3c/2`` preceded by periods in
    arithmetic progression with common difference ``4^{1−p}·c``.  For
    ``p = 1`` this coincides with the right-hand column of Table 2.  (Some
    constants for ``p ≥ 2`` are corrupted in the available OCR of the
    paper; see DESIGN.md — the arithmetic-progression structure is
    implemented as printed and its measured deviation from Theorem 5.1 is
    reported in EXPERIMENTS.md.)

Both construct episode-schedules *backwards* (from the end of the residual
lifespan towards its beginning), which makes the Theorem 4.3 recurrence
explicit: the frontmost period simply absorbs whatever lifespan is left.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from ..analysis import bounds
from ..core.exceptions import SchedulingError
from ..core.schedule import EpisodeSchedule
from .base import AdaptiveScheduler

__all__ = ["EqualizingAdaptiveScheduler", "RosenbergAdaptiveScheduler", "WorkOracle"]


#: Type of the work oracle used by the equalising construction:
#: ``oracle(residual_lifespan, interrupts_remaining, setup_cost) -> work``.
WorkOracle = Callable[[float, int, float], float]


def _closed_form_oracle(residual: float, interrupts: int, setup_cost: float) -> float:
    """Default oracle: the closed-form optimal-work approximation (Thm 5.1)."""
    return bounds.closed_form_optimal_work(residual, setup_cost, interrupts)


class _BackwardPrefix:
    """Shared backward construction state for one ``(p, c)`` episode family.

    Both guideline schedulers build episode-schedules *backwards*: a short
    tail, then body periods whose values depend only on how much lifespan
    has been placed behind them — never on the residual lifespan ``L``
    itself.  ``L`` enters solely through two cutoffs (how much of the tail
    fits, and where the frontmost period absorbs the remainder).  One
    lazily-extended prefix therefore serves every residual of a batch, and
    each row's schedule is a slice of it plus its own front period — with
    float-for-float the same values as the scalar construction.
    """

    __slots__ = ("short", "tail_count", "tail_end", "body_t", "body_placed",
                 "prev_t", "placed", "capped")

    def __init__(self, short: float, tail_count: int, tail_end: float,
                 prev_t: float, capped: bool):
        self.short = short
        self.tail_count = tail_count
        self.tail_end = tail_end          # lifespan placed by the full tail
        self.body_t: List[float] = []     # body period lengths, back to front
        self.body_placed: List[float] = []  # placed-total after each body append
        self.prev_t = prev_t
        self.placed = tail_end
        self.capped = capped              # max_periods reached while extending


def _assemble_from_prefix(scheduler, residuals, p: int, c: float,
                          state: Optional[_BackwardPrefix],
                          max_periods: int) -> List[EpisodeSchedule]:
    """Slice one shared backward prefix into per-residual episode-schedules.

    Residuals the prefix cannot serve bit-identically — shorter than the
    full tail, hitting the ``max_periods`` cap, or non-positive — fall back
    to the scalar ``episode_schedule`` (which also raises the scalar error
    messages), so the result is always float-for-float what a per-residual
    loop would have produced.
    """
    values = [float(x) for x in residuals]
    out: List[Optional[EpisodeSchedule]] = [None] * len(values)
    vec_idx: List[int] = []
    single_idx: List[int] = []
    for i, L in enumerate(values):
        if L > 0.0 and (L <= 2.0 * c or p == 0 or c == 0.0):
            # The scalar short-residual / exhausted-adversary / zero-cost
            # branches all emit one long period; batched below.
            single_idx.append(i)
        elif state is None or state.capped or L < state.tail_end:
            out[i] = scheduler.episode_schedule(L, p, c)
        elif L == state.tail_end:
            # The tail alone covers the residual; the body loop never runs.
            out[i] = EpisodeSchedule.from_validated_array(
                np.full(state.tail_count, state.short))
        else:
            vec_idx.append(i)
    if single_idx:
        # One shared read-only buffer; every single-period schedule is a
        # zero-copy view into it.
        singles = np.asarray([values[i] for i in single_idx])
        singles.setflags(write=False)
        for j, i in enumerate(single_idx):
            out[i] = EpisodeSchedule._from_readonly_view(singles[j:j + 1])
    if not vec_idx:
        return out  # type: ignore[return-value]

    body_t = np.asarray(state.body_t)
    if body_t.size == 0:
        for i in vec_idx:
            out[i] = scheduler.episode_schedule(values[i], p, c)
        return out  # type: ignore[return-value]
    placed_before = np.empty(body_t.size)
    placed_before[0] = state.tail_end
    placed_before[1:] = np.asarray(state.body_placed[:-1])
    lifespans = np.asarray([values[i] for i in vec_idx])
    # The scalar loop stops at the first body period with
    # ``t >= remaining - 1e-12`` and lets the front period absorb the
    # remainder; replaying the comparison element-for-element keeps the
    # cut-off (and the front period's value) bit-identical.
    remaining = lifespans[:, None] - placed_before[None, :]
    stop = body_t[None, :] >= remaining - 1e-12
    covered = stop.any(axis=1)
    first_stop = stop.argmax(axis=1)

    sliver = max(c, 1e-12) * 1e-6
    tail = np.full(state.tail_count, state.short)
    for row, i in enumerate(vec_idx):
        j = int(first_stop[row])
        if not covered[row] or state.tail_count + j + 1 > max_periods:
            out[i] = scheduler.episode_schedule(values[i], p, c)
            continue
        periods = np.empty(state.tail_count + j + 1)
        periods[0] = remaining[row, j]
        periods[1:j + 1] = body_t[j - 1::-1] if j else ()
        periods[j + 1:] = tail
        if periods.size >= 2 and periods[0] < sliver:
            periods[1] += periods[0]
            periods = periods[1:]
        out[i] = EpisodeSchedule.from_validated_array(periods)
    return out  # type: ignore[return-value]


class EqualizingAdaptiveScheduler(AdaptiveScheduler):
    """Adaptive guideline built from the equalisation recurrence (Thm 4.3).

    Parameters
    ----------
    oracle:
        Estimate of ``W^(q)[L]`` used inside the recurrence,
        ``oracle(L, q, c)``.  Defaults to the paper's closed-form
        approximation; pass :meth:`repro.dp.ValueTable.as_oracle` for the
        exact discretised optimum.
    tail_epsilon:
        The ``ε ∈ (0, 1]`` of the short tail periods ``(1 + ε)c``
        (Theorem 4.2 allows any value in ``(0, 1]``; the paper's guideline
        uses ``1/2``, i.e. periods of ``3c/2``).
    max_periods:
        Safety cap on the number of periods per episode.

    Notes
    -----
    The episode-schedule is generated backwards.  Let ``R`` be the total
    length of the periods already placed behind the current position
    (i.e. the residual lifespan after the current period completes) and let
    ``t_next`` be the most recently placed period.  The Theorem 4.3
    recurrence reads ``t = c + W^{(p−1)}[R] − W^{(p−1)}[R − t_next]``, which
    is fully explicit in this order.  Periods whose *starting* residual is
    at most ``p·c`` — from which nothing could be guaranteed after an
    interrupt — use the short-period rule ``(1 + ε)c`` instead
    (the ``ℓ_p`` transition of Theorem 4.3 / Theorem 4.2).
    """

    name = "equalizing-adaptive"

    def __init__(self, oracle: Optional[WorkOracle] = None,
                 tail_epsilon: float = 0.5, max_periods: int = 2_000_000):
        if not (0.0 < tail_epsilon <= 1.0):
            raise ValueError(f"tail_epsilon must lie in (0, 1], got {tail_epsilon!r}")
        self.oracle: WorkOracle = oracle if oracle is not None else _closed_form_oracle
        self.tail_epsilon = float(tail_epsilon)
        self.max_periods = int(max_periods)
        self._prefix_cache: dict = {}

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the equalising episode-schedule for the residual state."""
        L = float(residual_lifespan)
        c = float(setup_cost)
        p = int(interrupts_remaining)
        if L <= 0.0:
            raise SchedulingError(f"residual lifespan must be positive, got {L!r}")
        if p == 0 or c == 0.0 or L <= 2.0 * c:
            # No adversary moves left, or the lifespan is too short for more
            # than (roughly) one productive period: one long period.
            return EpisodeSchedule.single_period(L)

        short = (1.0 + self.tail_epsilon) * c
        periods_rev: List[float] = []   # periods from the episode's end backwards
        placed = 0.0                    # residual lifespan after the current period
        prev_t = 0.0
        tol = 1e-12 * max(c, 1.0)

        # --- short tail (Theorem 4.2 / the ℓ_p transition) ------------------
        # While the residual lifespan behind the current position is still in
        # the zero-work region of the (p-1)-interrupt problem, the recurrence
        # would emit non-productive periods of length exactly c; instead the
        # guideline uses short periods of (1 + ε)c there.
        while (placed + short <= L
               and self.oracle(placed, p - 1, c) <= tol
               and len(periods_rev) < self.max_periods):
            periods_rev.append(short)
            placed += short
            prev_t = short

        if not periods_rev:
            # Lifespan so short that not even one tail period fits behind the
            # front period; fall back to a single long period.
            return EpisodeSchedule.single_period(L)

        # --- equalising body (Theorem 4.3 recurrence, backwards) -----------
        while placed < L and len(periods_rev) < self.max_periods:
            w_here = self.oracle(placed, p - 1, c)
            w_prev = self.oracle(max(0.0, placed - prev_t), p - 1, c)
            t = c + max(0.0, w_here - w_prev)
            t = max(t, c * 1e-9 if c > 0 else 1e-9)
            remaining = L - placed
            if t >= remaining - 1e-12:
                # Frontmost period: absorb exactly what is left.
                periods_rev.append(remaining)
                placed = L
                break
            periods_rev.append(t)
            placed += t
            prev_t = t

        if placed < L - 1e-9:
            # Degenerate fall-out (e.g. max_periods hit): cover the rest with
            # one long front period so the schedule spans the lifespan.
            periods_rev.append(L - placed)

        periods = list(reversed(periods_rev))
        if not periods:
            return EpisodeSchedule.single_period(L)
        # Merge a vanishingly small front sliver into its neighbour.
        if len(periods) >= 2 and periods[0] < max(c, 1e-12) * 1e-6:
            periods[1] += periods[0]
            periods = periods[1:]
        return EpisodeSchedule(periods)

    def episode_schedule_batch(self, residual_lifespans, interrupts_remaining: int,
                               setup_cost: float) -> List[EpisodeSchedule]:
        """Vectorized :meth:`episode_schedule` over many residual lifespans.

        All residuals of one ``(interrupts_remaining, setup_cost)`` state
        share the backward tail/body prefix; each row only gets its own
        cut-off and front period.  Bit-identical to the scalar construction
        (residuals the prefix cannot serve fall back to it).
        """
        p = int(interrupts_remaining)
        c = float(setup_cost)
        values = [float(x) for x in residual_lifespans]
        state = None
        if p > 0 and c > 0.0 and values:
            state = self._ensure_prefix(p, c, max(values))
        return _assemble_from_prefix(self, values, p, c, state, self.max_periods)

    def _ensure_prefix(self, p: int, c: float,
                       limit: float) -> Optional[_BackwardPrefix]:
        key = (p, c)
        state = self._prefix_cache.get(key)
        tol = 1e-12 * max(c, 1.0)
        if state is None:
            short = (1.0 + self.tail_epsilon) * c
            placed = 0.0
            count = 0
            capped = False
            # The ℓ_p transition: short periods while the residual behind the
            # current position is still in the zero-work region (the scalar
            # loop's L-cutoff only truncates rows the assembly falls back on).
            # A degenerate oracle that never leaves the zero-work region must
            # not spin to max_periods: a tail longer than every residual of
            # the batch serves no row, so cap there and let the scalar
            # construction (bounded by its own L-cutoff) handle everything.
            limit_capped = False
            while self.oracle(placed, p - 1, c) <= tol:
                if count >= self.max_periods:
                    capped = True
                    break
                if placed > limit:
                    capped = limit_capped = True
                    break
                placed += short
                count += 1
            state = _BackwardPrefix(short=short, tail_count=count, tail_end=placed,
                                    prev_t=short, capped=capped)
            if not limit_capped:
                # A limit-induced cap is batch-specific — a later batch with
                # larger residuals must rebuild rather than inherit it.
                self._prefix_cache[key] = state
        if state.capped or state.tail_count == 0:
            return state
        while state.placed <= limit and not state.capped:
            self._extend_body(state, p, c)
        self._extend_body(state, p, c)  # one spare: every row finds its cut-off
        return state

    def _extend_body(self, state: _BackwardPrefix, p: int, c: float) -> None:
        if state.capped:
            return
        w_here = self.oracle(state.placed, p - 1, c)
        w_prev = self.oracle(max(0.0, state.placed - state.prev_t), p - 1, c)
        t = c + max(0.0, w_here - w_prev)
        t = max(t, c * 1e-9 if c > 0 else 1e-9)
        state.body_t.append(t)
        state.placed += t
        state.body_placed.append(state.placed)
        state.prev_t = t
        if state.tail_count + len(state.body_t) >= self.max_periods:
            state.capped = True

    def predicted_work(self, lifespan: float, setup_cost: float,
                       max_interrupts: int) -> float:
        """Theorem 5.1's closed-form prediction for this guideline."""
        return bounds.adaptive_guarantee(lifespan, setup_cost, max_interrupts)


class RosenbergAdaptiveScheduler(AdaptiveScheduler):
    """The literal ``S_a^(p)[U]`` episode-schedules of Section 3.2.

    Parameters
    ----------
    tail_epsilon:
        ε of the tail periods ``(1 + ε)c``; the paper uses ``1/2``.

    Structure (built backwards from the episode's end):

    * the last ``ℓ_p = ⌈2p/3⌉`` periods have length ``3c/2``;
    * earlier periods form an arithmetic progression with common difference
      ``4^{1−p}·c`` (``t_k = t_{k+1} + 4^{1−p}c``), continued until the
      residual lifespan is covered; the frontmost period absorbs the
      remainder.

    For ``p = 1`` this reproduces the right-hand column of Table 2
    (``m = ⌊√(2U/c)⌋ + 2``, ``t_k ≈ √(2cU) − (k − 7/2)c``, two tail periods
    of ``3c/2``) up to the frontmost-period rounding.
    """

    name = "rosenberg-adaptive"

    def __init__(self, tail_epsilon: float = 0.5, max_periods: int = 2_000_000):
        if not (0.0 < tail_epsilon <= 1.0):
            raise ValueError(f"tail_epsilon must lie in (0, 1], got {tail_epsilon!r}")
        self.tail_epsilon = float(tail_epsilon)
        self.max_periods = int(max_periods)
        self._prefix_cache: dict = {}

    @staticmethod
    def tail_period_count(interrupts_remaining: int) -> int:
        """``ℓ_p = ⌈2p/3⌉`` — how many short tail periods the guideline uses."""
        p = int(interrupts_remaining)
        return int(math.ceil(2.0 * p / 3.0)) if p > 0 else 0

    @staticmethod
    def period_increment(interrupts_remaining: int, setup_cost: float) -> float:
        """Arithmetic-progression increment ``4^{1−p}·c`` of the body periods."""
        p = int(interrupts_remaining)
        return float(setup_cost) * 4.0 ** (1 - p)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the literal guideline episode-schedule for the residual state."""
        L = float(residual_lifespan)
        c = float(setup_cost)
        p = int(interrupts_remaining)
        if L <= 0.0:
            raise SchedulingError(f"residual lifespan must be positive, got {L!r}")
        if p == 0 or c == 0.0 or L <= 2.0 * c:
            return EpisodeSchedule.single_period(L)

        short = (1.0 + self.tail_epsilon) * c
        increment = self.period_increment(p, c)
        periods_rev: List[float] = []
        placed = 0.0
        t = short

        # Short tail of ℓ_p periods.
        for _ in range(self.tail_period_count(p)):
            if placed + short > L:
                break
            periods_rev.append(short)
            placed += short

        # Arithmetic-progression body.
        while placed < L and len(periods_rev) < self.max_periods:
            t = t + increment
            remaining = L - placed
            if t >= remaining - 1e-12:
                periods_rev.append(remaining)
                placed = L
                break
            periods_rev.append(t)
            placed += t

        if placed < L - 1e-9:
            periods_rev.append(L - placed)

        periods = list(reversed(periods_rev))
        if not periods:
            return EpisodeSchedule.single_period(L)
        if len(periods) >= 2 and periods[0] < max(c, 1e-12) * 1e-6:
            periods[1] += periods[0]
            periods = periods[1:]
        return EpisodeSchedule(periods)

    def episode_schedule_batch(self, residual_lifespans, interrupts_remaining: int,
                               setup_cost: float) -> List[EpisodeSchedule]:
        """Vectorized :meth:`episode_schedule` (see the equalizing variant)."""
        p = int(interrupts_remaining)
        c = float(setup_cost)
        values = [float(x) for x in residual_lifespans]
        state = None
        if p > 0 and c > 0.0 and values:
            state = self._ensure_prefix(p, c, max(values))
        return _assemble_from_prefix(self, values, p, c, state, self.max_periods)

    def _ensure_prefix(self, p: int, c: float,
                       limit: float) -> Optional[_BackwardPrefix]:
        key = (p, c)
        state = self._prefix_cache.get(key)
        if state is None:
            short = (1.0 + self.tail_epsilon) * c
            placed = 0.0
            count = self.tail_period_count(p)
            for _ in range(count):
                placed += short
            state = _BackwardPrefix(short=short, tail_count=count, tail_end=placed,
                                    prev_t=short, capped=count >= self.max_periods)
            self._prefix_cache[key] = state
        if state.capped or state.tail_count == 0:
            return state
        increment = self.period_increment(p, c)
        while state.placed <= limit and not state.capped:
            self._extend_body(state, increment)
        self._extend_body(state, increment)  # one spare: every row finds its cut-off
        return state

    def _extend_body(self, state: _BackwardPrefix, increment: float) -> None:
        if state.capped:
            return
        t = state.prev_t + increment
        state.body_t.append(t)
        state.placed += t
        state.body_placed.append(state.placed)
        state.prev_t = t
        if state.tail_count + len(state.body_t) >= self.max_periods:
            state.capped = True

    def predicted_work(self, lifespan: float, setup_cost: float,
                       max_interrupts: int) -> float:
        """Theorem 5.1's closed-form prediction for this guideline."""
        return bounds.adaptive_guarantee(lifespan, setup_cost, max_interrupts)
