"""Adaptive scheduling guidelines (Sections 3.2, 4.2 and 5 of the paper).

Two adaptive schedulers are provided.

:class:`EqualizingAdaptiveScheduler`
    The constructive form of the paper's guideline methodology
    (Theorem 4.3): period lengths are chosen so that every option available
    to the adversary — interrupting at the last instant of any period —
    has the same consequence for the total work.  The construction needs an
    estimate ("oracle") of the optimal work ``W^(p−1)[L]`` achievable with
    one fewer interrupt; by default the closed-form approximation of
    Theorem 5.1 is used, and an exact dynamic-programming oracle can be
    plugged in instead (see :mod:`repro.dp`).

:class:`RosenbergAdaptiveScheduler`
    The literal printed episode-schedules ``S_a^(p)[U]`` of Section 3.2:
    a tail of ``⌈2p/3⌉`` periods of length ``3c/2`` preceded by periods in
    arithmetic progression with common difference ``4^{1−p}·c``.  For
    ``p = 1`` this coincides with the right-hand column of Table 2.  (Some
    constants for ``p ≥ 2`` are corrupted in the available OCR of the
    paper; see DESIGN.md — the arithmetic-progression structure is
    implemented as printed and its measured deviation from Theorem 5.1 is
    reported in EXPERIMENTS.md.)

Both construct episode-schedules *backwards* (from the end of the residual
lifespan towards its beginning), which makes the Theorem 4.3 recurrence
explicit: the frontmost period simply absorbs whatever lifespan is left.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ..analysis import bounds
from ..core.exceptions import SchedulingError
from ..core.schedule import EpisodeSchedule
from .base import AdaptiveScheduler

__all__ = ["EqualizingAdaptiveScheduler", "RosenbergAdaptiveScheduler", "WorkOracle"]


#: Type of the work oracle used by the equalising construction:
#: ``oracle(residual_lifespan, interrupts_remaining, setup_cost) -> work``.
WorkOracle = Callable[[float, int, float], float]


def _closed_form_oracle(residual: float, interrupts: int, setup_cost: float) -> float:
    """Default oracle: the closed-form optimal-work approximation (Thm 5.1)."""
    return bounds.closed_form_optimal_work(residual, setup_cost, interrupts)


class EqualizingAdaptiveScheduler(AdaptiveScheduler):
    """Adaptive guideline built from the equalisation recurrence (Thm 4.3).

    Parameters
    ----------
    oracle:
        Estimate of ``W^(q)[L]`` used inside the recurrence,
        ``oracle(L, q, c)``.  Defaults to the paper's closed-form
        approximation; pass :meth:`repro.dp.ValueTable.as_oracle` for the
        exact discretised optimum.
    tail_epsilon:
        The ``ε ∈ (0, 1]`` of the short tail periods ``(1 + ε)c``
        (Theorem 4.2 allows any value in ``(0, 1]``; the paper's guideline
        uses ``1/2``, i.e. periods of ``3c/2``).
    max_periods:
        Safety cap on the number of periods per episode.

    Notes
    -----
    The episode-schedule is generated backwards.  Let ``R`` be the total
    length of the periods already placed behind the current position
    (i.e. the residual lifespan after the current period completes) and let
    ``t_next`` be the most recently placed period.  The Theorem 4.3
    recurrence reads ``t = c + W^{(p−1)}[R] − W^{(p−1)}[R − t_next]``, which
    is fully explicit in this order.  Periods whose *starting* residual is
    at most ``p·c`` — from which nothing could be guaranteed after an
    interrupt — use the short-period rule ``(1 + ε)c`` instead
    (the ``ℓ_p`` transition of Theorem 4.3 / Theorem 4.2).
    """

    name = "equalizing-adaptive"

    def __init__(self, oracle: Optional[WorkOracle] = None,
                 tail_epsilon: float = 0.5, max_periods: int = 2_000_000):
        if not (0.0 < tail_epsilon <= 1.0):
            raise ValueError(f"tail_epsilon must lie in (0, 1], got {tail_epsilon!r}")
        self.oracle: WorkOracle = oracle if oracle is not None else _closed_form_oracle
        self.tail_epsilon = float(tail_epsilon)
        self.max_periods = int(max_periods)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the equalising episode-schedule for the residual state."""
        L = float(residual_lifespan)
        c = float(setup_cost)
        p = int(interrupts_remaining)
        if L <= 0.0:
            raise SchedulingError(f"residual lifespan must be positive, got {L!r}")
        if p == 0 or c == 0.0 or L <= 2.0 * c:
            # No adversary moves left, or the lifespan is too short for more
            # than (roughly) one productive period: one long period.
            return EpisodeSchedule.single_period(L)

        short = (1.0 + self.tail_epsilon) * c
        periods_rev: List[float] = []   # periods from the episode's end backwards
        placed = 0.0                    # residual lifespan after the current period
        prev_t = 0.0
        tol = 1e-12 * max(c, 1.0)

        # --- short tail (Theorem 4.2 / the ℓ_p transition) ------------------
        # While the residual lifespan behind the current position is still in
        # the zero-work region of the (p-1)-interrupt problem, the recurrence
        # would emit non-productive periods of length exactly c; instead the
        # guideline uses short periods of (1 + ε)c there.
        while (placed + short <= L
               and self.oracle(placed, p - 1, c) <= tol
               and len(periods_rev) < self.max_periods):
            periods_rev.append(short)
            placed += short
            prev_t = short

        if not periods_rev:
            # Lifespan so short that not even one tail period fits behind the
            # front period; fall back to a single long period.
            return EpisodeSchedule.single_period(L)

        # --- equalising body (Theorem 4.3 recurrence, backwards) -----------
        while placed < L and len(periods_rev) < self.max_periods:
            w_here = self.oracle(placed, p - 1, c)
            w_prev = self.oracle(max(0.0, placed - prev_t), p - 1, c)
            t = c + max(0.0, w_here - w_prev)
            t = max(t, c * 1e-9 if c > 0 else 1e-9)
            remaining = L - placed
            if t >= remaining - 1e-12:
                # Frontmost period: absorb exactly what is left.
                periods_rev.append(remaining)
                placed = L
                break
            periods_rev.append(t)
            placed += t
            prev_t = t

        if placed < L - 1e-9:
            # Degenerate fall-out (e.g. max_periods hit): cover the rest with
            # one long front period so the schedule spans the lifespan.
            periods_rev.append(L - placed)

        periods = list(reversed(periods_rev))
        if not periods:
            return EpisodeSchedule.single_period(L)
        # Merge a vanishingly small front sliver into its neighbour.
        if len(periods) >= 2 and periods[0] < max(c, 1e-12) * 1e-6:
            periods[1] += periods[0]
            periods = periods[1:]
        return EpisodeSchedule(periods)

    def predicted_work(self, lifespan: float, setup_cost: float,
                       max_interrupts: int) -> float:
        """Theorem 5.1's closed-form prediction for this guideline."""
        return bounds.adaptive_guarantee(lifespan, setup_cost, max_interrupts)


class RosenbergAdaptiveScheduler(AdaptiveScheduler):
    """The literal ``S_a^(p)[U]`` episode-schedules of Section 3.2.

    Parameters
    ----------
    tail_epsilon:
        ε of the tail periods ``(1 + ε)c``; the paper uses ``1/2``.

    Structure (built backwards from the episode's end):

    * the last ``ℓ_p = ⌈2p/3⌉`` periods have length ``3c/2``;
    * earlier periods form an arithmetic progression with common difference
      ``4^{1−p}·c`` (``t_k = t_{k+1} + 4^{1−p}c``), continued until the
      residual lifespan is covered; the frontmost period absorbs the
      remainder.

    For ``p = 1`` this reproduces the right-hand column of Table 2
    (``m = ⌊√(2U/c)⌋ + 2``, ``t_k ≈ √(2cU) − (k − 7/2)c``, two tail periods
    of ``3c/2``) up to the frontmost-period rounding.
    """

    name = "rosenberg-adaptive"

    def __init__(self, tail_epsilon: float = 0.5, max_periods: int = 2_000_000):
        if not (0.0 < tail_epsilon <= 1.0):
            raise ValueError(f"tail_epsilon must lie in (0, 1], got {tail_epsilon!r}")
        self.tail_epsilon = float(tail_epsilon)
        self.max_periods = int(max_periods)

    @staticmethod
    def tail_period_count(interrupts_remaining: int) -> int:
        """``ℓ_p = ⌈2p/3⌉`` — how many short tail periods the guideline uses."""
        p = int(interrupts_remaining)
        return int(math.ceil(2.0 * p / 3.0)) if p > 0 else 0

    @staticmethod
    def period_increment(interrupts_remaining: int, setup_cost: float) -> float:
        """Arithmetic-progression increment ``4^{1−p}·c`` of the body periods."""
        p = int(interrupts_remaining)
        return float(setup_cost) * 4.0 ** (1 - p)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the literal guideline episode-schedule for the residual state."""
        L = float(residual_lifespan)
        c = float(setup_cost)
        p = int(interrupts_remaining)
        if L <= 0.0:
            raise SchedulingError(f"residual lifespan must be positive, got {L!r}")
        if p == 0 or c == 0.0 or L <= 2.0 * c:
            return EpisodeSchedule.single_period(L)

        short = (1.0 + self.tail_epsilon) * c
        increment = self.period_increment(p, c)
        periods_rev: List[float] = []
        placed = 0.0
        t = short

        # Short tail of ℓ_p periods.
        for _ in range(self.tail_period_count(p)):
            if placed + short > L:
                break
            periods_rev.append(short)
            placed += short

        # Arithmetic-progression body.
        while placed < L and len(periods_rev) < self.max_periods:
            t = t + increment
            remaining = L - placed
            if t >= remaining - 1e-12:
                periods_rev.append(remaining)
                placed = L
                break
            periods_rev.append(t)
            placed += t

        if placed < L - 1e-9:
            periods_rev.append(L - placed)

        periods = list(reversed(periods_rev))
        if not periods:
            return EpisodeSchedule.single_period(L)
        if len(periods) >= 2 and periods[0] < max(c, 1e-12) * 1e-6:
            periods[1] += periods[0]
            periods = periods[1:]
        return EpisodeSchedule(periods)

    def predicted_work(self, lifespan: float, setup_cost: float,
                       max_interrupts: int) -> float:
        """Theorem 5.1's closed-form prediction for this guideline."""
        return bounds.adaptive_guarantee(lifespan, setup_cost, max_interrupts)
