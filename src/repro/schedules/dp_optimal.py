"""Adaptive scheduler that plays the exactly-optimal DP schedule.

:class:`DPOptimalScheduler` wraps a solved :class:`repro.dp.ValueTable` and
emits, for every residual state, the optimal episode-schedule extracted from
the table.  It is the ground truth the guideline schedulers are measured
against in the optimality-gap benchmarks, and it doubles as the strongest
practical scheduler when the opportunity parameters are known exactly and
small enough to tabulate.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import SchedulingError
from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from ..dp import ValueTable, extract_period_lengths, solve
from .base import AdaptiveScheduler

__all__ = ["DPOptimalScheduler"]


class DPOptimalScheduler(AdaptiveScheduler):
    """Exactly optimal adaptive scheduler (on the integer time grid).

    Parameters
    ----------
    table:
        A pre-solved value table.  Use :meth:`for_params` to build one sized
        for a specific opportunity.

    Notes
    -----
    Residual lifespans are floored to the grid; the fractional remainder is
    folded into the episode's final period, so the emitted schedules always
    cover the residual lifespan exactly even when the game produces
    non-integer residuals.
    """

    name = "dp-optimal"

    def __init__(self, table: ValueTable):
        self.table = table

    @classmethod
    def for_params(cls, params: CycleStealingParams, *, method: str = "fast"
                   ) -> "DPOptimalScheduler":
        """Solve a table just large enough for the given opportunity."""
        setup_cost = params.setup_cost
        if setup_cost != int(setup_cost):
            raise SchedulingError(
                "DPOptimalScheduler requires an integer setup cost; rescale the "
                "opportunity (see repro.dp.discretize_params)"
            )
        max_lifespan = int(params.lifespan)
        table = solve(max_lifespan, int(setup_cost), params.max_interrupts, method=method)
        return cls(table)

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the optimal episode-schedule for the residual state."""
        if residual_lifespan <= 0.0:
            raise SchedulingError("residual lifespan must be positive")
        if abs(float(setup_cost) - float(self.table.setup_cost)) > 1e-9:
            raise SchedulingError(
                f"table solved for c={self.table.setup_cost}, asked for c={setup_cost}"
            )
        p = min(int(interrupts_remaining), self.table.max_interrupts)
        grid_lifespan = int(residual_lifespan)
        if grid_lifespan > self.table.max_lifespan:
            raise SchedulingError(
                f"residual lifespan {residual_lifespan!r} exceeds the solved range "
                f"{self.table.max_lifespan}"
            )
        if grid_lifespan < 1:
            return EpisodeSchedule.single_period(residual_lifespan)
        lengths = extract_period_lengths(self.table, grid_lifespan, p)
        return EpisodeSchedule.from_period_lengths(lengths, residual_lifespan)

    def optimal_work(self, params: Optional[CycleStealingParams] = None,
                     lifespan: Optional[float] = None,
                     max_interrupts: Optional[int] = None) -> float:
        """``W^(p)[U]`` straight from the table (no game playing needed)."""
        if params is not None:
            lifespan = params.lifespan
            max_interrupts = params.max_interrupts
        if lifespan is None or max_interrupts is None:
            raise SchedulingError("provide either params or (lifespan, max_interrupts)")
        return self.table.value(int(max_interrupts), int(lifespan))
