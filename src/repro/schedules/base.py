"""Scheduler base classes.

Two kinds of schedulers exist in the guaranteed-output model (Section 2.2):

* **Non-adaptive** schedulers commit to a single sequence of periods for the
  whole opportunity; after an interrupt they obliviously continue with the
  tail of that sequence (and after the ``p``-th interrupt they run the
  remainder as one long period — the referee in
  :func:`repro.core.game.play_nonadaptive` implements that exception).
* **Adaptive** schedulers produce a fresh episode-schedule every time they
  regain control of the borrowed workstation, as a function of the residual
  lifespan and of how many interrupts may still occur.

Both base classes add naming and a convenience ``describe`` used by the
reporting layer; concrete schedulers live in the sibling modules.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule

__all__ = ["AdaptiveScheduler", "NonAdaptiveScheduler"]


class _NamedScheduler(abc.ABC):
    """Shared naming/description behaviour for all schedulers."""

    #: Short machine-friendly identifier; subclasses override.
    name: str = "scheduler"

    def describe(self) -> str:
        """One-line human-readable description used in reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NonAdaptiveScheduler(_NamedScheduler):
    """Base class for schedulers that fix one schedule for the whole lifespan."""

    @abc.abstractmethod
    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the single schedule used for the entire opportunity.

        The returned schedule's periods must sum to (at most) the lifespan
        ``params.lifespan``; schedulers in this library always cover the
        lifespan exactly, absorbing rounding remainders into the final
        period.
        """

    def guaranteed_work(self, params: CycleStealingParams) -> float:
        """Exact worst-case work of this scheduler for the given opportunity.

        Evaluates the schedule against the optimal period-end adversary
        (see :func:`repro.core.work.worst_case_nonadaptive_work`).
        """
        from ..core.work import worst_case_nonadaptive_work

        return worst_case_nonadaptive_work(self.opportunity_schedule(params), params)


class AdaptiveScheduler(_NamedScheduler):
    """Base class for schedulers that re-plan after every interrupt."""

    @abc.abstractmethod
    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the episode-schedule for the given residual state.

        Parameters
        ----------
        residual_lifespan:
            Time remaining in the opportunity (``> 0``).
        interrupts_remaining:
            How many interrupts the adversary may still use.
        setup_cost:
            Communication set-up cost ``c``.
        """

    def episode_schedule_batch(self, residual_lifespans, interrupts_remaining: int,
                               setup_cost: float):
        """Episode-schedules for a whole array of residual lifespans at once.

        The batch simulation backend calls this with every residual that
        needs a schedule for one ``(interrupts_remaining, setup_cost)``
        state.  The base implementation simply loops; schedulers whose
        construction shares work across residuals (see the guideline
        schedulers in :mod:`repro.schedules.adaptive`) override it with a
        vectorized version that must return bit-identical schedules.
        """
        return [self.episode_schedule(float(residual), interrupts_remaining,
                                      setup_cost)
                for residual in residual_lifespans]

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """The first episode's schedule (what the scheduler commits to at t=0).

        Provided so adaptive schedulers can also be inspected (and run
        non-adaptively, for ablation) without special casing.
        """
        return self.episode_schedule(params.lifespan, params.max_interrupts,
                                     params.setup_cost)

    def guaranteed_work(self, params: CycleStealingParams,
                        *, residual_grain: Optional[float] = None) -> float:
        """Exact worst-case work of this scheduler for the given opportunity.

        Runs the memoised minimax of
        :func:`repro.core.game.guaranteed_adaptive_work`.
        """
        from ..core.game import guaranteed_adaptive_work

        kwargs = {}
        if residual_grain is not None:
            kwargs["residual_grain"] = residual_grain
        return guaranteed_adaptive_work(self, params, **kwargs)
