"""Cross-run analytics: a persistent run index with a query API.

See :doc:`docs/catalog` for the index layout and a query cookbook.
"""

from .export import EXPORT_FORMATS, export_frame, frame_to_arrow_table
from .index import (
    INDEX_DIRNAME,
    INDEX_FILENAME,
    INDEX_VERSION,
    PROVENANCE_COLUMNS,
    Catalog,
    CatalogError,
    RunHandle,
    RunRecord,
    discover_runs,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "RunHandle",
    "RunRecord",
    "discover_runs",
    "export_frame",
    "frame_to_arrow_table",
    "EXPORT_FORMATS",
    "INDEX_DIRNAME",
    "INDEX_FILENAME",
    "INDEX_VERSION",
    "PROVENANCE_COLUMNS",
]
