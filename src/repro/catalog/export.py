"""Export a cross-run frame to CSV, Apache Parquet, or Arrow IPC.

CSV needs only the standard library and reuses the reporting layer's
serialiser, so it always works.  Parquet and Arrow go through ``pyarrow``,
which this project deliberately does not depend on — the builders below
*gate* on it at call time with an actionable error instead of failing at
import, so ``import repro.catalog`` stays dependency-free.
"""

from __future__ import annotations

import os
from typing import Optional

from ..reporting.table import rows_to_csv
from ..runstore import RunColumns
from .index import CatalogError

__all__ = ["export_frame", "frame_to_arrow_table", "EXPORT_FORMATS"]

#: Formats ``export_frame`` accepts, and the extensions ``"auto"`` maps.
EXPORT_FORMATS = ("csv", "parquet", "arrow")

_EXTENSIONS = {
    ".csv": "csv",
    ".parquet": "parquet", ".pq": "parquet",
    ".arrow": "arrow", ".feather": "arrow", ".ipc": "arrow",
}


def _require_pyarrow(what: str):
    try:
        import pyarrow  # noqa: F401 - availability probe
    except ImportError as exc:
        raise CatalogError(
            f"{what} export needs the optional dependency pyarrow "
            "(`pip install pyarrow`); CSV export works without it: "
            "pass format='csv' or an .csv path") from exc
    return pyarrow


def frame_to_arrow_table(frame: RunColumns):
    """The frame as a ``pyarrow.Table`` (requires pyarrow).

    Columns keep the frame's order (result columns first, provenance
    last), preceded by ``point_index``; masked-out slots become Arrow
    nulls, matching how :meth:`RunColumns.to_rows` omits those keys.
    """
    pa = _require_pyarrow("Arrow")
    arrays = {"point_index": pa.array(frame.point_index)}
    for name, column in frame.data.items():
        mask = frame.mask.get(name)
        if mask is None:
            arrays[name] = pa.array(column)
        else:
            values = column.tolist()
            arrays[name] = pa.array(
                [v if ok else None
                 for v, ok in zip(values, mask.tolist())])
    return pa.table(arrays)


def export_frame(frame: RunColumns, path: str, *,
                 format: str = "auto",
                 columns: Optional[list] = None) -> str:
    """Write ``frame`` to ``path``; returns the resolved format.

    ``format="auto"`` resolves from the file extension (``.csv``,
    ``.parquet``/``.pq``, ``.arrow``/``.feather``/``.ipc``).  ``columns``
    restricts *and orders* the exported columns (CSV only passes it
    through to the serialiser; Arrow formats select on the table).
    """
    if format == "auto":
        ext = os.path.splitext(path)[1].lower()
        format = _EXTENSIONS.get(ext, "")
        if not format:
            raise CatalogError(
                f"cannot infer export format from {path!r}; pass "
                f"format= one of {list(EXPORT_FORMATS)}")
    if format not in EXPORT_FORMATS:
        raise CatalogError(
            f"unknown export format {format!r}; "
            f"expected one of {list(EXPORT_FORMATS)}")
    if format == "csv":
        text = rows_to_csv(frame, columns)
        with open(path, "w", newline="") as handle:
            handle.write(text)
        return format
    table = frame_to_arrow_table(frame)
    if columns is not None:
        table = table.select(list(columns))
    if format == "parquet":
        import pyarrow.parquet as pq
        pq.write_table(table, path)
    else:
        import pyarrow.feather as feather
        feather.write_feather(table, path)
    return format
