"""Persistent cross-run index with a first-class query API.

A :class:`Catalog` watches one or more ``runs/`` roots — flat CLI layouts
and the run-service's per-tenant namespaces alike — and maintains a single
JSON index mapping every stored run to its manifest summary, flat spec
metadata (:func:`repro.specs.spec_summary`), column schema, and content
digest.  The index is the cheap half of every cross-run question: *which*
runs swept ``p = 3`` under the bounded-risk adversary is answered from one
file read, and only the survivors' columnar sidecars are then opened.

Three properties carry the design:

* **Incremental.**  ``refresh()`` re-extracts only runs whose
  :meth:`repro.runstore.Run.content_digest` no longer matches the indexed
  one; unchanged runs cost a manifest/sidecar hash, never a row read, and
  deleted run directories drop out without a full rebuild.
* **Atomic.**  The index file is rewritten via temp-file +
  ``os.replace``, so a reader never observes a half-written index; the
  run-service's publish hook (:meth:`Catalog.index_run`) serialises its
  read-modify-write through a best-effort lock file.
* **One pass per run.**  :meth:`Catalog.frame` concatenates the columnar
  sidecars of matching runs — zero per-shard ``.npz`` opens on
  vouched/consolidated runs — and tags every row with ``run_id`` /
  ``tenant`` / ``spec_digest`` provenance columns, appended *after* the
  result columns so stripping them leaves each run's rows byte-identical
  to its own :meth:`repro.runstore.Run.rows`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import CycleStealingError
from ..runstore import Run, RunColumns, RunStoreError, _check_source
from ..specs import ExperimentSpec, parse_spec, spec_digest, spec_summary

__all__ = [
    "Catalog",
    "CatalogError",
    "RunHandle",
    "RunRecord",
    "INDEX_DIRNAME",
    "INDEX_FILENAME",
    "INDEX_VERSION",
    "PROVENANCE_COLUMNS",
]

#: Index schema version; bumping it invalidates (and silently rebuilds)
#: indexes written by older code.
INDEX_VERSION = 1

#: The index lives inside the *first* root, in a ``_``-prefixed directory
#: so run discovery (which skips such names) never mistakes it for a run.
INDEX_DIRNAME = "_catalog"
INDEX_FILENAME = "index.json"

#: Provenance columns :meth:`Catalog.frame` appends after the result
#: columns of every row.
PROVENANCE_COLUMNS = ("run_id", "tenant", "spec_digest")

#: Numpy dtype kinds that may be promoted against each other when runs
#: disagree on a column's exact dtype (bool/int/uint/float).
_NUMERIC_KINDS = frozenset("biuf")


class CatalogError(CycleStealingError, RuntimeError):
    """A catalog operation failed (bad filter, missing run, broken index)."""


def _since_epoch(since: Union[str, float, int]) -> float:
    """Normalise a ``since=`` filter value to a POSIX timestamp.

    Accepts a numeric epoch or an ISO ``YYYY-MM-DD[THH:MM:SS]`` string
    (interpreted in local time, like the filesystem mtimes it is compared
    against).
    """
    if isinstance(since, (int, float)) and not isinstance(since, bool):
        return float(since)
    if isinstance(since, str):
        for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d"):
            try:
                return time.mktime(time.strptime(since, fmt))
            except ValueError:
                continue
    raise CatalogError(
        f"bad since= filter {since!r}: expected a POSIX timestamp or an "
        "ISO date like '2026-08-08' / '2026-08-08T12:00:00'")


@dataclass
class RunRecord:
    """One indexed run: everything ``find()`` filters on, no row data."""

    run_id: str
    tenant: str          #: ``""`` for top-level runs, dirname otherwise.
    root: str            #: The runs root this run was discovered under.
    path: str            #: The run directory itself.
    status: str
    num_points: int
    completed: int
    spec: Dict[str, Any]          #: Flat :func:`spec_summary` projection.
    spec_digest: str
    column_schema: Dict[str, str]  #: ``{column: numpy dtype string}``.
    content_digest: Optional[str]  #: ``None`` until a valid sidecar exists.
    mtime: float                   #: Manifest mtime at index time.

    def to_json(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id, "tenant": self.tenant,
            "root": self.root, "path": self.path, "status": self.status,
            "num_points": self.num_points, "completed": self.completed,
            "spec": self.spec, "spec_digest": self.spec_digest,
            "column_schema": self.column_schema,
            "content_digest": self.content_digest, "mtime": self.mtime,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=str(data["run_id"]), tenant=str(data["tenant"]),
            root=str(data["root"]), path=str(data["path"]),
            status=str(data["status"]),
            num_points=int(data["num_points"]),
            completed=int(data["completed"]),
            spec=dict(data["spec"]),
            spec_digest=str(data["spec_digest"]),
            column_schema=dict(data["column_schema"]),
            content_digest=data.get("content_digest"),
            mtime=float(data["mtime"]),
        )


class RunHandle:
    """Lazy handle to an indexed run: metadata now, row data on demand.

    ``find()`` returns these instead of :class:`repro.runstore.Run` so
    listing a thousand runs opens zero run directories; :meth:`open`,
    :meth:`rows` and :meth:`columns` touch disk only when called.
    """

    def __init__(self, record: RunRecord) -> None:
        self.record = record
        self._run: Optional[Run] = None

    # -- metadata (index-only, no disk) --------------------------------
    @property
    def run_id(self) -> str:
        return self.record.run_id

    @property
    def tenant(self) -> str:
        return self.record.tenant

    @property
    def path(self) -> str:
        return self.record.path

    @property
    def status(self) -> str:
        return self.record.status

    @property
    def spec_digest(self) -> str:
        return self.record.spec_digest

    # -- data (opens the run directory) --------------------------------
    def open(self) -> Run:
        """The underlying :class:`repro.runstore.Run` (cached)."""
        if self._run is None:
            if not os.path.isfile(os.path.join(self.record.path,
                                               "manifest.json")):
                raise CatalogError(
                    f"indexed run {self.run_id!r} has vanished from "
                    f"{self.record.path!r}; re-run `repro catalog index`")
            self._run = Run(self.record.path)
        return self._run

    def spec(self) -> ExperimentSpec:
        return self.open().spec()

    def rows(self, *, source: str = "auto") -> List[Dict[str, Any]]:
        return self.open().rows(source=source)

    def columns(self, *, source: str = "auto") -> RunColumns:
        return self.open().columns(source=source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunHandle({self.run_id!r}, tenant={self.tenant!r}, "
                f"status={self.record.status!r})")


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def _is_run_dir(path: str) -> bool:
    return os.path.isfile(os.path.join(path, "manifest.json"))


def discover_runs(roots: Sequence[str]) -> List[Tuple[str, str, str, str]]:
    """``(root, tenant, run_id, path)`` for every run under ``roots``.

    Two layouts coexist under one root: a directory holding a
    ``manifest.json`` is a top-level run (``tenant=""``, the CLI layout),
    and a directory *of* such directories is a tenant namespace (the
    run-service layout, ``<root>/<tenant>/<run_id>``).  Names starting
    with ``_`` or ``.`` are infrastructure (``_queue``, ``_catalog``,
    ``.cache``) at both levels and are never descended into.
    """
    found: List[Tuple[str, str, str, str]] = []
    for root in roots:
        try:
            names = sorted(os.listdir(root))
        except OSError:
            continue
        for name in names:
            if name.startswith(("_", ".")):
                continue
            path = os.path.join(root, name)
            if not os.path.isdir(path):
                continue
            if _is_run_dir(path):
                found.append((root, "", name, path))
                continue
            try:
                subnames = sorted(os.listdir(path))
            except OSError:
                continue
            for subname in subnames:
                if subname.startswith(("_", ".")):
                    continue
                subpath = os.path.join(path, subname)
                if os.path.isdir(subpath) and _is_run_dir(subpath):
                    found.append((root, name, subname, subpath))
    return found


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class Catalog:
    """A queryable, incrementally maintained index over runs roots.

    >>> cat = Catalog(["runs"])
    >>> cat.refresh()                          # doctest: +SKIP
    >>> for handle in cat.find(kind="sweep", p=3):
    ...     print(handle.run_id, handle.record.spec["schedulers"])
    >>> frame = cat.frame(where={"scheduler": "geometric"})
    """

    def __init__(self, roots: Union[str, Sequence[str]] = "runs", *,
                 index_path: Optional[str] = None) -> None:
        if isinstance(roots, (str, os.PathLike)):
            roots = [roots]
        self.roots = [os.fspath(r) for r in roots]
        if not self.roots:
            raise CatalogError("Catalog needs at least one runs root")
        self.index_path = index_path or os.path.join(
            self.roots[0], INDEX_DIRNAME, INDEX_FILENAME)
        self._records: Optional[Dict[str, RunRecord]] = None

    # -- index persistence ---------------------------------------------
    def _load_index(self) -> Dict[str, RunRecord]:
        """The on-disk index as ``{path: record}`` (empty when absent)."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if data.get("version") != INDEX_VERSION:
            return {}
        records: Dict[str, RunRecord] = {}
        for key, raw in data.get("runs", {}).items():
            try:
                records[key] = RunRecord.from_json(raw)
            except (KeyError, TypeError, ValueError):
                continue  # one corrupt record must not poison the index
        return records

    def _write_index(self, records: Dict[str, RunRecord]) -> None:
        """Atomically replace the index file (temp file + rename)."""
        index_dir = os.path.dirname(self.index_path)
        os.makedirs(index_dir, exist_ok=True)
        payload = {
            "version": INDEX_VERSION,
            "roots": list(self.roots),
            "runs": {key: record.to_json()
                     for key, record in sorted(records.items())},
        }
        fd, tmp_path = tempfile.mkstemp(dir=index_dir, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.index_path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._records = records

    @property
    def lock_path(self) -> str:
        return self.index_path + ".lock"

    def _with_lock(self, timeout: float = 5.0):
        """Best-effort exclusive lock around index read-modify-write.

        ``O_CREAT | O_EXCL`` on a sibling lock file; a stale lock (holder
        crashed) is broken after ``timeout`` seconds.  This only guards
        concurrent *writers* (service workers publishing simultaneously) —
        readers are safe unlocked because the index write is atomic.
        """
        catalog = self

        class _Lock:
            def __enter__(self):
                os.makedirs(os.path.dirname(catalog.lock_path), exist_ok=True)
                deadline = time.monotonic() + timeout
                while True:
                    try:
                        fd = os.open(catalog.lock_path,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                        os.close(fd)
                        return self
                    except FileExistsError:
                        if time.monotonic() >= deadline:
                            try:  # stale holder: break the lock
                                os.remove(catalog.lock_path)
                            except OSError:
                                pass
                        time.sleep(0.02)

            def __exit__(self, *exc):
                try:
                    os.remove(catalog.lock_path)
                except OSError:
                    pass
                return False

        return _Lock()

    # -- extraction ----------------------------------------------------
    def _extract(self, root: str, tenant: str, run_id: str,
                 path: str) -> RunRecord:
        """Build the index record for one run directory (reads the run)."""
        run = Run(path)
        manifest = run.manifest  # raises RunStoreError when unreadable
        spec = parse_spec(manifest["spec"],
                          source=f"manifest of run {run_id!r}")
        try:
            schema = run.column_schema()
        except RunStoreError:
            schema = {}
        try:
            mtime = os.stat(run.manifest_path).st_mtime
        except OSError:
            mtime = 0.0
        return RunRecord(
            run_id=run_id, tenant=tenant, root=root, path=path,
            status=run.status, num_points=run.num_points,
            completed=len(run.completed_points()),
            spec=spec_summary(spec), spec_digest=spec_digest(spec),
            column_schema=schema, content_digest=run.content_digest(),
            mtime=mtime,
        )

    # -- maintenance ---------------------------------------------------
    def refresh(self, *, full: bool = False) -> Dict[str, int]:
        """Bring the index in line with the runs roots; return what moved.

        Incremental by default: a discovered run already in the index is
        re-extracted only when its :meth:`~repro.runstore.Run.content_digest`
        differs from the indexed one (or either digest is ``None`` — no
        valid sidecar means no cheap staleness probe, so the run is
        re-read).  Runs that vanished from disk are dropped.  ``full=True``
        re-extracts everything.  The returned stats —
        ``{"indexed", "unchanged", "removed", "failed", "total"}`` — are
        what the staleness tests pin: an untouched run must land in
        ``unchanged``, never ``indexed``.
        """
        old = self._load_index()
        new: Dict[str, RunRecord] = {}
        stats = {"indexed": 0, "unchanged": 0, "removed": 0, "failed": 0}
        for root, tenant, run_id, path in discover_runs(self.roots):
            record = old.get(path)
            if record is not None and not full:
                digest = Run(path).content_digest()
                if digest is not None and digest == record.content_digest:
                    new[path] = record
                    stats["unchanged"] += 1
                    continue
            try:
                new[path] = self._extract(root, tenant, run_id, path)
            except (RunStoreError, CycleStealingError, OSError):
                stats["failed"] += 1  # unreadable run: skip, don't crash
                continue
            stats["indexed"] += 1
        stats["removed"] = len(set(old) - set(new))
        stats["total"] = len(new)
        self._write_index(new)
        return stats

    def index_run(self, path: str, *, tenant: str = "",
                  root: Optional[str] = None) -> RunRecord:
        """Upsert one run into the index (the service's publish hook).

        A targeted read-modify-write under the catalog lock: only the
        published run is extracted, every other record is carried over
        verbatim, and the rewrite is atomic — so concurrent publishes from
        several service workers serialise instead of clobbering.
        """
        path = os.fspath(path)
        run_id = os.path.basename(os.path.normpath(path))
        record = self._extract(root or self.roots[0], tenant, run_id, path)
        with self._with_lock():
            records = self._load_index()
            records[path] = record
            self._write_index(records)
        return record

    # -- queries -------------------------------------------------------
    def records(self) -> List[RunRecord]:
        """Every indexed record (loads the index file once, then cached)."""
        if self._records is None:
            self._records = self._load_index()
        return sorted(self._records.values(),
                      key=lambda r: (r.tenant, r.run_id, r.root))

    def find(self, **filters: Any) -> List[RunHandle]:
        """Lazy handles for every indexed run matching ``filters``.

        Supported filters — all conjunctive, unknown names raise:

        ``run_id``, ``tenant``, ``status``, ``name``, ``kind``,
        ``family``, ``backend``  — exact match;
        ``scheduler``, ``adversary`` — membership in the spec's list;
        ``p``, ``c``, ``u`` — membership in the swept ``interrupts`` /
        ``setup_costs`` / ``lifespans`` grids;
        ``since`` — manifest mtime at/after a timestamp or ISO date.

        Deterministic order: ``(tenant, run_id, root)`` — which is also
        the concatenation order of :meth:`frame`.
        """
        known = {"run_id", "tenant", "status", "name", "kind", "family",
                 "backend", "scheduler", "adversary", "p", "c", "u",
                 "since"}
        unknown = set(filters) - known
        if unknown:
            raise CatalogError(
                f"unknown find() filter(s) {sorted(unknown)}; "
                f"supported: {sorted(known)}")
        since = filters.pop("since", None)
        since_epoch = None if since is None else _since_epoch(since)

        def matches(record: RunRecord) -> bool:
            spec = record.spec
            for key, want in filters.items():
                if want is None:
                    continue
                if key == "run_id":
                    got = record.run_id
                elif key == "tenant":
                    got = record.tenant
                elif key == "status":
                    got = record.status
                elif key in ("name", "kind", "family", "backend"):
                    got = spec.get(key)
                elif key == "scheduler":
                    if want not in spec.get("schedulers", []):
                        return False
                    continue
                elif key == "adversary":
                    if want not in spec.get("adversaries", []):
                        return False
                    continue
                elif key == "p":
                    if int(want) not in spec.get("interrupts", []):
                        return False
                    continue
                elif key == "c":
                    if float(want) not in spec.get("setup_costs", []):
                        return False
                    continue
                else:  # key == "u"
                    if float(want) not in spec.get("lifespans", []):
                        return False
                    continue
                if got != want:
                    return False
            if since_epoch is not None and record.mtime < since_epoch:
                return False
            return True

        return [RunHandle(record) for record in self.records()
                if matches(record)]

    def get(self, run_id: str, *, tenant: Optional[str] = None) -> RunHandle:
        """The one indexed run with this id (and tenant, when given)."""
        hits = [h for h in self.find(run_id=run_id)
                if tenant is None or h.tenant == tenant]
        if not hits:
            raise CatalogError(
                f"no indexed run {run_id!r}"
                + (f" for tenant {tenant!r}" if tenant is not None else "")
                + f"; known: {[r.run_id for r in self.records()]}")
        if len(hits) > 1:
            raise CatalogError(
                f"run id {run_id!r} is ambiguous across tenants "
                f"{[h.tenant for h in hits]}; pass tenant=")
        return hits[0]

    def diff(self, run_a: str, run_b: str, *,
             tenant_a: Optional[str] = None,
             tenant_b: Optional[str] = None,
             source: str = "auto") -> str:
        """Markdown comparison of two indexed runs (``catalog diff``)."""
        from ..reporting.compare import render_run_comparison
        return render_run_comparison(
            self.get(run_a, tenant=tenant_a),
            self.get(run_b, tenant=tenant_b), source=source)

    # -- the cross-run frame -------------------------------------------
    def frame(self, columns: Optional[Sequence[str]] = None, *,
              where: Optional[Dict[str, Any]] = None,
              source: str = "auto",
              handles: Optional[Iterable[RunHandle]] = None,
              **filters: Any) -> RunColumns:
        """Concatenate matching runs' result columns into one frame.

        One :meth:`~repro.runstore.Run.columns` call per matching run —
        the sidecar fast path, zero per-shard opens on vouched runs —
        then a single numpy concatenation per column.  ``columns``
        restricts the result columns (a run lacking one contributes
        masked slots); ``where`` keeps only rows whose column equals (or
        is a member of) the given scalar (or list); remaining keyword
        filters are passed to :meth:`find`.  The provenance columns
        ``run_id`` / ``tenant`` / ``spec_digest`` come *after* the result
        columns, so dropping them leaves each run's rows byte-identical
        to that run's own ``rows()``.
        """
        _check_source(source)
        if handles is None:
            handles = self.find(**filters)
        segments: List[Tuple[RunHandle, RunColumns, np.ndarray]] = []
        order: List[str] = []   # global first-seen column order
        for handle in handles:
            cols = handle.columns(source=source)
            keep = self._where_mask(cols, where)
            segments.append((handle, cols, keep))
            for name in cols.data:
                if columns is not None and name not in columns:
                    continue
                if name not in order:
                    order.append(name)
        if columns is not None:
            missing = [c for c in columns if c not in order]
            if missing and segments:
                raise CatalogError(
                    f"column(s) {missing} appear in no matching run; "
                    f"available: {sorted(set().union(*[set(c.data) for _, c, _ in segments]))}")
            order = [c for c in columns if c in order]
        for name in PROVENANCE_COLUMNS:
            if name in order:
                raise CatalogError(
                    f"result column {name!r} collides with a provenance "
                    "column; select it away with columns=[...]")
        return self._concatenate(segments, order)

    @staticmethod
    def _where_mask(cols: RunColumns,
                    where: Optional[Dict[str, Any]]) -> np.ndarray:
        """Boolean keep-mask for one run segment under a ``where`` dict."""
        keep = np.ones(len(cols), dtype=bool)
        if not where:
            return keep
        for name, want in where.items():
            column = cols.data.get(name)
            if column is None:
                keep[:] = False  # the filtered column never exists here
                break
            values = want if isinstance(want, (list, tuple, set)) \
                else [want]
            try:
                hit = np.isin(column, np.asarray(list(values)))
            except (TypeError, ValueError) as exc:
                raise CatalogError(
                    f"where[{name!r}] value {want!r} is not comparable "
                    f"with column dtype {column.dtype}: {exc}") from exc
            mask = cols.mask.get(name)
            if mask is not None:
                hit &= mask  # a masked-out slot never matches
            keep &= hit
        return keep

    @staticmethod
    def _concatenate(segments: Sequence[Tuple[RunHandle, RunColumns,
                                              np.ndarray]],
                     order: List[str]) -> RunColumns:
        """Stack per-run segments into one RunColumns, provenance last."""
        counts = [int(keep.sum()) for _, _, keep in segments]
        total = sum(counts)
        point_index = np.concatenate(
            [cols.point_index[keep] for _, cols, keep in segments]
        ) if segments else np.zeros(0, dtype=np.int64)
        data: Dict[str, np.ndarray] = {}
        mask: Dict[str, np.ndarray] = {}
        for name in order:
            dtype = None
            for _, cols, _ in segments:
                column = cols.data.get(name)
                if column is None:
                    continue
                if dtype is None:
                    dtype = column.dtype
                    continue
                both = {dtype.kind, column.dtype.kind}
                if both <= _NUMERIC_KINDS or both == {"U"}:
                    dtype = np.promote_types(dtype, column.dtype)
                else:
                    raise CatalogError(
                        f"column {name!r} mixes incompatible dtypes "
                        f"across runs ({dtype} vs {column.dtype}); "
                        "exclude it with columns=[...]")
            parts: List[np.ndarray] = []
            mask_parts: List[np.ndarray] = []
            any_masked = False
            for (_, cols, keep), count in zip(segments, counts):
                column = cols.data.get(name)
                if column is None:
                    parts.append(np.zeros(count, dtype=dtype))
                    mask_parts.append(np.zeros(count, dtype=np.bool_))
                    any_masked = True
                    continue
                parts.append(column[keep].astype(dtype, copy=False))
                seg_mask = cols.mask.get(name)
                if seg_mask is None:
                    mask_parts.append(np.ones(count, dtype=np.bool_))
                else:
                    mask_parts.append(seg_mask[keep])
                    if not seg_mask[keep].all():
                        any_masked = True
            data[name] = np.concatenate(parts) if parts \
                else np.zeros(0, dtype=dtype or np.float64)
            if any_masked:
                mask[name] = np.concatenate(mask_parts) if mask_parts \
                    else np.zeros(0, dtype=np.bool_)
        # Provenance last: stripping these columns from to_rows() output
        # leaves each segment byte-identical to that run's own rows().
        for name, value_of in (
                ("run_id", lambda h: h.run_id),
                ("tenant", lambda h: h.tenant),
                ("spec_digest", lambda h: h.spec_digest)):
            parts = [np.full(count, np.str_(value_of(handle)))
                     for (handle, _, _), count in zip(segments, counts)]
            data[name] = np.concatenate(parts) if parts \
                else np.zeros(0, dtype="U1")
        assert len(point_index) == total
        return RunColumns(point_index=point_index, data=data, mask=mask)
