"""Reclaim-time distributions for the expected-output companion submodel.

The guaranteed-output model (this paper) restrains a malicious owner with a
known lifespan and interrupt budget; its companion submodel (paper I and
[3]) instead assumes the owner reclaims the workstation at a *random* time
with a known distribution and maximises the expected work.  The classes
here describe such reclaim times through their survival function
``S(t) = P(reclaim time >= t)``, which is exactly what the expected-work
formula needs.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

__all__ = [
    "ReclaimDistribution",
    "ExponentialReclaim",
    "UniformReclaim",
    "DeterministicReclaim",
    "GeometricReclaim",
]


class ReclaimDistribution(abc.ABC):
    """A distribution over the time at which the owner reclaims workstation B."""

    @abc.abstractmethod
    def survival(self, t: float) -> float:
        """``P(reclaim time >= t)`` — probability the machine is still ours at ``t``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected reclaim time (may be ``inf``)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw reclaim times for simulation."""

    def survival_array(self, times) -> np.ndarray:
        """Vectorised :meth:`survival` over an array of times."""
        return np.asarray([self.survival(float(t)) for t in np.asarray(times).ravel()],
                          dtype=float).reshape(np.asarray(times).shape)

    def describe(self) -> str:
        """One-line human-readable description."""
        return type(self).__name__


class ExponentialReclaim(ReclaimDistribution):
    """Memoryless reclaim: constant hazard ``rate`` per unit time."""

    def __init__(self, rate: float):
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-self.rate * t)

    def mean(self) -> float:
        return 1.0 / self.rate

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.exponential(1.0 / self.rate, size=size)

    def describe(self) -> str:
        return f"Exponential(rate={self.rate:g})"


class UniformReclaim(ReclaimDistribution):
    """Reclaim time uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not (0.0 <= low < high):
            raise ValueError(f"need 0 <= low < high, got low={low!r}, high={high!r}")
        self.low = float(low)
        self.high = float(high)

    def survival(self, t: float) -> float:
        if t <= self.low:
            return 1.0
        if t >= self.high:
            return 0.0
        return (self.high - t) / (self.high - self.low)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.uniform(self.low, self.high, size=size)

    def describe(self) -> str:
        return f"Uniform[{self.low:g}, {self.high:g}]"


class DeterministicReclaim(ReclaimDistribution):
    """The owner reclaims at a fixed, known time (a hard deadline)."""

    def __init__(self, time: float):
        if time <= 0.0:
            raise ValueError(f"time must be positive, got {time!r}")
        self.time = float(time)

    def survival(self, t: float) -> float:
        return 1.0 if t <= self.time else 0.0

    def mean(self) -> float:
        return self.time

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self.time
        return np.full(size, self.time)

    def describe(self) -> str:
        return f"Deterministic({self.time:g})"


class GeometricReclaim(ReclaimDistribution):
    """Discrete-time reclaim: each time *slot* survives with probability ``1 − q``.

    Parameters
    ----------
    per_slot_probability:
        Probability ``q`` that the owner reclaims in any given slot.
    slot:
        Slot duration in model time units.
    """

    def __init__(self, per_slot_probability: float, slot: float = 1.0):
        if not (0.0 < per_slot_probability < 1.0):
            raise ValueError(
                f"per_slot_probability must lie in (0, 1), got {per_slot_probability!r}"
            )
        if slot <= 0.0:
            raise ValueError(f"slot must be positive, got {slot!r}")
        self.per_slot_probability = float(per_slot_probability)
        self.slot = float(slot)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        slots = math.floor(t / self.slot)
        return (1.0 - self.per_slot_probability) ** slots

    def mean(self) -> float:
        return self.slot / self.per_slot_probability

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        draws = rng.geometric(self.per_slot_probability, size=size)
        return draws * self.slot

    def describe(self) -> str:
        return f"Geometric(q={self.per_slot_probability:g}, slot={self.slot:g})"
