"""Schedule optimisation for the expected-output submodel.

Two optimisers are provided:

* :func:`optimal_equal_period_exponential` — for the memoryless
  (exponential) reclaim process the optimal schedule uses equal periods;
  the best period length is found by golden-section search on the
  closed-form per-period yield.
* :func:`optimize_schedule` — a grid dynamic program that maximises the
  expected work for an arbitrary reclaim distribution over a finite
  horizon: states are grid times, the decision is the next period length.

These mirror what the guaranteed-output guidelines are for the adversarial
submodel, letting the examples compare "scheduling against malice" with
"scheduling against chance" on the same workloads.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..core.schedule import EpisodeSchedule
from .distributions import ExponentialReclaim, ReclaimDistribution
from .model import expected_work

__all__ = [
    "optimal_equal_period_exponential",
    "expected_yield_exponential",
    "optimize_schedule",
]


def expected_yield_exponential(period_length: float, rate: float, setup_cost: float) -> float:
    """Long-run expected work per unit time of equal periods under exponential reclaim.

    With equal periods of length ``t`` the expected total work until reclaim
    is ``(t − c)·e^{−λt} / (1 − e^{−λt})``; dividing by the expected time
    actually used, ``1/λ``, gives the yield.  Only the numerator matters for
    choosing ``t``, so this function returns the expected total work.
    """
    t = float(period_length)
    c = float(setup_cost)
    lam = float(rate)
    if t <= c:
        return 0.0
    decay = math.exp(-lam * t)
    if decay >= 1.0:
        return float("inf")
    return (t - c) * decay / (1.0 - decay)


def optimal_equal_period_exponential(rate: float, setup_cost: float,
                                     *, tol: float = 1e-9) -> float:
    """Best equal-period length under a memoryless (exponential) reclaim process.

    Found by golden-section search of :func:`expected_yield_exponential`
    over ``t ∈ (c, c + 20/λ]`` (the yield is unimodal in ``t``).
    """
    c = float(setup_cost)
    lam = float(rate)
    lo = c + tol
    hi = c + max(20.0 / lam, 10.0 * max(c, tol))
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    x1 = b - invphi * (b - a)
    x2 = a + invphi * (b - a)
    f1 = expected_yield_exponential(x1, lam, c)
    f2 = expected_yield_exponential(x2, lam, c)
    for _ in range(200):
        if b - a <= tol * max(1.0, abs(b)):
            break
        if f1 < f2:
            a, x1, f1 = x1, x2, f2
            x2 = a + invphi * (b - a)
            f2 = expected_yield_exponential(x2, lam, c)
        else:
            b, x2, f2 = x2, x1, f1
            x1 = b - invphi * (b - a)
            f1 = expected_yield_exponential(x1, lam, c)
    return 0.5 * (a + b)


def optimize_schedule(distribution: ReclaimDistribution, horizon: float,
                      setup_cost: float, *, grid: int = 400
                      ) -> Tuple[EpisodeSchedule, float]:
    """Grid DP maximising expected work over a finite horizon.

    Parameters
    ----------
    distribution:
        Reclaim-time distribution.
    horizon:
        Latest time periods may extend to (e.g. the contracted lifespan).
    grid:
        Number of grid cells the horizon is divided into; the returned
        schedule's period lengths are multiples of ``horizon / grid``.

    Returns
    -------
    (schedule, expected_work)
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon!r}")
    if grid < 2:
        raise ValueError(f"grid must be at least 2, got {grid!r}")
    c = float(setup_cost)
    step = float(horizon) / grid
    survival = np.array([distribution.survival(i * step) for i in range(grid + 1)])

    # best[i] = best expected additional work when the next period starts at
    # grid time i; choice[i] = the maximising period length in grid cells.
    best = np.zeros(grid + 1)
    choice = np.zeros(grid + 1, dtype=int)
    for i in range(grid - 1, -1, -1):
        best_val = 0.0
        best_len = 0
        for j in range(i + 1, grid + 1):
            length = (j - i) * step
            gain = max(0.0, length - c) * survival[j] + best[j]
            if gain > best_val + 1e-15:
                best_val = gain
                best_len = j - i
        best[i] = best_val
        choice[i] = best_len

    lengths: List[float] = []
    i = 0
    while i < grid and choice[i] > 0:
        lengths.append(choice[i] * step)
        i += choice[i]
    if not lengths:
        lengths = [float(horizon)]
    schedule = EpisodeSchedule.from_period_lengths(lengths, float(horizon))
    return schedule, expected_work(schedule, distribution, c)
