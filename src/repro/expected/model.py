r"""Expected-work evaluation (the companion submodel of [3] / paper I).

A period of length ``t_k`` finishing at time ``T_k`` contributes its work
``t_k ⊖ c`` only if the owner has not reclaimed the machine by ``T_k``
(the draconian contract kills the work in flight), so for a reclaim-time
distribution with survival function ``S``:

.. math::

   E[W(S)] \;=\; \sum_k (t_k ⊖ c) \, S(T_k).

The functions here evaluate that expectation analytically from the
distribution, and empirically by Monte-Carlo sampling of reclaim times —
the two are cross-checked in the test-suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.arithmetic import period_work_array
from ..core.schedule import EpisodeSchedule
from .distributions import ReclaimDistribution

__all__ = ["expected_work", "simulate_expected_work", "completion_probabilities"]


def completion_probabilities(schedule: EpisodeSchedule,
                             distribution: ReclaimDistribution) -> np.ndarray:
    """Probability that each period completes before the owner reclaims."""
    return distribution.survival_array(schedule.finish_times)


def expected_work(schedule: EpisodeSchedule, distribution: ReclaimDistribution,
                  setup_cost: float) -> float:
    """Exact expected work of a schedule under a random reclaim time."""
    work = period_work_array(schedule.periods, setup_cost)
    probs = completion_probabilities(schedule, distribution)
    return float(np.dot(work, probs))


def simulate_expected_work(schedule: EpisodeSchedule, distribution: ReclaimDistribution,
                           setup_cost: float, num_samples: int = 10_000,
                           rng: Optional[np.random.Generator] = None) -> float:
    """Monte-Carlo estimate of :func:`expected_work` (used for cross-checking)."""
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples!r}")
    if rng is None:
        rng = np.random.default_rng(0)
    reclaim_times = np.atleast_1d(distribution.sample(rng, size=num_samples)).astype(float)
    finishes = schedule.finish_times
    work = period_work_array(schedule.periods, setup_cost)
    # A period contributes when the reclaim time is at least its finish time.
    completed = reclaim_times[:, None] >= finishes[None, :]
    return float((completed * work[None, :]).sum(axis=1).mean())
