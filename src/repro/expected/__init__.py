"""Expected-output companion submodel (random, non-adversarial owners)."""

from .distributions import (
    DeterministicReclaim,
    ExponentialReclaim,
    GeometricReclaim,
    ReclaimDistribution,
    UniformReclaim,
)
from .model import completion_probabilities, expected_work, simulate_expected_work
from .optimize import (
    expected_yield_exponential,
    optimal_equal_period_exponential,
    optimize_schedule,
)

__all__ = [
    "ReclaimDistribution",
    "ExponentialReclaim",
    "UniformReclaim",
    "DeterministicReclaim",
    "GeometricReclaim",
    "expected_work",
    "simulate_expected_work",
    "completion_probabilities",
    "optimal_equal_period_exponential",
    "expected_yield_exponential",
    "optimize_schedule",
]
