"""Command-line interface: ``cycle-stealing <command>`` (or ``python -m repro``).

Sub-commands
------------
``table1``     Instantiate the paper's Table 1 for a guideline schedule.
``table2``     Reproduce Table 2 (the p = 1 closed forms vs. measurements).
``nonadaptive``Sweep the Section 3.1 non-adaptive guarantee.
``adaptive``   Sweep the Theorem 5.1 adaptive guarantee.
``gap``        Optimality gaps of every registered scheduler against the
               exact DP optimum.
``simulate``   Run a canned NOW scenario through the discrete-event simulator.
``sweep``      Parallel experiment sweep (guaranteed work, DP optima and
               Monte-Carlo replication) over a lifespan × cost × interrupts ×
               scheduler × adversary grid, with ``--jobs``, ``--replications``,
               ``--seed`` and a shared DP-table ``--cache-dir``.
``run``        Execute a declarative experiment spec (TOML/JSON, see
               :mod:`repro.specs`) into the resumable run store —
               in-process (``--executor local``) or through a loopback
               worker cluster (``--executor cluster``).
``resume``     Finish an interrupted run from its last completed point.
``report``     Render a stored run as a paper-style markdown report.
``serve``      Run the spec-submission service: durable queue, bounded
               workers, crash recovery (see docs/service.md).
``submit``     Enqueue a spec file (or stdin) for the service to execute.
``status``     Show the submission queue (table or ``--json``).
``catalog``    Cross-run analytics: ``index`` / ``list`` / ``query`` /
               ``export`` / ``diff`` over one or more runs roots
               (see docs/catalog.md).
``cancel``     Cancel a not-yet-running submission.
``coordinator``Serve a spec's points to remote ``worker`` processes over
               TCP (work-stealing leases; see docs/distributed.md).
``worker``     Connect to a coordinator, compute leased points, stream
               the shards back.

Scheduler, adversary and scenario-family names accepted by the commands
are the :mod:`repro.registry` names.  Each table-producing command prints
an aligned ASCII table; ``--csv PATH`` writes the same rows to a CSV file.
``report`` prints markdown.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import (
    adaptive_guarantee_sweep,
    nonadaptive_guarantee_sweep,
    table1_rows,
    table2_rows,
)
from .core.params import CycleStealingParams
from .reporting import render_table, write_csv

__all__ = ["main", "build_parser"]

#: The one true description of ``--cache-dir`` — shared by every
#: sub-command and asserted (together with README.md) by the CLI tests, so
#: help text, docs and code cannot drift apart again.
CACHE_DIR_HELP_DEFAULT = None
CACHE_DIR_HELP = ("on-disk DP-table cache directory shared by all workers "
                  "(default: disabled — DP tables are cached in memory, "
                  "per process, for the current run only)")

#: Pre-registry short scheduler names still accepted by ``simulate``.
LEGACY_SCHEDULER_ALIASES = {
    "equalizing": "equalizing-adaptive",
    "rosenberg": "rosenberg-adaptive",
    "fixed": "fixed-period",
    "single": "single-period",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="cycle-stealing",
        description="Guaranteed-output cycle-stealing guidelines (Rosenberg, IPPS 1999)")
    parser.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="consequences of the adversary's options")
    t1.add_argument("--lifespan", "-U", type=float, default=100.0)
    t1.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t1.add_argument("--interrupts", "-p", type=int, default=2)

    t2 = sub.add_parser("table2", help="p = 1 parameters: optimal vs guideline")
    t2.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t2.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0, 100_000.0])

    na = sub.add_parser("nonadaptive", help="Section 3.1 guarantee sweep")
    na.add_argument("--setup-cost", "-c", type=float, default=1.0)
    na.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    na.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 4, 8])

    ad = sub.add_parser("adaptive", help="Theorem 5.1 guarantee sweep")
    ad.add_argument("--setup-cost", "-c", type=float, default=1.0)
    ad.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    ad.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 3, 4])

    from .registry import SCENARIO_FAMILIES, SCHEDULERS

    gp = sub.add_parser("gap", help="optimality gap of every scheduler vs the DP optimum")
    gp.add_argument("--lifespan", "-U", type=int, default=2_000)
    gp.add_argument("--setup-cost", "-c", type=int, default=1)
    gp.add_argument("--interrupts", "-p", type=int, default=2)
    gp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the comparison sweep")
    gp.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)

    sim = sub.add_parser("simulate", help="run a canned NOW scenario")
    sim.add_argument("--scenario", choices=SCENARIO_FAMILIES.names(),
                     default="laptop")
    sim.add_argument("--scheduler",
                     choices=SCHEDULERS.names() + sorted(LEGACY_SCHEDULER_ALIASES),
                     default="equalizing-adaptive",
                     help="registry scheduler name (legacy short aliases "
                          "equalizing/rosenberg/fixed/single still accepted)")
    sim.add_argument("--seed", type=int, default=None,
                     help="scenario seed (default: the family's canonical seed)")
    sim.add_argument("--backend", choices=["event", "batch"], default="event",
                     help="simulation backend (batch = vectorized, same results)")

    from .experiments.grid import adversary_names, scheduler_names

    sw = sub.add_parser(
        "sweep", help="parallel experiment sweep with Monte-Carlo replication")
    sw.add_argument("--lifespans", type=float, nargs="+",
                    default=[200.0, 400.0, 800.0])
    sw.add_argument("--setup-costs", type=float, nargs="+", default=[1.0])
    sw.add_argument("--interrupts", type=int, nargs="+", default=[1, 2])
    sw.add_argument("--schedulers", nargs="+", choices=scheduler_names(),
                    default=["equalizing-adaptive", "rosenberg-nonadaptive"])
    sw.add_argument("--adversaries", nargs="+", choices=adversary_names(),
                    default=[],
                    help="stochastic owners to sample (enables the Monte-Carlo columns)")
    sw.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes (0 = one per CPU)")
    sw.add_argument("--replications", "-n", type=int, default=0,
                    help="Monte-Carlo replications per point (0 = analytic only)")
    sw.add_argument("--seed", type=int, default=0,
                    help="base seed for deterministic per-point trace sampling")
    sw.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    sw.add_argument("--optimal", action="store_true",
                    help="also compute the exact DP optimum per point (integer grids)")
    sw.add_argument("--backend", choices=["event", "batch"], default="event",
                    help="Monte-Carlo replication backend (batch = vectorized; "
                         "~10x faster on large --replications, same aggregates)")
    sw.add_argument("--aggregation", choices=["exact", "streaming", "auto"],
                    default="auto",
                    help="Monte-Carlo aggregation: exact one-shot arrays, "
                         "streaming online accumulators (flat memory, P2 "
                         "quantile estimates), or auto (exact below the "
                         "streaming threshold)")
    sw.add_argument("--chunk-size", type=int, default=None,
                    help="streaming chunk size in replications (default: "
                         "auto-sized from --replications; never changes "
                         "results, only memory/throughput)")
    sw.add_argument("--variance", choices=["none", "antithetic", "stratified"],
                    default="none",
                    help="variance-reduction mode: antithetic pairs the "
                         "interrupt traces (needs even --replications), "
                         "stratified post-stratifies on interrupt count; "
                         "both add CI columns ({col}_sem/_ci_lo/_ci_hi)")
    sw.add_argument("--profile", action="store_true",
                    help="print a per-stage wall-time breakdown (referee / "
                         "DP solve / Monte-Carlo) to stderr")

    from .runstore import DEFAULT_RUNS_DIR

    rn = sub.add_parser(
        "run", help="run a declarative experiment spec into the run store")
    rn.add_argument("spec", help="path to a .toml or .json experiment spec "
                                 "(see specs/ and docs/specs.md)")
    rn.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    rn.add_argument("--run-id", default=None,
                    help="run id (default: spec name + content digest)")
    rn.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes (0 = one per CPU)")
    rn.add_argument("--replications", "-n", type=int, default=None,
                    help="override the spec's replication count")
    rn.add_argument("--seed", type=int, default=None,
                    help="override the spec's base seed")
    rn.add_argument("--backend", choices=["event", "batch"], default=None,
                    help="override the spec's replication backend")
    rn.add_argument("--aggregation", choices=["exact", "streaming", "auto"],
                    default=None,
                    help="override the spec's Monte-Carlo aggregation mode "
                         "(re-validated on resume like every spec key)")
    rn.add_argument("--chunk-size", type=int, default=None, dest="chunk_size",
                    help="override the spec's streaming chunk size (never "
                         "changes results, so resumes may re-chunk freely)")
    rn.add_argument("--variance", choices=["none", "antithetic", "stratified"],
                    default=None,
                    help="override the spec's variance-reduction mode "
                         "(changes results, so it is part of the run identity)")
    rn.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    rn.add_argument("--max-points", type=int, default=None,
                    help="checkpoint: stop after completing N new points "
                         "(resume later with `resume`)")
    rn.add_argument("--resume", action="store_true",
                    help="continue the run if it already exists")
    rn.add_argument("--profile", action="store_true",
                    help="print a per-stage wall-time breakdown (spec parse / "
                         "referee / DP solve / Monte-Carlo / shard I/O) to stderr")
    rn.add_argument("--executor", choices=["local", "cluster"],
                    default="local",
                    help="point executor: local in-process pool, or cluster "
                         "(loopback coordinator + --jobs worker processes "
                         "talking the distributed protocol; byte-identical "
                         "results, see docs/distributed.md)")
    rn.add_argument("--lease-ttl", type=float, default=60.0,
                    help="cluster executor only: lease expiry in seconds "
                         "(a worker silent this long forfeits its point)")

    rs = sub.add_parser(
        "resume", help="finish an interrupted run from its last completed point")
    rs.add_argument("run_id", help="id of a run under --runs-dir")
    rs.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    rs.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes (0 = one per CPU)")
    rs.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    rs.add_argument("--max-points", type=int, default=None,
                    help="checkpoint: stop after completing N new points")

    rp = sub.add_parser(
        "report", help="render a stored run as a markdown report")
    rp.add_argument("run_id", help="id of a run under --runs-dir")
    rp.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    rp.add_argument("--output", default=None,
                    help="where to write the markdown "
                         "(default: <runs-dir>/<run-id>/report.md; '-' = print only)")
    rp.add_argument("--force", action="store_true",
                    help="re-render even when the report digest cache is "
                         "warm (an unchanged run is otherwise a pure cache hit)")
    rp.add_argument("--profile", action="store_true",
                    help="print the end-to-end report_render wall time to "
                         "stderr (collapses to the digest check on a cache hit)")

    sv = sub.add_parser(
        "serve", help="run the spec-submission service (durable queue, "
                      "bounded workers, crash recovery)")
    sv.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/); "
                         "the queue journal lives in <runs-dir>/_queue/")
    sv.add_argument("--workers", type=int, default=2,
                    help="concurrently executing submissions (default: 2)")
    sv.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes per run (0 = one per CPU)")
    sv.add_argument("--max-retries", type=int, default=3,
                    help="failed attempts retried before dead-lettering")
    sv.add_argument("--backoff-base", type=float, default=0.5,
                    help="first retry delay in seconds (doubles per attempt)")
    sv.add_argument("--backoff-cap", type=float, default=30.0,
                    help="maximum retry delay in seconds")
    sv.add_argument("--poll-interval", type=float, default=0.1,
                    help="journal poll period in seconds")
    sv.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    sv.add_argument("--http-port", type=int, default=None,
                    help="serve the JSON status endpoint on this localhost "
                         "port (0 = ephemeral, printed at startup; "
                         "default: disabled)")
    sv.add_argument("--drain", action="store_true",
                    help="exit once every submission is published, dead or "
                         "cancelled (instead of serving forever)")
    sv.add_argument("--max-runtime", type=float, default=None,
                    help="wall-clock safety limit in seconds")
    sv.add_argument("--executor", choices=["local", "cluster"],
                    default="local",
                    help="how submissions execute: local run_spec, or "
                         "cluster (loopback coordinator + --cluster-workers "
                         "worker processes per submission)")
    sv.add_argument("--cluster-workers", type=int, default=2,
                    help="worker processes per submission with "
                         "--executor cluster (default: 2)")
    sv.add_argument("--no-catalog", action="store_true",
                    help="skip the catalog index upsert after each publish "
                         "(default: published runs become queryable via "
                         "`repro catalog` immediately)")

    co = sub.add_parser(
        "coordinator", help="serve a spec's pending points to workers over "
                            "TCP (work-stealing leases, table service)")
    co.add_argument("spec", help="path to a .toml or .json experiment spec")
    co.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    co.add_argument("--run-id", default=None,
                    help="run id (default: spec name + content digest)")
    co.add_argument("--bind", default="127.0.0.1:0",
                    help="host:port to listen on (port 0 = ephemeral; the "
                         "bound address is printed to stdout at startup)")
    co.add_argument("--lease-ttl", type=float, default=60.0,
                    help="lease expiry in seconds; workers heartbeat at a "
                         "third of this (default: 60)")
    co.add_argument("--resume", action="store_true",
                    help="continue the run if it already exists")
    co.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    co.add_argument("--http-port", type=int, default=None,
                    help="serve /healthz + /metrics on this localhost port "
                         "(0 = ephemeral, printed at startup; default: "
                         "disabled)")
    co.add_argument("--max-runtime", type=float, default=None,
                    help="wall-clock safety limit in seconds")

    wk = sub.add_parser(
        "worker", help="connect to a coordinator, compute leased points, "
                       "stream the shards back")
    wk.add_argument("address", help="coordinator host:port (printed by "
                                    "`repro coordinator` at startup)")
    wk.add_argument("--spec", default=None,
                    help="local spec file to verify against the coordinator "
                         "by digest (default: adopt the coordinator's spec)")
    wk.add_argument("--jobs", "-j", type=int, default=1,
                    help="local evaluation processes (leases up to this "
                         "many points at once)")
    wk.add_argument("--cache-dir", default=CACHE_DIR_HELP_DEFAULT,
                    help=CACHE_DIR_HELP)
    wk.add_argument("--worker-id", default=None,
                    help="stable worker identity for logs and lease "
                         "accounting (default: random)")
    wk.add_argument("--retry-for", type=float, default=10.0,
                    help="seconds to retry the initial connection while the "
                         "coordinator comes up (default: 10)")

    sb = sub.add_parser(
        "submit", help="enqueue a spec file (or '-' for stdin) for the service")
    sb.add_argument("spec", help="path to a .toml/.json experiment spec, "
                                 "or '-' to read the spec from stdin")
    sb.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    sb.add_argument("--tenant", default=None,
                    help="run-store namespace (default: the spec file's "
                         "[submission] tenant, else 'default')")
    sb.add_argument("--priority", type=int, default=None,
                    help="scheduling priority, higher first (default: the "
                         "spec file's [submission] priority, else 0)")
    sb.add_argument("--format", choices=["toml", "json"], default=None,
                    help="stdin spec format (default: sniffed — a leading "
                         "'{' means JSON, anything else TOML)")

    st = sub.add_parser(
        "status", help="show the submission queue (table or --json)")
    st.add_argument("entry", nargs="?", default=None,
                    help="show one entry in full (default: the whole queue)")
    st.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")
    st.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the machine-readable JSON snapshot (the "
                         "schema the HTTP /status endpoint also serves)")

    cn = sub.add_parser(
        "cancel", help="cancel a not-yet-running submission")
    cn.add_argument("entry", help="entry id to cancel (see `repro status`)")
    cn.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                    help=f"run-store root directory (default: {DEFAULT_RUNS_DIR}/)")

    ct = sub.add_parser(
        "catalog", help="cross-run analytics over one or more runs roots "
                        "(see docs/catalog.md)")
    ct.add_argument("--runs-dir", action="append", default=None,
                    dest="runs_dirs", metavar="DIR",
                    help="runs root to index/query (repeatable for multiple "
                         f"roots; default: {DEFAULT_RUNS_DIR}/; the index "
                         "lives in <first root>/_catalog/)")
    ctsub = ct.add_subparsers(dest="catalog_command", required=True)

    def add_find_filters(sp):
        """The shared ``find()`` filter flags (list / query / export)."""
        sp.add_argument("--name", default=None, help="exact spec name")
        sp.add_argument("--kind", choices=["sweep", "scenario"], default=None)
        sp.add_argument("--family", default=None,
                        help="scenario family (scenario runs only)")
        sp.add_argument("--scheduler", default=None,
                        help="runs whose spec includes this scheduler")
        sp.add_argument("--adversary", default=None,
                        help="runs whose spec includes this adversary")
        sp.add_argument("-p", "--interrupts", type=int, default=None,
                        dest="p", help="runs sweeping this interrupt budget")
        sp.add_argument("-c", "--setup-cost", type=float, default=None,
                        dest="c", help="runs sweeping this set-up cost")
        sp.add_argument("-U", "--lifespan", type=float, default=None,
                        dest="u", help="runs sweeping this lifespan")
        sp.add_argument("--status", choices=["running", "complete"],
                        default=None)
        sp.add_argument("--tenant", default=None,
                        help="service namespace ('' = top-level CLI runs)")
        sp.add_argument("--since", default=None,
                        help="runs modified at/after this ISO date or "
                             "POSIX timestamp")
        sp.add_argument("--no-refresh", action="store_true",
                        help="query the index as-is instead of refreshing "
                             "it incrementally first")

    cti = ctsub.add_parser(
        "index", help="bring the index in line with the runs roots "
                      "(incremental: only changed runs are re-read)")
    cti.add_argument("--full", action="store_true",
                     help="re-extract every run, ignoring content digests")

    ctl = ctsub.add_parser("list", help="list indexed runs (one row each)")
    add_find_filters(ctl)

    ctq = ctsub.add_parser(
        "query", help="concatenate matching runs' result rows "
                      "(provenance-tagged: run_id, tenant, spec_digest)")
    add_find_filters(ctq)
    ctq.add_argument("--columns", nargs="+", default=None,
                     help="restrict the result columns (provenance columns "
                          "are always appended)")
    ctq.add_argument("--where", action="append", default=None,
                     metavar="COL=VALUE",
                     help="keep only rows where COL equals VALUE "
                          "(repeatable; repeated COL means 'any of')")
    ctq.add_argument("--source", choices=["auto", "sidecar", "shards"],
                     default="auto",
                     help="where rows come from (auto = sidecar fast path "
                          "when valid, shards otherwise)")

    cte = ctsub.add_parser(
        "export", help="write the matching rows to CSV / Parquet / Arrow")
    cte.add_argument("output", help="output path (.csv, .parquet, .arrow; "
                                    "Parquet/Arrow need pyarrow installed)")
    add_find_filters(cte)
    cte.add_argument("--columns", nargs="+", default=None)
    cte.add_argument("--where", action="append", default=None,
                     metavar="COL=VALUE")
    cte.add_argument("--format", choices=["auto", "csv", "parquet", "arrow"],
                     default="auto",
                     help="export format (default: from the file extension)")

    ctd = ctsub.add_parser(
        "diff", help="markdown comparison of two indexed runs")
    ctd.add_argument("run_a", help="first run id")
    ctd.add_argument("run_b", help="second run id")
    ctd.add_argument("--tenant-a", default=None,
                     help="disambiguate run_a across tenants")
    ctd.add_argument("--tenant-b", default=None,
                     help="disambiguate run_b across tenants")
    ctd.add_argument("--no-refresh", action="store_true",
                     help="query the index as-is instead of refreshing first")

    return parser


def _cmd_table1(args) -> List[dict]:
    from .schedules import EqualizingAdaptiveScheduler

    params = CycleStealingParams(lifespan=args.lifespan, setup_cost=args.setup_cost,
                                 max_interrupts=args.interrupts)
    schedule = EqualizingAdaptiveScheduler().episode_schedule(
        params.lifespan, params.max_interrupts, params.setup_cost)
    return table1_rows(schedule, params)


def _cmd_table2(args) -> List[dict]:
    return table2_rows(args.lifespans, args.setup_cost)


def _cmd_nonadaptive(args) -> List[dict]:
    return nonadaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_adaptive(args) -> List[dict]:
    return adaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_gap(args) -> List[dict]:
    from .analysis.sweeps import registry_comparison_sweep
    from .experiments.cache import configure_shared_cache
    from .registry import SCHEDULERS

    params = CycleStealingParams(lifespan=float(args.lifespan),
                                 setup_cost=float(args.setup_cost),
                                 max_interrupts=args.interrupts)
    # The shared cache serves both this solve and any dp-optimal factory
    # instantiation, so the table is computed exactly once per process.
    cache = configure_shared_cache(cache_dir=args.cache_dir)
    table = cache.solve(int(args.lifespan), int(args.setup_cost), args.interrupts)
    names = ["dp-optimal"] + [n for n in SCHEDULERS.names() if n != "dp-optimal"]
    return registry_comparison_sweep(names, [params], dp_table=table,
                                     jobs=args.jobs)


def _cmd_simulate(args) -> List[dict]:
    from .experiments.grid import make_scheduler
    from .registry import SCENARIO_FAMILIES
    from .simulator import CycleStealingSimulation

    family = SCENARIO_FAMILIES[args.scenario]
    scenario = family() if args.seed is None else family(seed=args.seed)
    if args.scheduler == "fixed":
        # The legacy alias predates the registry and always used U/20
        # chunks (the registry's `fixed-period` factory uses max(10, U/50));
        # keep its historical behaviour so old invocations reproduce.
        from .schedules import FixedPeriodScheduler
        scheduler = FixedPeriodScheduler(
            period_length=scenario.params.lifespan / 20)
    else:
        name = LEGACY_SCHEDULER_ALIASES.get(args.scheduler, args.scheduler)
        scheduler = make_scheduler(name, scenario.params)
        if not hasattr(scheduler, "episode_schedule"):
            raise SystemExit(
                f"error: scheduler {name!r} implements only the non-adaptive "
                "protocol and cannot drive the NOW simulator (it cannot "
                "re-plan after an owner reclaim); choose an adaptive "
                "scheduler such as 'equalizing-adaptive'")
    if args.backend == "batch":
        from .simulator.batch import simulate_scenarios_batch

        (report,) = simulate_scenarios_batch([scenario], scheduler)
    else:
        report = CycleStealingSimulation(scenario.workstations, scheduler,
                                         task_bag=scenario.task_bag).run()
    return report.rows()


def _cmd_sweep(args) -> List[dict]:
    from .experiments import SweepGrid, run_sweep

    adversaries = tuple(args.adversaries)
    if args.replications > 0 and not adversaries:
        # Asking for replications implies a Monte-Carlo layer; silently
        # producing none would be a no-op, so default to a Poisson owner.
        adversaries = ("poisson-owner",)
        print("note: --replications given without --adversaries; "
              "defaulting to 'poisson-owner'", file=sys.stderr)

    grid = SweepGrid(lifespans=tuple(args.lifespans),
                     setup_costs=tuple(args.setup_costs),
                     interrupt_budgets=tuple(args.interrupts),
                     schedulers=tuple(args.schedulers),
                     adversaries=adversaries)
    return run_sweep(grid, jobs=args.jobs, replications=args.replications,
                     seed=args.seed, cache_dir=args.cache_dir,
                     include_optimal=args.optimal, backend=args.backend,
                     aggregation=args.aggregation, chunk_size=args.chunk_size,
                     variance=args.variance, profile=args.profile)


def _spec_with_overrides(args):
    """Load the spec file and re-validate it with any CLI overrides applied."""
    from .specs import load_spec, parse_spec, spec_to_dict

    spec = load_spec(args.spec)
    overrides = {key: getattr(args, key, None)
                 for key in ("replications", "seed", "backend",
                             "aggregation", "chunk_size", "variance")}
    if any(value is not None for value in overrides.values()):
        data = spec_to_dict(spec)
        for key, value in overrides.items():
            if value is not None:
                data["experiment"][key] = value
        spec = parse_spec(data, source=f"{args.spec} (with CLI overrides)")
    return spec


def _cmd_run(args) -> List[dict]:
    from .runstore import run_spec

    spec = _spec_with_overrides(args)
    if args.executor == "cluster":
        if args.max_points is not None or args.profile:
            raise SystemExit("error: --max-points and --profile are not "
                             "supported with --executor cluster (run the "
                             "coordinator directly for finer control)")
        from .distributed import run_spec_distributed
        from .experiments.orchestrator import _resolve_jobs

        run = run_spec_distributed(spec, runs_dir=args.runs_dir,
                                   run_id=args.run_id,
                                   workers=_resolve_jobs(args.jobs),
                                   cache_dir=args.cache_dir,
                                   lease_ttl=args.lease_ttl,
                                   resume=args.resume)
    else:
        run = run_spec(spec, runs_dir=args.runs_dir,
                       run_id=args.run_id, jobs=args.jobs,
                       cache_dir=args.cache_dir, max_points=args.max_points,
                       resume=args.resume, profile=args.profile)
    rows = run.rows()
    print(f"run {run.run_id}: {run.status} "
          f"({len(rows)}/{run.num_points} points) "
          f"under {args.runs_dir}/", file=sys.stderr)
    return rows


def _cmd_resume(args) -> List[dict]:
    from .runstore import resume_run

    run = resume_run(args.run_id, runs_dir=args.runs_dir, jobs=args.jobs,
                     cache_dir=args.cache_dir, max_points=args.max_points)
    rows = run.rows()
    print(f"run {run.run_id}: {run.status} "
          f"({len(rows)}/{run.num_points} points)", file=sys.stderr)
    return rows


def _cmd_report(args) -> str:
    import time

    from .experiments.profiling import render_profile
    from .reporting import refresh_run_report, render_run_report
    from .runstore import RunStore

    started = time.perf_counter()
    run = RunStore(args.runs_dir).open(args.run_id)
    if args.output == "-":  # print-only mode: render fresh, write nothing
        text = render_run_report(run)
        hit = False
    else:
        path, hit = refresh_run_report(run, args.output, force=args.force)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        print(f"report-cache: {'hit' if hit else 'miss — rendered'}",
              file=sys.stderr)
        print(f"{'cached' if hit else 'wrote'} {path}", file=sys.stderr)
    if args.profile:
        elapsed = time.perf_counter() - started
        # On a cache hit nothing is re-read or re-rendered, so the stage
        # collapses to the digest check — exactly the win being measured.
        print(render_profile({"report_render": elapsed},
                             wall_seconds=elapsed, points=run.num_points),
              file=sys.stderr)
    return text


def _open_journal(runs_dir: str):
    import os

    from .service.journal import QUEUE_DIRNAME, Journal

    return Journal(os.path.join(runs_dir, QUEUE_DIRNAME))


def _cmd_serve(args) -> str:
    import signal

    from .service.http import StatusHTTPServer
    from .service.runner import RunService

    service = RunService(args.runs_dir, workers=args.workers,
                         jobs_per_run=args.jobs,
                         max_retries=args.max_retries,
                         backoff_base=args.backoff_base,
                         backoff_cap=args.backoff_cap,
                         poll_interval=args.poll_interval,
                         cache_dir=args.cache_dir,
                         http_port=args.http_port,
                         executor=args.executor,
                         cluster_workers=args.cluster_workers,
                         catalog_index=not args.no_catalog)

    def request_stop(signum, frame):
        service.stop()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    if args.http_port is not None:
        # Start HTTP before the blocking loop so an ephemeral port
        # (--http-port 0) can be announced to whoever started us.
        service.http = StatusHTTPServer(service.journal, port=args.http_port,
                                        inflight=service.inflight_ids,
                                        metrics=service.metrics_snapshot)
        service.http.start()
        print(f"status endpoint: http://127.0.0.1:{service.http.port}/status",
              file=sys.stderr)
    counts = service.serve(drain=args.drain, max_runtime=args.max_runtime)
    pending = sum(counts[state]
                  for state in ("submitted", "validated", "running", "failed"))
    return (f"service stopped: {counts['published']} published, "
            f"{counts['dead']} dead, {counts['cancelled']} cancelled, "
            f"{pending} pending")


def _cmd_submit(args) -> str:
    from .service.journal import JournalError
    from .specs import (
        SpecError,
        decode_spec_data,
        load_spec_data,
        parse_submission,
    )

    try:
        if args.spec == "-":
            data = decode_spec_data(sys.stdin.read(), format=args.format)
            source = "<stdin>"
        else:
            data = load_spec_data(args.spec)
            source = args.spec
        # Submission metadata resolution: CLI flag > the spec file's
        # [submission] table > defaults.  Semantic spec validation is the
        # service's job (a bad spec dead-letters with a captured error);
        # only the format and the routing metadata are checked here.
        meta = parse_submission(data, source=source)
        tenant = args.tenant if args.tenant is not None else meta.tenant
        priority = args.priority if args.priority is not None else meta.priority
        entry = _open_journal(args.runs_dir).submit(
            data, tenant=tenant, priority=priority)
    except (SpecError, JournalError) as exc:
        raise SystemExit(f"error: {exc}")
    return (f"submitted {entry.entry_id} "
            f"(spec={entry.spec_name or '?'}, tenant={tenant}, "
            f"priority={priority}) from {source}")


def _status_row(summary: dict) -> dict:
    """One compact table row (full detail lives in --json / single-entry)."""
    error = (summary["error"] or "").strip()
    return {
        "entry": summary["entry"],
        "state": summary["state"],
        "tenant": summary["tenant"],
        "priority": summary["priority"],
        "attempts": summary["attempts"],
        "spec": summary["spec_name"] or "?",
        "run_id": summary["run_id"] or "",
        "error": error.splitlines()[-1][:60] if error else "",
    }


def _cmd_status(args):
    import json

    from .service.journal import JournalError
    from .service.status import entry_summary, status_snapshot

    journal = _open_journal(args.runs_dir)
    if args.entry is None:
        if args.as_json:
            return json.dumps(status_snapshot(journal), indent=2,
                              sort_keys=True)
        rows = [_status_row(entry_summary(entry))
                for entry in journal.entries()]
        if not rows:
            return f"queue is empty: no submissions under {journal.root}/"
        return rows
    try:
        entry = journal.get(args.entry)
    except JournalError as exc:
        raise SystemExit(f"error: {exc}")
    summary = entry_summary(entry)
    if args.as_json:
        return json.dumps(summary, indent=2, sort_keys=True)
    lines = [f"{key}: {summary[key]}"
             for key in ("entry", "state", "tenant", "priority", "seq",
                         "spec_name", "run_id", "attempts",
                         "next_attempt_at", "submitted_at", "updated_at")]
    if summary["error"]:
        lines += ["error:", str(summary["error"]).rstrip()]
    return "\n".join(lines)


def _cmd_coordinator(args) -> str:
    from .distributed import Coordinator, DistributedError
    from .distributed.protocol import resolve_bind
    from .specs import load_spec

    spec = load_spec(args.spec)
    host, port = resolve_bind(args.bind)
    coordinator = Coordinator(spec, runs_dir=args.runs_dir,
                              run_id=args.run_id, host=host, port=port,
                              lease_ttl=args.lease_ttl, resume=args.resume,
                              cache_dir=args.cache_dir)
    http = None
    try:
        coordinator.start()
        bound_host, bound_port = coordinator.address
        # Announced on stdout, flushed before blocking: scripts spawning
        # `repro coordinator --bind host:0` parse this line for the port.
        print(f"coordinator listening on {bound_host}:{bound_port}",
              flush=True)
        if args.http_port is not None:
            from .service.http import StatusHTTPServer

            http = StatusHTTPServer(None, port=args.http_port,
                                    metrics=coordinator.metrics_snapshot)
            http.start()
            print(f"metrics endpoint: "
                  f"http://127.0.0.1:{http.port}/metrics", flush=True)
        finished = coordinator.wait(timeout=args.max_runtime)
    finally:
        coordinator.stop()
        if http is not None:
            http.close()
    counts = coordinator.ledger.counts()
    if not finished:
        raise SystemExit(
            f"error: coordinator stopped with {counts.total - counts.done} "
            f"of {counts.total} points incomplete (run "
            f"{coordinator.run.run_id!r} stays resumable)")
    metrics = coordinator.metrics_snapshot()
    return (f"run {coordinator.run.run_id}: complete "
            f"({counts.done}/{counts.total} points; "
            f"{metrics['workers']['seen']} workers, "
            f"{metrics['table_service']['dp_solves']} DP solves, "
            f"{metrics['shards']['bytes_streamed']} shard bytes streamed)")


def _cmd_worker(args) -> str:
    from .distributed import WorkerClient
    from .distributed.protocol import resolve_bind

    host, port = resolve_bind(args.address)
    spec = None
    if args.spec is not None:
        from .specs import load_spec

        spec = load_spec(args.spec)
    stats = WorkerClient(host, port, spec=spec, worker_id=args.worker_id,
                         jobs=args.jobs, cache_dir=args.cache_dir,
                         connect_retry_for=args.retry_for).run()
    return (f"worker {stats.worker_id}: "
            f"{stats.points_completed} points completed "
            f"({stats.points_duplicate} duplicates, "
            f"{stats.tables_fetched} tables fetched, "
            f"{stats.shard_bytes_sent} shard bytes sent)")


def _parse_where(pairs: Optional[List[str]]) -> Optional[dict]:
    """``--where COL=VALUE`` flags into a ``frame(where=...)`` dict.

    Values parse as JSON when possible (so ``-p 3`` style numerics compare
    as numbers) and fall back to plain strings; a repeated column becomes
    a membership list.
    """
    import json

    if not pairs:
        return None
    where: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"error: --where expects COL=VALUE, got {pair!r}")
        name, _, raw = pair.partition("=")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        if name in where:
            previous = where[name]
            where[name] = (previous if isinstance(previous, list)
                           else [previous]) + [value]
        else:
            where[name] = value
    return where


def _catalog_record_row(record) -> dict:
    """One ``catalog list`` table row per indexed run."""
    spec = record.spec
    return {
        "run_id": record.run_id,
        "tenant": record.tenant or "-",
        "status": record.status,
        "points": f"{record.completed}/{record.num_points}",
        "kind": spec.get("kind", "?"),
        "name": spec.get("name", "?"),
        "schedulers": len(spec.get("schedulers", [])),
        "columns": len(record.column_schema),
        "spec_digest": record.spec_digest[:12],
    }


def _cmd_catalog(args):
    from .catalog import Catalog, CatalogError, export_frame
    from .runstore import DEFAULT_RUNS_DIR

    roots = args.runs_dirs or [DEFAULT_RUNS_DIR]
    catalog = Catalog(roots)
    try:
        if args.catalog_command == "index":
            stats = catalog.refresh(full=args.full)
            return (f"indexed {stats['indexed']} run(s), "
                    f"{stats['unchanged']} unchanged, "
                    f"{stats['removed']} removed, "
                    f"{stats['failed']} unreadable "
                    f"({stats['total']} total) -> {catalog.index_path}")
        if not args.no_refresh:
            catalog.refresh()
        if args.catalog_command == "diff":
            return catalog.diff(args.run_a, args.run_b,
                                tenant_a=args.tenant_a,
                                tenant_b=args.tenant_b)
        filters = {key: getattr(args, key)
                   for key in ("name", "kind", "family", "scheduler",
                               "adversary", "p", "c", "u", "status",
                               "tenant", "since")
                   if getattr(args, key) is not None}
        if args.catalog_command == "list":
            handles = catalog.find(**filters)
            if not handles:
                return (f"no indexed runs match under {', '.join(roots)} "
                        "(run `repro catalog index` after adding runs)")
            return [_catalog_record_row(h.record) for h in handles]
        frame = catalog.frame(args.columns, where=_parse_where(args.where),
                              source=getattr(args, "source", "auto"),
                              **filters)
        if args.catalog_command == "query":
            return frame
        fmt = export_frame(frame, args.output, format=args.format)
        return (f"wrote {len(frame)} row(s) x {len(frame.data)} column(s) "
                f"to {args.output} ({fmt})")
    except CatalogError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_cancel(args) -> str:
    from .service.journal import JournalError

    try:
        entry = _open_journal(args.runs_dir).cancel(args.entry)
    except JournalError as exc:
        raise SystemExit(f"error: {exc}")
    return f"cancelled {entry.entry_id} (spec={entry.spec_name or '?'})"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "nonadaptive": _cmd_nonadaptive,
        "adaptive": _cmd_adaptive,
        "gap": _cmd_gap,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "run": _cmd_run,
        "resume": _cmd_resume,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "cancel": _cmd_cancel,
        "catalog": _cmd_catalog,
        "coordinator": _cmd_coordinator,
        "worker": _cmd_worker,
    }
    result = handlers[args.command](args)
    try:
        if isinstance(result, str):  # pre-rendered output (markdown reports)
            print(result)
            return 0
        print(render_table(result, title=f"cycle-stealing {args.command}"))
        if args.csv:
            write_csv(args.csv, result)
            print(f"\nwrote {len(result)} rows to {args.csv}")
    except BrokenPipeError:
        # Downstream consumer (head, grep -q, ...) closed stdout early:
        # the conventional CLI response is a quiet exit, not a traceback.
        # Detach stdout so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
