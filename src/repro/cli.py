"""Command-line interface: ``cycle-stealing <command>`` (or ``python -m repro``).

Sub-commands
------------
``table1``     Instantiate the paper's Table 1 for a guideline schedule.
``table2``     Reproduce Table 2 (the p = 1 closed forms vs. measurements).
``nonadaptive``Sweep the Section 3.1 non-adaptive guarantee.
``adaptive``   Sweep the Theorem 5.1 adaptive guarantee.
``gap``        Optimality gaps of every scheduler against the exact DP optimum.
``simulate``   Run a canned NOW scenario through the discrete-event simulator.

Each command prints an aligned ASCII table; ``--csv PATH`` writes the same
rows to a CSV file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    adaptive_guarantee_sweep,
    nonadaptive_guarantee_sweep,
    scheduler_comparison_sweep,
    table1_rows,
    table2_rows,
)
from .core.params import CycleStealingParams
from .reporting import render_table, write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="cycle-stealing",
        description="Guaranteed-output cycle-stealing guidelines (Rosenberg, IPPS 1999)")
    parser.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="consequences of the adversary's options")
    t1.add_argument("--lifespan", "-U", type=float, default=100.0)
    t1.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t1.add_argument("--interrupts", "-p", type=int, default=2)

    t2 = sub.add_parser("table2", help="p = 1 parameters: optimal vs guideline")
    t2.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t2.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0, 100_000.0])

    na = sub.add_parser("nonadaptive", help="Section 3.1 guarantee sweep")
    na.add_argument("--setup-cost", "-c", type=float, default=1.0)
    na.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    na.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 4, 8])

    ad = sub.add_parser("adaptive", help="Theorem 5.1 guarantee sweep")
    ad.add_argument("--setup-cost", "-c", type=float, default=1.0)
    ad.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    ad.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 3, 4])

    gp = sub.add_parser("gap", help="optimality gap of every scheduler vs the DP optimum")
    gp.add_argument("--lifespan", "-U", type=int, default=2_000)
    gp.add_argument("--setup-cost", "-c", type=int, default=1)
    gp.add_argument("--interrupts", "-p", type=int, default=2)

    sim = sub.add_parser("simulate", help="run a canned NOW scenario")
    sim.add_argument("--scenario", choices=["laptop", "desktops", "lab"], default="laptop")
    sim.add_argument("--scheduler", choices=["equalizing", "rosenberg", "fixed", "single"],
                     default="equalizing")

    return parser


def _cmd_table1(args) -> List[dict]:
    from .schedules import EqualizingAdaptiveScheduler

    params = CycleStealingParams(lifespan=args.lifespan, setup_cost=args.setup_cost,
                                 max_interrupts=args.interrupts)
    schedule = EqualizingAdaptiveScheduler().episode_schedule(
        params.lifespan, params.max_interrupts, params.setup_cost)
    return table1_rows(schedule, params)


def _cmd_table2(args) -> List[dict]:
    return table2_rows(args.lifespans, args.setup_cost)


def _cmd_nonadaptive(args) -> List[dict]:
    return nonadaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_adaptive(args) -> List[dict]:
    return adaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_gap(args) -> List[dict]:
    from .dp import solve
    from .schedules import (
        DPOptimalScheduler,
        EqualizingAdaptiveScheduler,
        EqualSplitScheduler,
        FixedPeriodScheduler,
        RosenbergAdaptiveScheduler,
        RosenbergNonAdaptiveScheduler,
        SinglePeriodScheduler,
    )

    params = CycleStealingParams(lifespan=float(args.lifespan),
                                 setup_cost=float(args.setup_cost),
                                 max_interrupts=args.interrupts)
    table = solve(int(args.lifespan), int(args.setup_cost), args.interrupts)
    schedulers = {
        "dp-optimal": DPOptimalScheduler(table),
        "equalizing-adaptive": EqualizingAdaptiveScheduler(),
        "rosenberg-adaptive": RosenbergAdaptiveScheduler(),
        "rosenberg-nonadaptive": RosenbergNonAdaptiveScheduler(),
        "fixed-period": FixedPeriodScheduler(period_length=max(10.0, args.lifespan / 50)),
        "equal-split": EqualSplitScheduler(),
        "single-period": SinglePeriodScheduler(),
    }
    return scheduler_comparison_sweep(schedulers, [params], dp_table=table)


def _cmd_simulate(args) -> List[dict]:
    from .schedules import (
        EqualizingAdaptiveScheduler,
        FixedPeriodScheduler,
        RosenbergAdaptiveScheduler,
        SinglePeriodScheduler,
    )
    from .simulator import CycleStealingSimulation
    from .workloads import laptop_evening, overnight_desktops, shared_lab

    scenario = {"laptop": laptop_evening, "desktops": overnight_desktops,
                "lab": shared_lab}[args.scenario]()
    scheduler = {
        "equalizing": EqualizingAdaptiveScheduler(),
        "rosenberg": RosenbergAdaptiveScheduler(),
        "fixed": FixedPeriodScheduler(period_length=scenario.params.lifespan / 20),
        "single": SinglePeriodScheduler(),
    }[args.scheduler]
    report = CycleStealingSimulation(scenario.workstations, scheduler,
                                     task_bag=scenario.task_bag).run()
    return report.rows()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "nonadaptive": _cmd_nonadaptive,
        "adaptive": _cmd_adaptive,
        "gap": _cmd_gap,
        "simulate": _cmd_simulate,
    }
    rows = handlers[args.command](args)
    print(render_table(rows, title=f"cycle-stealing {args.command}"))
    if args.csv:
        write_csv(args.csv, rows)
        print(f"\nwrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
