"""Command-line interface: ``cycle-stealing <command>`` (or ``python -m repro``).

Sub-commands
------------
``table1``     Instantiate the paper's Table 1 for a guideline schedule.
``table2``     Reproduce Table 2 (the p = 1 closed forms vs. measurements).
``nonadaptive``Sweep the Section 3.1 non-adaptive guarantee.
``adaptive``   Sweep the Theorem 5.1 adaptive guarantee.
``gap``        Optimality gaps of every scheduler against the exact DP optimum.
``simulate``   Run a canned NOW scenario through the discrete-event simulator.
``sweep``      Parallel experiment sweep (guaranteed work, DP optima and
               Monte-Carlo replication) over a lifespan × cost × interrupts ×
               scheduler × adversary grid, with ``--jobs``, ``--replications``,
               ``--seed`` and a shared DP-table ``--cache-dir``.

Each command prints an aligned ASCII table; ``--csv PATH`` writes the same
rows to a CSV file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    adaptive_guarantee_sweep,
    nonadaptive_guarantee_sweep,
    scheduler_comparison_sweep,
    table1_rows,
    table2_rows,
)
from .core.params import CycleStealingParams
from .reporting import render_table, write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="cycle-stealing",
        description="Guaranteed-output cycle-stealing guidelines (Rosenberg, IPPS 1999)")
    parser.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="consequences of the adversary's options")
    t1.add_argument("--lifespan", "-U", type=float, default=100.0)
    t1.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t1.add_argument("--interrupts", "-p", type=int, default=2)

    t2 = sub.add_parser("table2", help="p = 1 parameters: optimal vs guideline")
    t2.add_argument("--setup-cost", "-c", type=float, default=1.0)
    t2.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0, 100_000.0])

    na = sub.add_parser("nonadaptive", help="Section 3.1 guarantee sweep")
    na.add_argument("--setup-cost", "-c", type=float, default=1.0)
    na.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    na.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 4, 8])

    ad = sub.add_parser("adaptive", help="Theorem 5.1 guarantee sweep")
    ad.add_argument("--setup-cost", "-c", type=float, default=1.0)
    ad.add_argument("--lifespans", type=float, nargs="+",
                    default=[100.0, 1_000.0, 10_000.0])
    ad.add_argument("--interrupts", type=int, nargs="+", default=[1, 2, 3, 4])

    gp = sub.add_parser("gap", help="optimality gap of every scheduler vs the DP optimum")
    gp.add_argument("--lifespan", "-U", type=int, default=2_000)
    gp.add_argument("--setup-cost", "-c", type=int, default=1)
    gp.add_argument("--interrupts", "-p", type=int, default=2)
    gp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the comparison sweep")
    gp.add_argument("--cache-dir", default=None,
                    help="on-disk DP-table cache directory (solve once, reuse)")

    from .workloads.scenarios import SCENARIO_FAMILIES

    sim = sub.add_parser("simulate", help="run a canned NOW scenario")
    sim.add_argument("--scenario", choices=sorted(SCENARIO_FAMILIES),
                     default="laptop")
    sim.add_argument("--scheduler", choices=["equalizing", "rosenberg", "fixed", "single"],
                     default="equalizing")
    sim.add_argument("--seed", type=int, default=None,
                     help="scenario seed (default: the family's canonical seed)")
    sim.add_argument("--backend", choices=["event", "batch"], default="event",
                     help="simulation backend (batch = vectorized, same results)")

    from .experiments.grid import adversary_names, scheduler_names

    sw = sub.add_parser(
        "sweep", help="parallel experiment sweep with Monte-Carlo replication")
    sw.add_argument("--lifespans", type=float, nargs="+",
                    default=[200.0, 400.0, 800.0])
    sw.add_argument("--setup-costs", type=float, nargs="+", default=[1.0])
    sw.add_argument("--interrupts", type=int, nargs="+", default=[1, 2])
    sw.add_argument("--schedulers", nargs="+", choices=scheduler_names(),
                    default=["equalizing-adaptive", "rosenberg-nonadaptive"])
    sw.add_argument("--adversaries", nargs="+", choices=adversary_names(),
                    default=[],
                    help="stochastic owners to sample (enables the Monte-Carlo columns)")
    sw.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes (0 = one per CPU)")
    sw.add_argument("--replications", "-n", type=int, default=0,
                    help="Monte-Carlo replications per point (0 = analytic only)")
    sw.add_argument("--seed", type=int, default=0,
                    help="base seed for deterministic per-point trace sampling")
    sw.add_argument("--cache-dir", default=None,
                    help="on-disk DP-table cache directory shared by all workers")
    sw.add_argument("--optimal", action="store_true",
                    help="also compute the exact DP optimum per point (integer grids)")
    sw.add_argument("--backend", choices=["event", "batch"], default="event",
                    help="Monte-Carlo replication backend (batch = vectorized; "
                         "~10x faster on large --replications, same aggregates)")

    return parser


def _cmd_table1(args) -> List[dict]:
    from .schedules import EqualizingAdaptiveScheduler

    params = CycleStealingParams(lifespan=args.lifespan, setup_cost=args.setup_cost,
                                 max_interrupts=args.interrupts)
    schedule = EqualizingAdaptiveScheduler().episode_schedule(
        params.lifespan, params.max_interrupts, params.setup_cost)
    return table1_rows(schedule, params)


def _cmd_table2(args) -> List[dict]:
    return table2_rows(args.lifespans, args.setup_cost)


def _cmd_nonadaptive(args) -> List[dict]:
    return nonadaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_adaptive(args) -> List[dict]:
    return adaptive_guarantee_sweep(args.lifespans, args.setup_cost, args.interrupts)


def _cmd_gap(args) -> List[dict]:
    from .experiments.cache import DPTableCache
    from .schedules import (
        DPOptimalScheduler,
        EqualizingAdaptiveScheduler,
        EqualSplitScheduler,
        FixedPeriodScheduler,
        RosenbergAdaptiveScheduler,
        RosenbergNonAdaptiveScheduler,
        SinglePeriodScheduler,
    )

    params = CycleStealingParams(lifespan=float(args.lifespan),
                                 setup_cost=float(args.setup_cost),
                                 max_interrupts=args.interrupts)
    cache = DPTableCache(cache_dir=args.cache_dir)
    table = cache.solve(int(args.lifespan), int(args.setup_cost), args.interrupts)
    schedulers = {
        "dp-optimal": DPOptimalScheduler(table),
        "equalizing-adaptive": EqualizingAdaptiveScheduler(),
        "rosenberg-adaptive": RosenbergAdaptiveScheduler(),
        "rosenberg-nonadaptive": RosenbergNonAdaptiveScheduler(),
        "fixed-period": FixedPeriodScheduler(period_length=max(10.0, args.lifespan / 50)),
        "equal-split": EqualSplitScheduler(),
        "single-period": SinglePeriodScheduler(),
    }
    return scheduler_comparison_sweep(schedulers, [params], dp_table=table,
                                      jobs=args.jobs)


def _cmd_simulate(args) -> List[dict]:
    from .schedules import (
        EqualizingAdaptiveScheduler,
        FixedPeriodScheduler,
        RosenbergAdaptiveScheduler,
        SinglePeriodScheduler,
    )
    from .simulator import CycleStealingSimulation
    from .workloads.scenarios import SCENARIO_FAMILIES

    family = SCENARIO_FAMILIES[args.scenario]
    scenario = family() if args.seed is None else family(seed=args.seed)
    scheduler = {
        "equalizing": EqualizingAdaptiveScheduler(),
        "rosenberg": RosenbergAdaptiveScheduler(),
        "fixed": FixedPeriodScheduler(period_length=scenario.params.lifespan / 20),
        "single": SinglePeriodScheduler(),
    }[args.scheduler]
    if args.backend == "batch":
        from .simulator.batch import simulate_scenarios_batch

        (report,) = simulate_scenarios_batch([scenario], scheduler)
    else:
        report = CycleStealingSimulation(scenario.workstations, scheduler,
                                         task_bag=scenario.task_bag).run()
    return report.rows()


def _cmd_sweep(args) -> List[dict]:
    from .experiments import SweepGrid, run_sweep

    adversaries = tuple(args.adversaries)
    if args.replications > 0 and not adversaries:
        # Asking for replications implies a Monte-Carlo layer; silently
        # producing none would be a no-op, so default to a Poisson owner.
        adversaries = ("poisson-owner",)
        print("note: --replications given without --adversaries; "
              "defaulting to 'poisson-owner'", file=sys.stderr)

    grid = SweepGrid(lifespans=tuple(args.lifespans),
                     setup_costs=tuple(args.setup_costs),
                     interrupt_budgets=tuple(args.interrupts),
                     schedulers=tuple(args.schedulers),
                     adversaries=adversaries)
    return run_sweep(grid, jobs=args.jobs, replications=args.replications,
                     seed=args.seed, cache_dir=args.cache_dir,
                     include_optimal=args.optimal, backend=args.backend)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "nonadaptive": _cmd_nonadaptive,
        "adaptive": _cmd_adaptive,
        "gap": _cmd_gap,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
    }
    rows = handlers[args.command](args)
    print(render_table(rows, title=f"cycle-stealing {args.command}"))
    if args.csv:
        write_csv(args.csv, rows)
        print(f"\nwrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
