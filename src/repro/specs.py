"""Declarative experiment specs: TOML/JSON files that *name* an experiment.

A spec is a small, self-describing file that pins down everything needed to
reproduce an experiment — which scenario family or parameter grid, which
schedulers and adversaries (by :mod:`repro.registry` name), how many
Monte-Carlo replications, which backend, and the base seed.  Committed
specs under ``specs/`` *are* the experiments of this repository: running
one (``python -m repro run specs/laptop.toml``) streams results into the
resumable run store of :mod:`repro.runstore`, and the rendered report of
:mod:`repro.reporting.report` is a pure function of the stored rows.

Two spec kinds exist, mirroring the two experiment styles of the library:

``kind = "sweep"``
    The analytic/Monte-Carlo grid of ``repro sweep``: lifespans ``U`` ×
    set-up costs ``c`` × interrupt budgets ``p`` × schedulers ×
    adversaries, each point evaluated for exact guaranteed work,
    optionally the DP optimum ``W^(p)[U]``, and optionally ``N``
    replications against the named stochastic owners.
``kind = "scenario"``
    Replication of one scenario family through the NOW simulator: ``N``
    independently seeded instances of the family per scheduler, with the
    same instances shared across schedulers (paired comparison).

Units and notation: lifespans and set-up costs are in the paper's single
time unit (``U`` — written ``L`` on the integer DP grid — and ``c``);
interrupt budgets are counts (the paper's ``p``); seeds and replication
counts are dimensionless integers.

File format
-----------
TOML (parsed with :mod:`tomllib` on Python ≥ 3.11, with a built-in
fallback parser for the subset specs use on older interpreters) or JSON
with the same structure::

    [experiment]
    name = "laptop-typical-day"     # required
    kind = "scenario"               # "sweep" | "scenario"
    seed = 0                        # base seed (default 0)
    replications = 200              # Monte-Carlo layer (required for scenario)
    backend = "batch"               # "event" | "batch" (default "event")
    aggregation = "auto"            # "exact" | "streaming" | "auto" (default)
    chunk_size = 4096               # streaming chunk size (optional)
    variance = "none"               # "none" | "antithetic" | "stratified"

    [scenario]                      # when kind = "scenario"
    family = "laptop"               # a repro.registry.SCENARIO_FAMILIES name
    schedulers = ["equalizing-adaptive", "fixed-period"]

    [sweep]                         # when kind = "sweep"
    lifespans = [200.0, 400.0]
    setup_costs = [1.0]
    interrupts = [1, 2]
    schedulers = ["equalizing-adaptive", "rosenberg-nonadaptive"]
    adversaries = ["poisson-owner"]
    optimal = true                  # also compute the exact DP optimum

Every name is validated against the registries at parse time, so a typo
fails immediately with the list of known names — not an hour into a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .core.exceptions import CycleStealingError
from .registry import ADVERSARIES, SCENARIO_FAMILIES, SCHEDULERS

__all__ = [
    "SpecError",
    "ExperimentSpec",
    "ScenarioPoint",
    "SubmissionMeta",
    "load_spec",
    "load_spec_data",
    "decode_spec_data",
    "parse_spec",
    "parse_submission",
    "spec_to_dict",
    "spec_summary",
    "canonical_spec_json",
    "spec_digest",
    "default_run_id",
    "expand_payloads",
    "count_payloads",
    "payload_config",
    "expand_payload_at",
    "payload_digest",
    "payload_digests",
    "evaluate_payload",
    "KINDS",
]

#: Recognised spec kinds.
KINDS = ("sweep", "scenario")


class SpecError(CycleStealingError, ValueError):
    """A malformed or invalid experiment spec.

    The message always says *where* (file and section/key when known) and
    *what was expected* — specs are user-facing configuration, and their
    errors must be actionable without reading this module's source.
    """


# ----------------------------------------------------------------------
# The spec model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A fully validated experiment description (plain, picklable data)."""

    #: Experiment name (used in run ids and report headings).
    name: str
    #: ``"sweep"`` or ``"scenario"``.
    kind: str
    #: Base seed for the deterministic per-point/replication seeding.
    seed: int = 0
    #: Monte-Carlo replications (per point for sweeps, per scheduler for
    #: scenario specs; ``0`` disables the layer for sweeps).
    replications: int = 0
    #: Replication backend, ``"event"`` or ``"batch"``.
    backend: str = "event"
    #: Monte-Carlo aggregation mode: ``"exact"``, ``"streaming"`` or
    #: ``"auto"`` (exact below the streaming threshold, streaming above).
    aggregation: str = "auto"
    #: Streaming chunk size (replications per chunk); ``None`` auto-sizes
    #: from the replication count.  Chunking never changes results, so it
    #: is excluded from point digests (a resume may change it freely).
    chunk_size: Optional[int] = None
    #: Variance-reduction mode: ``"none"``, ``"antithetic"`` or
    #: ``"stratified"``.  Non-default modes add CI columns (and antithetic
    #: changes the draws), so they are part of the point digests.
    variance: str = "none"

    # --- kind = "sweep" ------------------------------------------------
    lifespans: Tuple[float, ...] = ()
    setup_costs: Tuple[float, ...] = (1.0,)
    interrupts: Tuple[int, ...] = (1,)
    schedulers: Tuple[str, ...] = ()
    adversaries: Tuple[str, ...] = ()
    #: Also compute the exact DP optimum per integer-valued point.
    optimal: bool = False

    # --- kind = "scenario" ---------------------------------------------
    family: Optional[str] = None
    #: Extra keyword arguments forwarded to the scenario generator.
    family_params: Mapping[str, Any] = field(default_factory=dict)

    def num_points(self) -> int:
        """How many run-store points this spec expands to (O(1), no expansion)."""
        return count_payloads(self)

    def to_grid(self):
        """The :class:`~repro.experiments.grid.SweepGrid` of a sweep spec."""
        from .experiments.grid import SweepGrid

        if self.kind != "sweep":
            raise SpecError(f"spec {self.name!r} has kind {self.kind!r}, "
                            "only sweep specs define a grid")
        return SweepGrid(lifespans=self.lifespans,
                         setup_costs=self.setup_costs,
                         interrupt_budgets=self.interrupts,
                         schedulers=self.schedulers,
                         adversaries=self.adversaries)


#: Tenant names become run-store subdirectories under the service, so the
#: same filesystem-safe alphabet is enforced here and in the queue journal.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class SubmissionMeta:
    """Service-submission metadata carried by an optional ``[submission]``
    table in a spec file.

    Deliberately *not* part of :class:`ExperimentSpec`: the tenant and
    priority say where and when a run executes, never what it computes, so
    they stay out of the canonical spec JSON, the default run id and the
    run-store manifest.  ``spec_to_dict`` never emits the table, keeping
    every pre-service run id byte-identical.
    """

    #: Run-store namespace; runs land under ``<runs-dir>/<tenant>/``.
    tenant: str = "default"
    #: Scheduling priority (higher first; FIFO within a band).
    priority: int = 0


_SUBMISSION_KEYS = {"tenant", "priority"}


def parse_submission(data: Mapping, *, source: Optional[str] = None
                     ) -> SubmissionMeta:
    """Validate a spec file's optional ``[submission]`` table."""
    if not isinstance(data, Mapping):
        raise SpecError(f"spec root must be a table/object, got "
                        f"{type(data).__name__}{_where(source)}")
    table = data.get("submission")
    if table is None:
        return SubmissionMeta()
    if not isinstance(table, Mapping):
        raise SpecError(
            f"[submission] must be a table, got {table!r}{_where(source)}")
    _reject_unknown_keys(table, _SUBMISSION_KEYS, "submission", source)
    tenant = table.get("tenant", "default")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise SpecError(
            f"submission.tenant must match [A-Za-z0-9][A-Za-z0-9._-]* "
            f"(max 64 chars), got {tenant!r}{_where(source)}")
    priority = table.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise SpecError(
            f"submission.priority must be an integer, got "
            f"{priority!r}{_where(source)}")
    return SubmissionMeta(tenant=tenant, priority=priority)


@dataclass(frozen=True)
class ScenarioPoint:
    """One (scenario family × scheduler) point of a scenario spec.

    Plain picklable data, mirroring
    :class:`~repro.experiments.grid.SweepPoint`: the family and scheduler
    travel by registry name and are instantiated inside the worker.
    """

    index: int
    family: str
    scheduler: str
    replications: int
    seed: int
    backend: str = "event"
    aggregation: str = "auto"
    chunk_size: Optional[int] = None
    variance: str = "none"
    family_params: Tuple[Tuple[str, Any], ...] = ()
    #: Return per-stage timing columns with the row (``--profile``).
    profile: bool = False

    def key_columns(self) -> Dict[str, object]:
        """The identifying columns shared by this point's result row."""
        return {"family": self.family, "scheduler": self.scheduler}


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
_EXPERIMENT_KEYS = {"name", "kind", "seed", "replications", "backend",
                    "aggregation", "chunk_size", "variance"}
_SWEEP_KEYS = {"lifespans", "setup_costs", "interrupts", "schedulers",
               "adversaries", "optimal"}
_SCENARIO_KEYS = {"family", "schedulers", "params"}


def _where(source: Optional[str]) -> str:
    return f" (in {source})" if source else ""


def _require_table(data: Mapping, key: str, source: Optional[str]) -> Mapping:
    table = data.get(key)
    if not isinstance(table, Mapping):
        raise SpecError(f"spec is missing the [{key}] table{_where(source)}")
    return table


def _reject_unknown_keys(table: Mapping, allowed: set, section: str,
                         source: Optional[str]) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise SpecError(
            f"unknown key(s) {unknown!r} in [{section}]{_where(source)}; "
            f"allowed: {sorted(allowed)}")


def _as_int(value, key: str, source: Optional[str], *, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key} must be an integer, got {value!r}{_where(source)}")
    if value < minimum:
        raise SpecError(f"{key} must be >= {minimum}, got {value!r}{_where(source)}")
    return int(value)


def _as_number_list(value, key: str, source: Optional[str],
                    *, integral: bool = False) -> Tuple:
    if not isinstance(value, (list, tuple)) or not value:
        raise SpecError(
            f"{key} must be a non-empty array of numbers, got {value!r}{_where(source)}")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise SpecError(
                f"{key} entries must be numbers, got {item!r}{_where(source)}")
        if integral:
            if not float(item).is_integer():
                raise SpecError(
                    f"{key} entries must be integers, got {item!r}{_where(source)}")
            out.append(int(item))
        else:
            out.append(float(item))
    return tuple(out)


def _as_str_list(value, key: str, source: Optional[str]) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not value \
            or not all(isinstance(v, str) for v in value):
        raise SpecError(
            f"{key} must be a non-empty array of strings, got {value!r}{_where(source)}")
    return tuple(value)


def parse_spec(data: Mapping, *, source: Optional[str] = None) -> ExperimentSpec:
    """Validate a nested spec dictionary into an :class:`ExperimentSpec`.

    ``source`` (a file path, when known) is woven into every error message.
    Registry names — schedulers, adversaries, the scenario family — are
    checked against :mod:`repro.registry` here, at parse time.
    """
    if not isinstance(data, Mapping):
        raise SpecError(f"spec root must be a table/object, got "
                        f"{type(data).__name__}{_where(source)}")
    allowed_tables = {"experiment", "sweep", "scenario", "submission"}
    _reject_unknown_keys(data, allowed_tables, "spec root", source)
    # [submission] carries service routing metadata (tenant/priority).  It
    # is validated here so a typo fails at parse time, but it is NOT part
    # of the ExperimentSpec: spec_to_dict never emits it, so run ids and
    # manifests are unaffected by how a spec was submitted.
    parse_submission(data, source=source)

    exp = _require_table(data, "experiment", source)
    _reject_unknown_keys(exp, _EXPERIMENT_KEYS, "experiment", source)
    name = exp.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError(
            f"experiment.name must be a non-empty string, got {name!r}{_where(source)}")
    kind = exp.get("kind")
    if kind not in KINDS:
        raise SpecError(
            f"experiment.kind must be one of {list(KINDS)}, got {kind!r}{_where(source)}")
    seed = _as_int(exp.get("seed", 0), "experiment.seed", source)
    replications = _as_int(exp.get("replications", 0),
                           "experiment.replications", source)
    backend = exp.get("backend", "event")
    from .experiments.montecarlo import AGGREGATIONS, BACKENDS
    if backend not in BACKENDS:
        raise SpecError(
            f"experiment.backend must be one of {list(BACKENDS)}, "
            f"got {backend!r}{_where(source)}")
    aggregation = exp.get("aggregation", "auto")
    if aggregation not in AGGREGATIONS:
        raise SpecError(
            f"experiment.aggregation must be one of {list(AGGREGATIONS)}, "
            f"got {aggregation!r}{_where(source)}")
    chunk_size: Optional[int] = None
    if exp.get("chunk_size") is not None:
        chunk_size = _as_int(exp.get("chunk_size"), "experiment.chunk_size",
                             source, minimum=1)
    variance = exp.get("variance", "none")
    from .experiments.montecarlo import VARIANCE_MODES
    if variance not in VARIANCE_MODES:
        raise SpecError(
            f"experiment.variance must be one of {list(VARIANCE_MODES)}, "
            f"got {variance!r}{_where(source)}")
    if variance == "antithetic" and replications % 2 != 0:
        raise SpecError(
            "experiment.variance = 'antithetic' plays replications in "
            "pairs and needs an even experiment.replications, got "
            f"{replications}{_where(source)}")

    if kind == "sweep":
        if "scenario" in data:
            raise SpecError(
                f"a sweep spec must not contain a [scenario] table{_where(source)}")
        sweep = _require_table(data, "sweep", source)
        _reject_unknown_keys(sweep, _SWEEP_KEYS, "sweep", source)
        lifespans = _as_number_list(sweep.get("lifespans"), "sweep.lifespans", source)
        setup_costs = _as_number_list(sweep.get("setup_costs", [1.0]),
                                      "sweep.setup_costs", source)
        interrupts = _as_number_list(sweep.get("interrupts", [1]),
                                     "sweep.interrupts", source, integral=True)
        schedulers = _as_str_list(sweep.get("schedulers"), "sweep.schedulers", source)
        raw_adversaries = sweep.get("adversaries", [])
        if raw_adversaries in ([], (), None):
            adversaries: Tuple[str, ...] = ()
        else:
            adversaries = _as_str_list(raw_adversaries, "sweep.adversaries", source)
        optimal = sweep.get("optimal", False)
        if not isinstance(optimal, bool):
            raise SpecError(
                f"sweep.optimal must be a boolean, got {optimal!r}{_where(source)}")
        try:
            SCHEDULERS.validate(schedulers, context="sweep.schedulers")
            ADVERSARIES.validate(adversaries, context="sweep.adversaries")
        except CycleStealingError as exc:
            raise SpecError(f"{exc}{_where(source)}") from None
        if replications > 0 and not adversaries:
            raise SpecError(
                "sweep.adversaries must name at least one adversary when "
                f"experiment.replications > 0{_where(source)}")
        return ExperimentSpec(name=name, kind=kind, seed=seed,
                              replications=replications, backend=backend,
                              aggregation=aggregation, chunk_size=chunk_size,
                              variance=variance,
                              lifespans=lifespans, setup_costs=setup_costs,
                              interrupts=interrupts, schedulers=schedulers,
                              adversaries=adversaries, optimal=optimal)

    # kind == "scenario"
    if "sweep" in data:
        raise SpecError(
            f"a scenario spec must not contain a [sweep] table{_where(source)}")
    scen = _require_table(data, "scenario", source)
    _reject_unknown_keys(scen, _SCENARIO_KEYS, "scenario", source)
    family = scen.get("family")
    if not isinstance(family, str) or not family:
        raise SpecError(
            f"scenario.family must be a registry name, got {family!r}{_where(source)}")
    schedulers = _as_str_list(scen.get("schedulers", ["equalizing-adaptive"]),
                              "scenario.schedulers", source)
    family_params = scen.get("params", {})
    if not isinstance(family_params, Mapping):
        raise SpecError(
            f"[scenario.params] must be a table, got {family_params!r}{_where(source)}")
    try:
        SCENARIO_FAMILIES.validate([family], context="scenario.family")
        SCHEDULERS.validate(schedulers, context="scenario.schedulers")
    except CycleStealingError as exc:
        raise SpecError(f"{exc}{_where(source)}") from None
    _check_family_params(family, family_params, source)
    _check_simulator_capable(schedulers, source)
    if replications < 1:
        raise SpecError(
            "scenario specs need experiment.replications >= 1 "
            f"(got {replications}){_where(source)}")
    return ExperimentSpec(name=name, kind=kind, seed=seed,
                          replications=replications, backend=backend,
                          aggregation=aggregation, chunk_size=chunk_size,
                          variance=variance,
                          schedulers=schedulers, family=family,
                          family_params=dict(family_params))


def _check_family_params(family: str, family_params: Mapping[str, Any],
                         source: Optional[str]) -> None:
    """Probe the scenario generator with the spec's params at parse time.

    A typo'd keyword (``num_machine`` for ``num_machines``) or an
    out-of-range value would otherwise surface as a raw worker traceback
    after the run directory has already been created.  The probe also
    rejects ``seed`` — the Monte-Carlo layer owns seeding, deriving it
    per replication from the experiment's base seed.
    """
    if "seed" in family_params:
        raise SpecError(
            "[scenario.params] must not set 'seed'; seeding is derived per "
            f"replication from experiment.seed{_where(source)}")
    try:
        SCENARIO_FAMILIES.create(family, **dict(family_params))
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"[scenario.params] {dict(family_params)!r} are not valid for "
            f"the {family!r} generator: {exc}{_where(source)}") from exc


def _check_simulator_capable(schedulers: Tuple[str, ...],
                             source: Optional[str]) -> None:
    """Reject scenario schedulers the NOW simulator cannot drive.

    The simulator re-plans per episode, so it needs the adaptive protocol
    (``episode_schedule``); purely non-adaptive guidelines would only fail
    deep inside the first replication, so catch them at parse time with a
    probe instantiation on canonical parameters.
    """
    from .core.params import CycleStealingParams
    from .experiments.grid import make_scheduler

    probe = CycleStealingParams(lifespan=100.0, setup_cost=1.0,
                                max_interrupts=1)
    for name in schedulers:
        if not hasattr(make_scheduler(name, probe), "episode_schedule"):
            raise SpecError(
                f"scheduler {name!r} implements only the non-adaptive "
                "protocol and cannot drive the NOW simulator; scenario "
                "specs need adaptive schedulers such as "
                f"'equalizing-adaptive'{_where(source)}")


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """The nested (file-shaped) dictionary form of a spec.

    ``parse_spec(spec_to_dict(s)) == s`` for every valid spec — the
    round-trip the manifest of a stored run relies on.
    """
    out: Dict[str, Any] = {"experiment": {
        "name": spec.name, "kind": spec.kind, "seed": spec.seed,
        "replications": spec.replications, "backend": spec.backend,
    }}
    # Emitted only when non-default (like sweep.adversaries below): the
    # canonical JSON — and therefore every default run id — of specs
    # predating these keys stays byte-identical.
    if spec.aggregation != "auto":
        out["experiment"]["aggregation"] = spec.aggregation
    if spec.chunk_size is not None:
        out["experiment"]["chunk_size"] = spec.chunk_size
    if spec.variance != "none":
        out["experiment"]["variance"] = spec.variance
    if spec.kind == "sweep":
        sweep: Dict[str, Any] = {
            "lifespans": list(spec.lifespans),
            "setup_costs": list(spec.setup_costs),
            "interrupts": list(spec.interrupts),
            "schedulers": list(spec.schedulers),
            "optimal": spec.optimal,
        }
        if spec.adversaries:
            sweep["adversaries"] = list(spec.adversaries)
        out["sweep"] = sweep
    else:
        scenario: Dict[str, Any] = {
            "family": spec.family,
            "schedulers": list(spec.schedulers),
        }
        if spec.family_params:
            scenario["params"] = dict(spec.family_params)
        out["scenario"] = scenario
    return out


def spec_summary(spec: ExperimentSpec) -> Dict[str, Any]:
    """Flat, JSON-safe metadata summary of a spec (the catalog index form).

    A *projection* of the spec for indexing and filtering — every value is
    a JSON scalar or a list of scalars, keys are stable, and kind-specific
    keys (``family`` for scenarios, ``lifespans``/``interrupts``/… for
    sweeps) appear only when the kind defines them.  This is what
    :mod:`repro.catalog` stores per run and what ``Catalog.find`` filters
    against; the *complete* spec still lives in the run manifest and is
    recovered with :func:`parse_spec` when needed.
    """
    out: Dict[str, Any] = {
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "replications": spec.replications,
        "backend": spec.backend,
        "aggregation": spec.aggregation,
        "variance": spec.variance,
        "schedulers": list(spec.schedulers),
    }
    if spec.kind == "sweep":
        out["lifespans"] = [float(u) for u in spec.lifespans]
        out["setup_costs"] = [float(c) for c in spec.setup_costs]
        out["interrupts"] = [int(p) for p in spec.interrupts]
        out["adversaries"] = list(spec.adversaries)
        out["optimal"] = bool(spec.optimal)
    else:
        out["family"] = spec.family
        out["family_params"] = dict(spec.family_params)
    return out


def canonical_spec_json(spec: ExperimentSpec) -> str:
    """Canonical (sorted-keys, no-whitespace) JSON of a spec."""
    return json.dumps(spec_to_dict(spec), sort_keys=True,
                      separators=(",", ":"))


def spec_digest(spec: ExperimentSpec) -> str:
    """Full sha256 hex digest of a spec's canonical JSON.

    The handshake token of the distributed executor: a worker offering a
    digest that differs from the coordinator's spec is computing a
    *different experiment* and must be refused before it leases anything.
    """
    return hashlib.sha256(canonical_spec_json(spec).encode()).hexdigest()


def default_run_id(spec: ExperimentSpec) -> str:
    """Deterministic run id: spec name plus a digest of its contents.

    Re-running an identical spec maps to the same run directory (so a
    finished run is recognised and an interrupted one resumed), while any
    change to the spec yields a fresh id.
    """
    return f"{spec.name}-{spec_digest(spec)[:10]}"


# ----------------------------------------------------------------------
# File loading (TOML / JSON)
# ----------------------------------------------------------------------
def load_spec(path: Union[str, os.PathLike]) -> ExperimentSpec:
    """Load and validate a spec file (``.toml`` or ``.json``)."""
    path = os.fspath(path)
    return parse_spec(load_spec_data(path), source=path)


def load_spec_data(path: Union[str, os.PathLike]) -> Mapping:
    """Read a spec file into its raw nested dictionary, format-checked only.

    This is the submission half of :func:`load_spec`: the run-service
    journals the *raw* dictionary (so what executes is exactly what was
    submitted) and defers semantic validation to the service's own
    validate step, where a bad spec becomes a dead-letter entry with a
    captured error instead of a client-side crash.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc
    lower = path.lower()
    if lower.endswith(".json"):
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"invalid JSON in spec file {path!r}: {exc}") from exc
    elif lower.endswith(".toml"):
        data = _load_toml(raw, path)
    else:
        raise SpecError(
            f"spec files must end in .toml or .json, got {path!r}")
    if not isinstance(data, Mapping):
        raise SpecError(
            f"spec root must be a table/object, got "
            f"{type(data).__name__} (in {path})")
    return data


def decode_spec_data(text: str, *, format: Optional[str] = None,
                     source: Optional[str] = None) -> Mapping:
    """Decode spec text (e.g. from stdin) into its raw dictionary.

    ``format`` is ``"toml"``, ``"json"`` or ``None`` to sniff: text whose
    first non-whitespace character is ``{`` is JSON, anything else TOML.
    """
    where = source or "<stdin>"
    if format is None:
        stripped = text.lstrip()
        format = "json" if stripped.startswith("{") else "toml"
    if format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON spec from {where}: {exc}") from exc
    elif format == "toml":
        data = _load_toml(text.encode("utf-8"), where)
    else:
        raise SpecError(
            f"unknown spec format {format!r}; expected 'toml' or 'json'")
    if not isinstance(data, Mapping):
        raise SpecError(
            f"spec root must be a table/object, got "
            f"{type(data).__name__} (in {where})")
    return data


def _load_toml(raw: bytes, path: str) -> Mapping:
    try:
        import tomllib
    except ImportError:  # Python < 3.11: the bundled subset parser
        return _parse_mini_toml(raw.decode("utf-8"), path)
    try:
        return tomllib.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
        raise SpecError(f"invalid TOML in spec file {path!r}: {exc}") from exc


def _parse_mini_toml(text: str, path: str) -> Dict[str, Any]:
    """Parse the TOML subset spec files use, for interpreters without tomllib.

    Supported: ``#`` comments, ``[dotted.table]`` headers, and
    ``key = value`` lines where value is a string (double or single
    quoted), boolean, integer, float, or a single-line array of those.
    This is deliberately the *whole* dialect committed specs may use, so
    a spec that parses on Python 3.9 parses identically on 3.12.
    """
    root: Dict[str, Any] = {}
    table = root
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = _strip_toml_comment(line).strip()
        if not stripped:
            continue
        if stripped.startswith("[") and stripped.endswith("]"):
            table = root
            for part in stripped[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise SpecError(
                        f"{path}:{lineno}: empty table-name component")
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise SpecError(
                        f"{path}:{lineno}: {part!r} is both a key and a table")
            continue
        if "=" not in stripped:
            raise SpecError(
                f"{path}:{lineno}: expected 'key = value', got {line!r}")
        key, _, value = stripped.partition("=")
        key = key.strip()
        if not key:
            raise SpecError(f"{path}:{lineno}: empty key")
        table[key] = _parse_toml_value(value.strip(), path, lineno)
    return root


def _strip_toml_comment(line: str) -> str:
    out = []
    in_string: Optional[str] = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out)


def _parse_toml_value(token: str, path: str, lineno: int):
    if not token:
        raise SpecError(f"{path}:{lineno}: missing value")
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(item.strip(), path, lineno)
                for item in _split_toml_array(inner, path, lineno)]
    if (token.startswith('"') and token.endswith('"') and len(token) >= 2) or \
            (token.startswith("'") and token.endswith("'") and len(token) >= 2):
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        if any(ch in token for ch in ".eE") and not token.lstrip("+-").isdigit():
            return float(token)
        return int(token.replace("_", ""))
    except ValueError:
        raise SpecError(
            f"{path}:{lineno}: unsupported TOML value {token!r} "
            "(the fallback parser accepts strings, booleans, numbers and "
            "single-line arrays)") from None


def _split_toml_array(inner: str, path: str, lineno: int) -> List[str]:
    items, depth, current, in_string = [], 0, [], None
    for ch in inner:
        if in_string:
            current.append(ch)
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_string:
        raise SpecError(f"{path}:{lineno}: unterminated string in array")
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return items


# ----------------------------------------------------------------------
# Point expansion and evaluation (worker side)
# ----------------------------------------------------------------------
def expand_payloads(spec: ExperimentSpec,
                    cache_dir: Optional[str] = None,
                    profile: bool = False) -> List[Any]:
    """Expand a spec into an ordered list of picklable point payloads.

    The order is part of the spec's identity: point ``i`` of a resumed run
    is the same experiment as point ``i`` of the original run, which is
    what lets the run store skip completed shards.  ``profile`` only adds
    timing columns to the computed rows (stripped again by the driver); it
    never changes the results themselves.
    """
    if spec.kind == "sweep":
        config = payload_config(spec, cache_dir=cache_dir, profile=profile)
        return [(point, config) for point in spec.to_grid().points()]
    return [_scenario_point_at(spec, i, profile=profile)
            for i in range(len(spec.schedulers))]


def count_payloads(spec: ExperimentSpec) -> int:
    """How many points :func:`expand_payloads` yields, without expanding.

    For sweep specs this is the grid's Cartesian size; for scenario specs
    the scheduler count.  The run store records this (plus the per-point
    digests of :func:`payload_digests`) in the manifest, so a resume can
    find pending indices without re-expanding the whole grid.
    """
    if spec.kind == "sweep":
        return spec.to_grid().size
    return len(spec.schedulers)


def payload_config(spec: ExperimentSpec,
                   cache_dir: Optional[str] = None,
                   profile: bool = False):
    """The spec-wide half of a sweep payload (``None`` for scenario specs).

    Sweep payloads are ``(SweepPoint, ExperimentConfig)`` pairs whose
    config is identical across the grid; building it once and passing it
    to :func:`expand_payload_at` keeps lazy expansion O(pending), not
    O(grid).
    """
    if spec.kind != "sweep":
        return None
    from .experiments.orchestrator import ExperimentConfig

    return ExperimentConfig(replications=spec.replications,
                            seed=spec.seed, cache_dir=cache_dir,
                            include_optimal=spec.optimal,
                            backend=spec.backend,
                            aggregation=spec.aggregation,
                            chunk_size=spec.chunk_size,
                            variance=spec.variance,
                            profile=bool(profile))


def _scenario_point_at(spec: ExperimentSpec, index: int,
                       *, profile: bool = False) -> "ScenarioPoint":
    return ScenarioPoint(index=index, family=spec.family,
                         scheduler=spec.schedulers[index],
                         replications=spec.replications, seed=spec.seed,
                         backend=spec.backend,
                         aggregation=spec.aggregation,
                         chunk_size=spec.chunk_size,
                         variance=spec.variance,
                         family_params=tuple(sorted(spec.family_params.items())),
                         profile=bool(profile))


def expand_payload_at(spec: ExperimentSpec, index: int, *,
                      cache_dir: Optional[str] = None,
                      profile: bool = False, config=None):
    """Materialise payload ``index`` of :func:`expand_payloads` lazily.

    ``expand_payload_at(spec, i) == expand_payloads(spec)[i]`` for every
    valid index (pinned by the spec tests) — the run store resumes large
    grids through this, expanding only the points whose shards are
    missing.  Pass ``config`` (from :func:`payload_config`) to amortise
    the sweep-config construction across many calls.
    """
    if spec.kind == "sweep":
        if config is None:
            config = payload_config(spec, cache_dir=cache_dir, profile=profile)
        return (spec.to_grid().point_at(index), config)
    if not 0 <= index < len(spec.schedulers):
        raise SpecError(f"payload index {index} out of range for scenario "
                        f"spec {spec.name!r} ({len(spec.schedulers)} points)")
    return _scenario_point_at(spec, index, profile=profile)


def payload_digest(payload) -> str:
    """Content digest of one point payload's *identity* (sha256 hex).

    Covers exactly the coordinates that determine the point's result row
    — grid coordinates and registry names for sweep points; family,
    scheduler, replications, seed, backend and family params for scenario
    points.  Execution knobs that never change results (``cache_dir``,
    ``profile``, ``chunk_size`` — chunking is memory layout, the
    accumulators see the same stream) are excluded, so a profiled or
    re-chunked resume still matches the digests recorded by the original
    run.  The aggregation mode *does* change quantile columns, so a
    non-default ``aggregation`` is part of the identity (the default
    ``"auto"`` is omitted, keeping digests of older runs stable).  The
    same holds for ``variance``: non-default modes add CI columns (and
    antithetic changes the draws), so they are part of the identity,
    while the default ``"none"`` is omitted.
    """
    if isinstance(payload, ScenarioPoint):
        identity = {
            "kind": "scenario", "index": payload.index,
            "family": payload.family, "scheduler": payload.scheduler,
            "replications": payload.replications, "seed": payload.seed,
            "backend": payload.backend,
            "params": [[k, v] for k, v in payload.family_params],
        }
        if payload.aggregation != "auto":
            identity["aggregation"] = payload.aggregation
        if payload.variance != "none":
            identity["variance"] = payload.variance
    else:
        point, config = payload
        identity = {
            "kind": "sweep", "index": point.index,
            "lifespan": float(point.lifespan),
            "setup_cost": float(point.setup_cost),
            "max_interrupts": int(point.max_interrupts),
            "scheduler": point.scheduler, "adversary": point.adversary,
            "replications": config.replications, "seed": config.seed,
            "backend": config.backend, "optimal": config.include_optimal,
        }
        if config.aggregation != "auto":
            identity["aggregation"] = config.aggregation
        if config.variance != "none":
            identity["variance"] = config.variance
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_digests(spec: ExperimentSpec) -> List[str]:
    """Per-point identity digests for the whole spec, in point order.

    Computed once when a run is created and stored in its manifest; a
    resume then verifies only the *pending* points' lazily expanded
    payloads against them instead of re-expanding the full grid.
    """
    return [payload_digest(payload) for payload in expand_payloads(spec)]


#: Test hook: a float number of seconds to sleep before evaluating each
#: point.  Lets scheduling-layer tests and the distributed-executor
#: benchmark give every point a known fixed cost that overlaps across
#: worker *processes* regardless of core count — the same idiom as
#: ``REPRO_TEST_CONSOLIDATE_DELAY`` and ``REPRO_TEST_JOURNAL_DELAY``.
_POINT_DELAY_ENV = "REPRO_TEST_POINT_DELAY"


def evaluate_payload(payload) -> Dict[str, Any]:
    """Compute one result row from a point payload (runs inside workers)."""
    delay = os.environ.get(_POINT_DELAY_ENV)
    if delay:
        import time

        time.sleep(float(delay))
    if isinstance(payload, ScenarioPoint):
        return _evaluate_scenario_point(payload)
    from .experiments.orchestrator import _evaluate_point
    return _evaluate_point(payload)


def _evaluate_scenario_point(point: ScenarioPoint) -> Dict[str, Any]:
    import time

    from .experiments.grid import make_scheduler
    from .experiments.montecarlo import replicate_scenario
    from .experiments.profiling import stage_column

    family = SCENARIO_FAMILIES[point.family]
    family_params = dict(point.family_params)
    # A canonical-seed probe instance supplies the opportunity parameters
    # (U, c, p) that parameter-dependent scheduler factories need.
    probe = family(**family_params)
    scheduler = make_scheduler(point.scheduler, probe.params)
    row: Dict[str, Any] = point.key_columns()
    started = time.perf_counter() if point.profile else 0.0
    chunk_profile = {} if point.profile else None
    row.update(replicate_scenario(family, point.replications,
                                  base_seed=point.seed, scheduler=scheduler,
                                  backend=point.backend,
                                  aggregation=point.aggregation,
                                  chunk_size=point.chunk_size,
                                  variance=point.variance,
                                  profile=chunk_profile,
                                  **family_params))
    if point.profile:
        row[stage_column("monte_carlo")] = time.perf_counter() - started
        for key, value in (chunk_profile or {}).items():
            row[stage_column(key)] = value
    return row
