"""Exception hierarchy for the cycle-stealing reproduction library.

All library-specific errors derive from :class:`CycleStealingError` so that
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations

__all__ = [
    "CycleStealingError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "InvalidInterruptError",
    "SchedulingError",
    "SimulationError",
]


class CycleStealingError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class InvalidParameterError(CycleStealingError, ValueError):
    """Raised when opportunity parameters (U, c, p) are malformed.

    Examples: non-positive lifespan, negative setup cost, negative interrupt
    budget, or NaN/inf values.
    """


class InvalidScheduleError(CycleStealingError, ValueError):
    """Raised when an episode or opportunity schedule violates the model.

    Examples: non-positive period lengths, periods that overrun the residual
    lifespan, or an empty schedule for a positive lifespan.
    """


class InvalidInterruptError(CycleStealingError, ValueError):
    """Raised when an interrupt pattern is inconsistent with the model.

    Examples: more interrupts than the budget ``p``, interrupt times outside
    the usable lifespan, or non-monotone interrupt times.
    """


class SchedulingError(CycleStealingError, RuntimeError):
    """Raised when a scheduler cannot produce a valid schedule.

    Typically signals an internal inconsistency (e.g. a guideline formula
    producing zero periods for a positive lifespan) rather than bad user
    input.
    """


class SimulationError(CycleStealingError, RuntimeError):
    """Raised by the discrete-event simulator on protocol violations."""
