"""Work accounting for episode and opportunity schedules (Section 2.2).

This module turns the paper's definitions into executable functions:

* :func:`episode_work` — work accomplished by one episode given the time at
  which it was interrupted (or ``None`` for "ran to completion").
* :func:`nonadaptive_opportunity_work` — the paper's formula
  ``W(S) = Σ_{k∉I} (t_k ⊖ c) + ((U − T_{i_p}) ⊖ c)`` for a non-adaptive
  schedule ``S`` whose periods in the index set ``I`` are interrupted at
  their last instants (with the "one long final period after the p-th
  interrupt" exception).
* :func:`nonadaptive_work_under_times` — a more general simulator-style
  evaluation of a non-adaptive schedule against arbitrary interrupt *times*,
  used by the stochastic layers where interrupts do not conveniently land at
  period boundaries.
* :func:`worst_case_nonadaptive_work` — exact minimisation over the
  adversary's period-end interrupt patterns (dynamic programming over the
  choice of interrupted periods), used to measure the true guaranteed work
  of any non-adaptive schedule.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from .arithmetic import (
    period_work,
    period_work_array,
    positive_subtraction,
    positive_subtraction_array,
)
from .exceptions import InvalidInterruptError, InvalidScheduleError
from .interrupts import PeriodEndInterrupts, TimedInterrupts
from .params import CycleStealingParams
from .schedule import EpisodeSchedule

__all__ = [
    "episode_work",
    "episode_elapsed",
    "nonadaptive_opportunity_work",
    "nonadaptive_work_under_times",
    "worst_case_nonadaptive_work",
    "worst_case_nonadaptive_pattern",
    "worst_case_nonadaptive_pattern_reference",
]


def episode_work(schedule: EpisodeSchedule, setup_cost: float,
                 interrupt_time: Optional[float] = None) -> float:
    """Work accomplished by one episode.

    Parameters
    ----------
    schedule:
        The episode-schedule ``t_1, ..., t_m``.
    setup_cost:
        Communication set-up cost ``c``.
    interrupt_time:
        Episode-relative time of the owner's interrupt, or ``None`` if the
        episode ran to completion.  If the interrupt falls in period ``k``
        (``T_{k-1} <= t < T_k``) the episode accomplishes
        ``Σ_{i<k} (t_i ⊖ c)`` — work in flight is destroyed.
    """
    if interrupt_time is None:
        return schedule.work_if_uninterrupted(setup_cost)
    if interrupt_time < 0.0:
        raise InvalidInterruptError(f"interrupt time must be >= 0, got {interrupt_time!r}")
    if interrupt_time >= schedule.total_length:
        # An "interrupt" after the episode finished is no interrupt at all.
        return schedule.work_if_uninterrupted(setup_cost)
    k = schedule.period_containing(interrupt_time)
    return schedule.work_of_prefix(k - 1, setup_cost)


def episode_elapsed(schedule: EpisodeSchedule,
                    interrupt_time: Optional[float] = None) -> float:
    """Lifespan consumed by the episode (interrupt time or full length)."""
    if interrupt_time is None or interrupt_time >= schedule.total_length:
        return schedule.total_length
    if interrupt_time < 0.0:
        raise InvalidInterruptError(f"interrupt time must be >= 0, got {interrupt_time!r}")
    return float(interrupt_time)


def nonadaptive_opportunity_work(schedule: EpisodeSchedule,
                                 params: CycleStealingParams,
                                 interrupts: PeriodEndInterrupts) -> float:
    """Work of a non-adaptive schedule under period-end interrupts.

    Implements the paper's Section 2.2 formula.  The schedule's periods must
    cover the whole lifespan ``U``; the adversary interrupts the periods in
    ``interrupts`` at their last instants.  When the interrupt budget ``p``
    is exhausted (i.e. ``interrupts`` uses all ``p`` interrupts), the owner
    of A reschedules everything after the last interrupt as a single long
    period, which contributes ``(U − T_{i_p}) ⊖ c``.

    If fewer than ``p`` interrupts are used, the remaining tail periods of
    the original schedule are simply executed unchanged (the "oblivious"
    behaviour of the paper).
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=True)
    interrupts.validate(schedule.num_periods, params.max_interrupts)

    c = params.setup_cost
    if interrupts.is_empty:
        return schedule.work_if_uninterrupted(c)

    killed = np.zeros(schedule.num_periods, dtype=bool)
    killed[[i - 1 for i in interrupts.indices]] = True

    budget_exhausted = interrupts.count >= params.max_interrupts
    last = interrupts.last_index

    if budget_exhausted:
        # Periods before (and including) the last interrupt contribute
        # normally unless killed; everything after T_{i_p} becomes one long
        # period that can no longer be interrupted.
        surviving = ~killed[:last]
        work = float(period_work_array(schedule.periods[:last], c)[surviving].sum())
        tail_length = params.lifespan - schedule.finish_time(last)
        work += positive_subtraction(tail_length, c)
        return work

    surviving = ~killed
    return float(period_work_array(schedule.periods, c)[surviving].sum())


def nonadaptive_work_under_times(schedule: EpisodeSchedule,
                                 params: CycleStealingParams,
                                 interrupts: TimedInterrupts,
                                 *, extend_final_period: bool = True) -> float:
    """Evaluate a non-adaptive schedule against arbitrary interrupt times.

    The schedule's periods are dispatched in order.  An interrupt that lands
    inside the current period kills it; the next period then starts at the
    interrupt time (shifting the remaining schedule earlier).  After the
    ``p``-th interrupt the remainder of the lifespan is executed as one long
    period.  Periods that would overrun the lifespan are truncated, and —
    when ``extend_final_period`` is set — any lifespan left after the last
    scheduled period is used as one additional period.

    This is a strict generalisation of :func:`nonadaptive_opportunity_work`:
    when the interrupt times coincide with period last-instants the two
    agree (see the test-suite).
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=False)
    interrupts.validate(params.lifespan, params.max_interrupts)

    c = params.setup_cost
    lifespan = params.lifespan
    times = list(interrupts.times)

    work = 0.0
    clock = 0.0
    used = 0
    period_iter = iter(schedule.periods.tolist())

    def next_interrupt() -> float:
        return times[used] if used < len(times) else float("inf")

    while clock < lifespan:
        if used >= params.max_interrupts and used > 0:
            # Budget exhausted: one long final period, immune to interrupts.
            work += positive_subtraction(lifespan - clock, c)
            return work

        try:
            planned = next(period_iter)
        except StopIteration:
            if not extend_final_period:
                return work
            planned = lifespan - clock

        length = min(float(planned), lifespan - clock)
        if length <= 0.0:
            break
        end = clock + length
        interrupt = next_interrupt()
        if clock <= interrupt < end:
            # Period killed; no work, clock jumps to the interrupt time.
            clock = interrupt
            used += 1
        else:
            work += period_work(length, c)
            clock = end
    return work


def _pattern_work(schedule: EpisodeSchedule, params: CycleStealingParams,
                  indices: Tuple[int, ...]) -> float:
    return nonadaptive_opportunity_work(schedule, params, PeriodEndInterrupts(indices))


def _fewer_than_budget_case(period_losses: np.ndarray, p: int, m: int,
                            uninterrupted: float
                            ) -> Tuple[PeriodEndInterrupts, float]:
    """Best pattern using fewer than ``p`` interrupts (no tail rewrite).

    Killing period ``k`` simply removes ``t_k ⊖ c``, so the best choice is
    the ``q <= p-1`` largest losses (only those actually worth something).
    """
    order = np.argsort(period_losses)[::-1]
    take = [int(i) for i in order[: max(0, min(p - 1, m))]
            if period_losses[i] > 0.0]
    if not take:
        return PeriodEndInterrupts(()), uninterrupted
    loss = float(period_losses[take].sum())
    return (PeriodEndInterrupts(sorted(i + 1 for i in take)),
            uninterrupted - loss)


def _topk_prefix_sums(losses: np.ndarray, k: int) -> np.ndarray:
    """Running top-``k`` sums: entry ``n-1`` is Σ of the ``k`` largest losses
    among the first ``n``, for every prefix length ``n = 1..m``.

    Uses the order-statistics recurrence ``M_q = cummax(min(x, shift(M_{q-1})))``
    — ``M_q[n]`` is the ``q``-th largest value of the prefix ending at ``n``
    (``-inf`` while the prefix holds fewer than ``q`` elements) — so the
    whole table costs ``k`` array passes instead of a per-period Python
    heap.  Entries for prefixes shorter than ``k`` are meaningless
    (``-inf``-contaminated); callers only read ``n >= k``.
    """
    total = np.zeros(losses.size)
    running = None  # M_{q-1}; None stands for the q = 1 sentinel (+inf)
    for _q in range(k):
        if running is None:
            running = np.maximum.accumulate(losses)
        else:
            shifted = np.empty(losses.size)
            shifted[0] = -np.inf
            shifted[1:] = running[:-1]
            running = np.maximum.accumulate(np.minimum(losses, shifted))
        total += running
    return total


def worst_case_nonadaptive_pattern(schedule: EpisodeSchedule,
                                   params: CycleStealingParams
                                   ) -> Tuple[PeriodEndInterrupts, float]:
    """Exact worst-case interrupt pattern for a non-adaptive schedule.

    Returns the period-end interrupt pattern (with at most ``p`` interrupts)
    that minimises the opportunity work, together with that minimum work.
    The search restricts the adversary to period last-instants, which
    Observation (a) of the paper shows is without loss of generality.

    The adversary's minimisation splits into two cases.  Using *fewer* than
    ``p`` interrupts never rewrites the tail, so the best choice is simply
    the largest ``p-1`` per-period losses.  Using *all* ``p`` interrupts
    turns everything after the last one into a single long period, so we
    enumerate the position ``j`` of that budget-exhausting interrupt:

        work(j) = Σ_{k<j} (t_k ⊖ c) − top-(p−1)-losses(1..j−1) + ((U−T_j) ⊖ c)

    All three terms are computed for every ``j`` at once — prefix sums by
    ``cumsum`` and the running top-(p−1) sums by the order-statistics
    recurrence of :func:`_topk_prefix_sums` — replacing the per-period
    Python heap loop of :func:`worst_case_nonadaptive_pattern_reference`
    (retained as the reference; the property tests pin the two to
    ``1e-9``) with ``p + 1`` array passes over the schedule.
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=True)
    p = params.max_interrupts
    c = params.setup_cost
    m = schedule.num_periods

    if p == 0 or m == 0:
        return PeriodEndInterrupts(()), schedule.work_if_uninterrupted(c)

    period_losses = period_work_array(schedule.periods, c)  # t_k ⊖ c
    uninterrupted = float(period_losses.sum())

    best_pattern, best_work = _fewer_than_budget_case(period_losses, p, m,
                                                      uninterrupted)

    # All-p-interrupts case: candidates for every position j = p..m of the
    # budget-exhausting interrupt in one array pass.
    if m >= p:
        tail_works = positive_subtraction_array(
            params.lifespan - schedule.finish_times[p - 1:], c)
        prefix_sums = np.empty(m - p + 1)  # Σ_{k<j} (t_k ⊖ c), j = p..m
        if p == 1:
            prefix_sums[0] = 0.0
            np.cumsum(period_losses[:-1], out=prefix_sums[1:])
        else:
            prefix_sums[:] = np.cumsum(period_losses)[p - 2:-1]
            prefix_sums -= _topk_prefix_sums(period_losses, p - 1)[p - 2:-1]
        candidates = prefix_sums + tail_works
        best_j = int(np.argmin(candidates))
        # Same acceptance threshold as the reference loop: prefer the
        # fewer-interrupts pattern on sub-1e-12 ties.
        if candidates[best_j] < best_work - 1e-12:
            best_work = float(candidates[best_j])
            j = best_j + p  # 1-based period index of the last interrupt
            # The p-1 earlier kills: largest losses among periods 1..j-1,
            # earliest index on ties (matching the reference heap, which
            # only evicts on a strictly larger loss).
            before = period_losses[: j - 1]
            order = np.lexsort((np.arange(before.size), -before))
            killed = (order[: p - 1] + 1).tolist()
            best_pattern = PeriodEndInterrupts(sorted(killed + [j]))

    return best_pattern, float(best_work)


def worst_case_nonadaptive_pattern_reference(schedule: EpisodeSchedule,
                                             params: CycleStealingParams
                                             ) -> Tuple[PeriodEndInterrupts, float]:
    """Reference implementation of :func:`worst_case_nonadaptive_pattern`.

    Same two-case minimisation, but the all-``p``-interrupts case walks the
    periods with an explicit min-heap of ``(loss, period index)`` pairs —
    the ``p-1`` largest losses seen so far, indices carried through the
    heap so the killed pattern never has to be reconstructed by matching
    float values.  ``O(m log p)`` scalar Python; kept as the readable
    specification the vectorized kernel is property-tested against.
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=True)
    p = params.max_interrupts
    c = params.setup_cost
    m = schedule.num_periods

    if p == 0 or m == 0:
        return PeriodEndInterrupts(()), schedule.work_if_uninterrupted(c)

    period_losses = period_work_array(schedule.periods, c)  # t_k ⊖ c
    uninterrupted = float(period_losses.sum())
    finishes = schedule.finish_times

    best_pattern, best_work = _fewer_than_budget_case(period_losses, p, m,
                                                      uninterrupted)

    # The adversary uses all p interrupts; enumerate the index j of the
    # last (budget-exhausting) interrupt.  Work becomes
    #   Σ_{k<j, k not killed} (t_k ⊖ c) + ((U − T_j) ⊖ c),
    # and the p-1 earlier interrupts greedily remove the largest losses
    # among periods 1..j-1.
    heap: List[Tuple[float, int]] = []  # the largest p-1 (loss, index) so far
    heap_sum = 0.0
    prefix_sum = 0.0  # Σ_{k<j} (t_k ⊖ c)
    keep = max(0, p - 1)
    for j in range(1, m + 1):
        # The last interrupt sits at period j; the p-1 earlier ones need
        # p-1 distinct periods before j, so this branch requires j >= p.
        if j >= p:
            tail_work = positive_subtraction(params.lifespan - float(finishes[j - 1]), c)
            work = prefix_sum - heap_sum + tail_work
            if work < best_work - 1e-12:
                best_work = work
                killed = [index for _loss, index in heap]
                best_pattern = PeriodEndInterrupts(sorted(killed + [j]))
        # Update the prefix structures with period j's loss.  Zero-loss
        # periods are kept too: the adversary must place exactly p-1
        # earlier interrupts for the budget-exhausting tail rule to fire.
        loss_j = float(period_losses[j - 1])
        prefix_sum += loss_j
        if keep > 0:
            if len(heap) < keep:
                heapq.heappush(heap, (loss_j, j))
                heap_sum += loss_j
            elif heap and loss_j > heap[0][0]:
                heap_sum += loss_j - heap[0][0]
                heapq.heapreplace(heap, (loss_j, j))

    return best_pattern, float(best_work)


def worst_case_nonadaptive_work(schedule: EpisodeSchedule,
                                params: CycleStealingParams) -> float:
    """Guaranteed work of a non-adaptive schedule (worst case over interrupts)."""
    _, work = worst_case_nonadaptive_pattern(schedule, params)
    return work
