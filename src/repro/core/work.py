"""Work accounting for episode and opportunity schedules (Section 2.2).

This module turns the paper's definitions into executable functions:

* :func:`episode_work` — work accomplished by one episode given the time at
  which it was interrupted (or ``None`` for "ran to completion").
* :func:`nonadaptive_opportunity_work` — the paper's formula
  ``W(S) = Σ_{k∉I} (t_k ⊖ c) + ((U − T_{i_p}) ⊖ c)`` for a non-adaptive
  schedule ``S`` whose periods in the index set ``I`` are interrupted at
  their last instants (with the "one long final period after the p-th
  interrupt" exception).
* :func:`nonadaptive_work_under_times` — a more general simulator-style
  evaluation of a non-adaptive schedule against arbitrary interrupt *times*,
  used by the stochastic layers where interrupts do not conveniently land at
  period boundaries.
* :func:`worst_case_nonadaptive_work` — exact minimisation over the
  adversary's period-end interrupt patterns (dynamic programming over the
  choice of interrupted periods), used to measure the true guaranteed work
  of any non-adaptive schedule.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .arithmetic import period_work, period_work_array, positive_subtraction
from .exceptions import InvalidInterruptError, InvalidScheduleError
from .interrupts import PeriodEndInterrupts, TimedInterrupts
from .params import CycleStealingParams
from .schedule import EpisodeSchedule

__all__ = [
    "episode_work",
    "episode_elapsed",
    "nonadaptive_opportunity_work",
    "nonadaptive_work_under_times",
    "worst_case_nonadaptive_work",
    "worst_case_nonadaptive_pattern",
]


def episode_work(schedule: EpisodeSchedule, setup_cost: float,
                 interrupt_time: Optional[float] = None) -> float:
    """Work accomplished by one episode.

    Parameters
    ----------
    schedule:
        The episode-schedule ``t_1, ..., t_m``.
    setup_cost:
        Communication set-up cost ``c``.
    interrupt_time:
        Episode-relative time of the owner's interrupt, or ``None`` if the
        episode ran to completion.  If the interrupt falls in period ``k``
        (``T_{k-1} <= t < T_k``) the episode accomplishes
        ``Σ_{i<k} (t_i ⊖ c)`` — work in flight is destroyed.
    """
    if interrupt_time is None:
        return schedule.work_if_uninterrupted(setup_cost)
    if interrupt_time < 0.0:
        raise InvalidInterruptError(f"interrupt time must be >= 0, got {interrupt_time!r}")
    if interrupt_time >= schedule.total_length:
        # An "interrupt" after the episode finished is no interrupt at all.
        return schedule.work_if_uninterrupted(setup_cost)
    k = schedule.period_containing(interrupt_time)
    return schedule.work_of_prefix(k - 1, setup_cost)


def episode_elapsed(schedule: EpisodeSchedule,
                    interrupt_time: Optional[float] = None) -> float:
    """Lifespan consumed by the episode (interrupt time or full length)."""
    if interrupt_time is None or interrupt_time >= schedule.total_length:
        return schedule.total_length
    if interrupt_time < 0.0:
        raise InvalidInterruptError(f"interrupt time must be >= 0, got {interrupt_time!r}")
    return float(interrupt_time)


def nonadaptive_opportunity_work(schedule: EpisodeSchedule,
                                 params: CycleStealingParams,
                                 interrupts: PeriodEndInterrupts) -> float:
    """Work of a non-adaptive schedule under period-end interrupts.

    Implements the paper's Section 2.2 formula.  The schedule's periods must
    cover the whole lifespan ``U``; the adversary interrupts the periods in
    ``interrupts`` at their last instants.  When the interrupt budget ``p``
    is exhausted (i.e. ``interrupts`` uses all ``p`` interrupts), the owner
    of A reschedules everything after the last interrupt as a single long
    period, which contributes ``(U − T_{i_p}) ⊖ c``.

    If fewer than ``p`` interrupts are used, the remaining tail periods of
    the original schedule are simply executed unchanged (the "oblivious"
    behaviour of the paper).
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=True)
    interrupts.validate(schedule.num_periods, params.max_interrupts)

    c = params.setup_cost
    if interrupts.is_empty:
        return schedule.work_if_uninterrupted(c)

    killed = np.zeros(schedule.num_periods, dtype=bool)
    killed[[i - 1 for i in interrupts.indices]] = True

    budget_exhausted = interrupts.count >= params.max_interrupts
    last = interrupts.last_index

    if budget_exhausted:
        # Periods before (and including) the last interrupt contribute
        # normally unless killed; everything after T_{i_p} becomes one long
        # period that can no longer be interrupted.
        surviving = ~killed[:last]
        work = float(period_work_array(schedule.periods[:last], c)[surviving].sum())
        tail_length = params.lifespan - schedule.finish_time(last)
        work += positive_subtraction(tail_length, c)
        return work

    surviving = ~killed
    return float(period_work_array(schedule.periods, c)[surviving].sum())


def nonadaptive_work_under_times(schedule: EpisodeSchedule,
                                 params: CycleStealingParams,
                                 interrupts: TimedInterrupts,
                                 *, extend_final_period: bool = True) -> float:
    """Evaluate a non-adaptive schedule against arbitrary interrupt times.

    The schedule's periods are dispatched in order.  An interrupt that lands
    inside the current period kills it; the next period then starts at the
    interrupt time (shifting the remaining schedule earlier).  After the
    ``p``-th interrupt the remainder of the lifespan is executed as one long
    period.  Periods that would overrun the lifespan are truncated, and —
    when ``extend_final_period`` is set — any lifespan left after the last
    scheduled period is used as one additional period.

    This is a strict generalisation of :func:`nonadaptive_opportunity_work`:
    when the interrupt times coincide with period last-instants the two
    agree (see the test-suite).
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=False)
    interrupts.validate(params.lifespan, params.max_interrupts)

    c = params.setup_cost
    lifespan = params.lifespan
    times = list(interrupts.times)

    work = 0.0
    clock = 0.0
    used = 0
    period_iter = iter(schedule.periods.tolist())

    def next_interrupt() -> float:
        return times[used] if used < len(times) else float("inf")

    while clock < lifespan:
        if used >= params.max_interrupts and used > 0:
            # Budget exhausted: one long final period, immune to interrupts.
            work += positive_subtraction(lifespan - clock, c)
            return work

        try:
            planned = next(period_iter)
        except StopIteration:
            if not extend_final_period:
                return work
            planned = lifespan - clock

        length = min(float(planned), lifespan - clock)
        if length <= 0.0:
            break
        end = clock + length
        interrupt = next_interrupt()
        if clock <= interrupt < end:
            # Period killed; no work, clock jumps to the interrupt time.
            clock = interrupt
            used += 1
        else:
            work += period_work(length, c)
            clock = end
    return work


def _pattern_work(schedule: EpisodeSchedule, params: CycleStealingParams,
                  indices: Tuple[int, ...]) -> float:
    return nonadaptive_opportunity_work(schedule, params, PeriodEndInterrupts(indices))


def worst_case_nonadaptive_pattern(schedule: EpisodeSchedule,
                                   params: CycleStealingParams
                                   ) -> Tuple[PeriodEndInterrupts, float]:
    """Exact worst-case interrupt pattern for a non-adaptive schedule.

    Returns the period-end interrupt pattern (with at most ``p`` interrupts)
    that minimises the opportunity work, together with that minimum work.
    The search restricts the adversary to period last-instants, which
    Observation (a) of the paper shows is without loss of generality.

    The minimisation is done with a small dynamic program over
    ``(period index, interrupts used)`` states rather than enumerating all
    ``C(m, p)`` subsets, so it is exact and fast even for schedules with
    thousands of periods.

    Notes
    -----
    The DP works forward over periods.  State value ``V[j][q]`` = maximum
    work *lost* (relative to the uninterrupted schedule) achievable by the
    adversary using exactly ``q`` interrupts among periods ``1..j`` **with
    the convention that the q-th interrupt, if it is the budget-exhausting
    one, replaces the tail by a single long period**.  Because the
    budget-exhausting interrupt changes the accounting of everything after
    it, we treat it separately: we enumerate the position of the *last*
    interrupt (or "no interrupts at all" / "fewer than p interrupts") and
    use a simple greedy for the earlier ones — killing a period ``k`` before
    the last interrupt always costs us exactly ``t_k ⊖ c``, so the adversary
    greedily picks the largest periods.
    """
    schedule.validate_for_lifespan(params.lifespan, require_exact=True)
    p = params.max_interrupts
    c = params.setup_cost
    m = schedule.num_periods

    if p == 0 or m == 0:
        return PeriodEndInterrupts(()), schedule.work_if_uninterrupted(c)

    period_losses = period_work_array(schedule.periods, c)  # t_k ⊖ c
    uninterrupted = float(period_losses.sum())
    finishes = schedule.finish_times

    best_work = uninterrupted
    best_pattern = PeriodEndInterrupts(())

    # Case 1: the adversary uses fewer than p interrupts (no tail rewrite).
    # Killing period k simply removes t_k ⊖ c, so the best choice is the
    # q <= p-1 largest losses.
    if p >= 1:
        order = np.argsort(period_losses)[::-1]
        take = order[: max(0, min(p - 1, m))]
        # Only kill periods that actually cost us something.
        take = [int(i) for i in take if period_losses[i] > 0.0]
        if take:
            loss = float(period_losses[list(take)].sum())
            work = uninterrupted - loss
            if work < best_work:
                best_work = work
                best_pattern = PeriodEndInterrupts(sorted(i + 1 for i in take))

    # Case 2: the adversary uses all p interrupts; enumerate the index j of
    # the last (budget-exhausting) interrupt.  Work becomes
    #   Σ_{k<j, k not killed} (t_k ⊖ c) + ((U − T_j) ⊖ c),
    # and the p-1 earlier interrupts greedily remove the largest losses
    # among periods 1..j-1.
    if m >= 1:
        # Prefix "top (p-1) losses" computed incrementally with a small heap
        # would be O(m log p); for clarity use cumulative sorting in numpy on
        # the fly only when m is large.
        import heapq

        heap: list = []   # min-heap of the largest (p-1) losses so far
        heap_sum = 0.0
        prefix_sum = 0.0  # Σ_{k<j} (t_k ⊖ c)
        keep = max(0, p - 1)
        for j in range(1, m + 1):
            # The last interrupt sits at period j; the p-1 earlier ones need
            # p-1 distinct periods before j, so this branch requires j >= p.
            if j >= p:
                tail_work = positive_subtraction(params.lifespan - float(finishes[j - 1]), c)
                work = prefix_sum - heap_sum + tail_work
                if work < best_work - 1e-12:
                    best_work = work
                    # Reconstruct which earlier periods the greedy killed.
                    killed_losses = sorted(heap, reverse=True)
                    killed = _indices_of_losses(period_losses[: j - 1], killed_losses)
                    best_pattern = PeriodEndInterrupts(sorted(killed + [j]))
            # Update the prefix structures with period j's loss.  Zero-loss
            # periods are kept too: the adversary must place exactly p-1
            # earlier interrupts for the budget-exhausting tail rule to fire.
            loss_j = float(period_losses[j - 1])
            prefix_sum += loss_j
            if keep > 0:
                if len(heap) < keep:
                    heapq.heappush(heap, loss_j)
                    heap_sum += loss_j
                elif heap and loss_j > heap[0]:
                    heap_sum += loss_j - heap[0]
                    heapq.heapreplace(heap, loss_j)

    return best_pattern, float(best_work)


def _indices_of_losses(losses: np.ndarray, targets: list) -> list:
    """Map a multiset of loss values back to distinct 1-based period indices."""
    remaining = list(targets)
    indices: list = []
    order = np.argsort(losses)[::-1]
    for i in order:
        if not remaining:
            break
        val = float(losses[i])
        for r in list(remaining):
            if abs(val - r) <= 1e-9:
                indices.append(int(i) + 1)
                remaining.remove(r)
                break
    return indices


def worst_case_nonadaptive_work(schedule: EpisodeSchedule,
                                params: CycleStealingParams) -> float:
    """Guaranteed work of a non-adaptive schedule (worst case over interrupts)."""
    _, work = worst_case_nonadaptive_pattern(schedule, params)
    return work
