"""Core formal model of the guaranteed-output cycle-stealing problem.

The sub-modules map one-to-one onto Section 2 of the paper:

* :mod:`repro.core.params` — the opportunity parameters ``(U, c, p)``.
* :mod:`repro.core.arithmetic` — positive subtraction and period work.
* :mod:`repro.core.schedule` — episode and opportunity schedules.
* :mod:`repro.core.interrupts` — interrupt patterns.
* :mod:`repro.core.work` — work accounting under interrupts.
* :mod:`repro.core.game` — the scheduler-vs-adversary game and referees.
* :mod:`repro.core.exceptions` — the library's exception hierarchy.
"""

from .arithmetic import (
    monus,
    period_work,
    period_work_array,
    positive_subtraction,
    positive_subtraction_array,
)
from .exceptions import (
    CycleStealingError,
    InvalidInterruptError,
    InvalidParameterError,
    InvalidScheduleError,
    SchedulingError,
    SimulationError,
)
from .game import (
    AdaptiveSchedulerProtocol,
    AdversaryProtocol,
    GameResult,
    NonAdaptiveSchedulerProtocol,
    guaranteed_adaptive_work,
    play_adaptive,
    play_nonadaptive,
)
from .interrupts import PeriodEndInterrupts, TimedInterrupts
from .params import CycleStealingParams
from .schedule import EpisodeRecord, EpisodeSchedule, OpportunitySchedule
from .work import (
    episode_elapsed,
    episode_work,
    nonadaptive_opportunity_work,
    nonadaptive_work_under_times,
    worst_case_nonadaptive_pattern,
    worst_case_nonadaptive_work,
)

__all__ = [
    "CycleStealingParams",
    "EpisodeSchedule",
    "EpisodeRecord",
    "OpportunitySchedule",
    "PeriodEndInterrupts",
    "TimedInterrupts",
    "GameResult",
    "AdaptiveSchedulerProtocol",
    "NonAdaptiveSchedulerProtocol",
    "AdversaryProtocol",
    "play_adaptive",
    "play_nonadaptive",
    "guaranteed_adaptive_work",
    "episode_work",
    "episode_elapsed",
    "nonadaptive_opportunity_work",
    "nonadaptive_work_under_times",
    "worst_case_nonadaptive_work",
    "worst_case_nonadaptive_pattern",
    "positive_subtraction",
    "positive_subtraction_array",
    "period_work",
    "period_work_array",
    "monus",
    "CycleStealingError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "InvalidInterruptError",
    "SchedulingError",
    "SimulationError",
]
