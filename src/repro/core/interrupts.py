"""Interrupt patterns — descriptions of *where* the owner of B interrupts.

The guaranteed-output model treats the owner of workstation B as an
adversary who may interrupt the opportunity up to ``p`` times.  Two
complementary representations are useful:

* :class:`PeriodEndInterrupts` — interrupts placed at the *last instant* of
  chosen periods of a non-adaptive schedule.  Observation (a) in the paper
  shows this is the adversary's dominant choice, and the paper's
  opportunity-work formula for non-adaptive schedules is stated in exactly
  these terms (a set ``I`` of interrupted period indices).
* :class:`TimedInterrupts` — arbitrary interrupt times measured from the
  start of the opportunity.  Used by the stochastic/expected-output layer
  and by the discrete-event simulator, where interrupts come from owner
  activity traces rather than from an adversary.

Both are immutable value objects with validation against an interrupt
budget and a lifespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from .exceptions import InvalidInterruptError

__all__ = ["PeriodEndInterrupts", "TimedInterrupts"]


@dataclass(frozen=True)
class PeriodEndInterrupts:
    """A set of 1-based period indices interrupted at their last instant.

    Parameters
    ----------
    indices:
        Strictly increasing, 1-based indices of the interrupted periods of a
        non-adaptive schedule.  May be empty (the adversary declines to
        interrupt).
    """

    indices: Tuple[int, ...]

    def __init__(self, indices: Iterable[int] = ()):
        idx = tuple(int(i) for i in indices)
        for i in idx:
            if i < 1:
                raise InvalidInterruptError(f"period indices are 1-based, got {i}")
        if any(b <= a for a, b in zip(idx, idx[1:])):
            raise InvalidInterruptError(
                f"period indices must be strictly increasing, got {idx}"
            )
        object.__setattr__(self, "indices", idx)

    @property
    def count(self) -> int:
        """Number of interrupts in the pattern."""
        return len(self.indices)

    @property
    def is_empty(self) -> bool:
        """Whether the adversary interrupts at all."""
        return not self.indices

    @property
    def last_index(self) -> int:
        """Largest interrupted period index (``0`` when empty)."""
        return self.indices[-1] if self.indices else 0

    def validate(self, num_periods: int, max_interrupts: int) -> None:
        """Check the pattern against a schedule length and interrupt budget."""
        if self.count > max_interrupts:
            raise InvalidInterruptError(
                f"{self.count} interrupts exceed the budget of {max_interrupts}"
            )
        if self.indices and self.indices[-1] > num_periods:
            raise InvalidInterruptError(
                f"period index {self.indices[-1]} exceeds the schedule length {num_periods}"
            )

    def contains(self, period_index: int) -> bool:
        """Whether the given 1-based period is interrupted."""
        return period_index in self.indices

    @classmethod
    def last_periods(cls, num_periods: int, count: int) -> "PeriodEndInterrupts":
        """The pattern that kills the final ``count`` periods of a schedule.

        This is the adversary strategy the paper identifies as worst-case
        for the equal-period non-adaptive guideline (Section 3.1).
        """
        count = min(count, num_periods)
        return cls(range(num_periods - count + 1, num_periods + 1))


@dataclass(frozen=True)
class TimedInterrupts:
    """Interrupt times measured from the start of the opportunity.

    Parameters
    ----------
    times:
        Non-decreasing, non-negative interrupt times.  May be empty.
    """

    times: Tuple[float, ...]

    def __init__(self, times: Iterable[float] = ()):
        ts = tuple(float(t) for t in times)
        for t in ts:
            if not (t >= 0.0):  # also rejects NaN
                raise InvalidInterruptError(f"interrupt times must be >= 0, got {t!r}")
        if any(b < a for a, b in zip(ts, ts[1:])):
            raise InvalidInterruptError(f"interrupt times must be non-decreasing, got {ts}")
        object.__setattr__(self, "times", ts)

    @property
    def count(self) -> int:
        """Number of interrupts."""
        return len(self.times)

    @property
    def is_empty(self) -> bool:
        """Whether there are no interrupts."""
        return not self.times

    def validate(self, lifespan: float, max_interrupts: int) -> None:
        """Check the pattern against a lifespan and interrupt budget."""
        if self.count > max_interrupts:
            raise InvalidInterruptError(
                f"{self.count} interrupts exceed the budget of {max_interrupts}"
            )
        if self.times and self.times[-1] >= lifespan:
            raise InvalidInterruptError(
                f"interrupt at time {self.times[-1]!r} is not inside the lifespan "
                f"[0, {lifespan!r})"
            )

    def within(self, start: float, end: float) -> Tuple[float, ...]:
        """Interrupt times falling inside the half-open window ``[start, end)``."""
        return tuple(t for t in self.times if start <= t < end)

    def first_after(self, time: float) -> float:
        """First interrupt at or after ``time`` (``inf`` when none)."""
        for t in self.times:
            if t >= time:
                return t
        return float("inf")

    @classmethod
    def evenly_spaced(cls, lifespan: float, count: int) -> "TimedInterrupts":
        """``count`` interrupts splitting the lifespan into equal episodes."""
        if count <= 0:
            return cls(())
        step = float(lifespan) / (count + 1)
        return cls(step * (i + 1) for i in range(count))

    @classmethod
    def from_sorted(cls, times: Sequence[float]) -> "TimedInterrupts":
        """Build a pattern from an already sorted sequence of times."""
        return cls(times)
