"""Paired (antithetic) random streams for variance-reduced replication.

Antithetic variates halve the Monte-Carlo variance of any statistic that
is monotone in the underlying uniforms — often far better than halving —
by playing replications in *pairs*: member 0 of a pair consumes a
pseudo-random stream ``u_1, u_2, ...`` and member 1 consumes the
complementary stream ``1 - u_1, 1 - u_2, ...``, so their errors are
negatively correlated and cancel in the pair mean.  This module provides
the three primitives the rest of the code base builds on:

* :class:`PairedSeed` — an ``int`` subclass carrying a pair-member tag
  (0 or 1) alongside the shared pair seed.  It flows through every
  existing seed-plumbing path unchanged: arithmetic like ``seed + i``
  (machine-seed derivation in the scenario families) preserves the tag,
  while feeding it to :func:`numpy.random.default_rng` deliberately
  *drops* the tag — structural randomness (task bags, machine counts,
  speed factors) stays identical within a pair, so the two members differ
  **only** in their interrupt traces.
* :class:`AntitheticRng` — a ``numpy.random.Generator`` façade that draws
  from the native generator (member 0 returns those draws bitwise
  unchanged) and, for member 1, applies the distribution's antithetic
  reflection to every draw.  Both members consume identical bit-stream
  positions, so trace *structure* (e.g. block sizes in the vectorized
  Poisson sampler) never diverges between members.
* :func:`spawn_rng` / :func:`reseed` — the two hooks the samplers and
  scenario families call: ``spawn_rng`` turns any seed (plain int,
  ``None`` or :class:`PairedSeed`) into the right generator, and
  ``reseed`` re-attaches the pair-member tag to an integer seed derived
  from a structural draw.

The reflections are the exact antithetic maps for each distribution
(involutions that preserve the distribution):

=================  =====================================================
``random()``       ``u -> 1 - u``
``uniform(a, b)``  ``x -> a + b - x``
``exponential(s)`` ``x -> -s * log(-expm1(-x / s))``  (CDF complement)
``integers(a, b)`` ``k -> a + b - 1 - k``  (half-open convention)
``normal(m, s)``   ``x -> 2 * m - x``
=================  =====================================================

With plain integer seeds nothing here changes behaviour: ``spawn_rng``
returns a plain ``numpy.random.default_rng`` and ``reseed`` returns a
plain ``int``, keeping ``variance="none"`` byte-identical to the
pre-variance pipeline.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

__all__ = ["PairedSeed", "AntitheticRng", "spawn_rng", "reseed"]

#: Smallest positive normal float: clamps ``-expm1(-x/s)`` away from zero
#: so the exponential reflection of ``x == 0.0`` stays finite.
_TINY = float(np.finfo(float).tiny)


class PairedSeed(int):
    """An integer seed tagged with an antithetic pair member (0 or 1).

    Being an ``int`` subclass, a ``PairedSeed`` passes through every
    integer-seed API untouched — ``numpy.random.default_rng(paired)``
    produces exactly the stream of the untagged seed, which is what the
    *structural* randomness of a scenario (task bags, machine counts)
    must do so that pair members differ only in their interrupt traces.
    Integer arithmetic (``seed + i``) keeps the tag, so derived machine
    seeds stay paired.
    """

    def __new__(cls, seed: int, member: int):
        if member not in (0, 1):
            raise ValueError(f"pair member must be 0 or 1, got {member!r}")
        self = super().__new__(cls, int(seed))
        self.member = int(member)
        return self

    def __repr__(self) -> str:
        return f"PairedSeed({int(self)}, member={self.member})"

    def __add__(self, other):
        return PairedSeed(int(self) + int(other), self.member)

    def __radd__(self, other):
        return PairedSeed(int(other) + int(self), self.member)

    def __sub__(self, other):
        return PairedSeed(int(self) - int(other), self.member)

    def __mul__(self, other):
        return PairedSeed(int(self) * int(other), self.member)

    def __rmul__(self, other):
        return PairedSeed(int(other) * int(self), self.member)


class AntitheticRng:
    """Generator façade producing a stream or its antithetic reflection.

    Wraps ``numpy.random.default_rng(seed)`` and mirrors the subset of
    its sampling API the interrupt-trace samplers and stochastic
    adversaries use.  Every method draws from the underlying generator —
    so both pair members consume identical bit-stream positions — and,
    for ``member == 1``, reflects each draw through the distribution's
    antithetic map.  ``member == 0`` returns the native draws bitwise
    unchanged, which makes an antithetic run's even-indexed replications
    exactly reproduce a ``variance="none"`` run with the same seeds.
    """

    __slots__ = ("_rng", "member")

    def __init__(self, seed: Optional[int], member: int):
        if member not in (0, 1):
            raise ValueError(f"pair member must be 0 or 1, got {member!r}")
        self._rng = np.random.default_rng(None if seed is None else int(seed))
        self.member = int(member)

    # -- uniforms ---------------------------------------------------------
    def random(self, size=None):
        u = self._rng.random(size)
        if self.member == 0:
            return u
        return 1.0 - u

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        x = self._rng.uniform(low, high, size)
        if self.member == 0:
            return x
        return low + high - x

    # -- exponentials -----------------------------------------------------
    def exponential(self, scale: float = 1.0, size=None):
        x = self._rng.exponential(scale, size)
        if self.member == 0:
            return x
        # Antithetic map for Exp(scale): x -> F^-1(1 - F(x)) with
        # F(x) = 1 - exp(-x/scale).  An involution; clamped so x == 0
        # (probability-zero but representable) reflects to a finite value.
        if size is None:
            u = max(-math.expm1(-float(x) / scale), _TINY)
            return -scale * math.log(u)
        u = np.maximum(-np.expm1(-np.asarray(x) / scale), _TINY)
        return -scale * np.log(u)

    # -- discrete ---------------------------------------------------------
    def integers(self, low, high=None, size=None):
        k = self._rng.integers(low, high, size)
        if self.member == 0:
            return k
        lo, hi = (0, low) if high is None else (low, high)
        return lo + hi - 1 - k

    # -- normals ----------------------------------------------------------
    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        x = self._rng.normal(loc, scale, size)
        if self.member == 0:
            return x
        return 2.0 * loc - x


Seed = Union[None, int, PairedSeed]


def spawn_rng(seed: Seed):
    """The sampler-facing generator for ``seed``.

    Plain ints and ``None`` get a plain ``numpy.random.default_rng`` —
    bitwise the historical behaviour.  A :class:`PairedSeed` gets an
    :class:`AntitheticRng` over the shared pair seed, reflecting draws
    for pair member 1.
    """
    if isinstance(seed, PairedSeed):
        return AntitheticRng(int(seed), seed.member)
    return np.random.default_rng(seed)


def reseed(parent: Seed, value) -> Union[int, PairedSeed]:
    """Re-attach ``parent``'s pair-member tag to a derived integer seed.

    The scenario families derive machine seeds from a structural
    generator (``int(rng.integers(...))``), which would silently strip
    the pair tag; wrapping the derivation in ``reseed(seed, ...)`` keeps
    the derived seed on the same antithetic stream.  With a plain-int
    parent this is exactly ``int(value)``.
    """
    if isinstance(parent, PairedSeed):
        return PairedSeed(int(value), parent.member)
    return int(value)
