"""Episode and opportunity schedules (Section 2.2 of the paper).

An *episode* is a maximal stretch of time during which workstation A has
uninterrupted access to workstation B.  A's only discretionary power is how
much work to ship in each *period*, so an episode-schedule is simply a
sequence of positive period lengths ``t_1, ..., t_m`` whose sum equals the
residual lifespan ``L`` available at the start of the episode.

:class:`EpisodeSchedule` is the immutable value type used everywhere in the
library: schedulers produce it, the game engine and the simulator consume
it, and the analysis layer inspects it (prefix sums ``T_k``, productivity,
work if uninterrupted, ...).

:class:`OpportunitySchedule` records the sequence of episode-schedules an
adaptive scheduler actually used during one play of the game, together with
where each episode was interrupted; it is produced by the game engine and is
mostly a reporting convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .arithmetic import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    is_close,
    period_work_array,
    positive_subtraction,
)
from .exceptions import InvalidScheduleError

__all__ = ["EpisodeSchedule", "EpisodeRecord", "OpportunitySchedule"]


class EpisodeSchedule:
    """An immutable sequence of period lengths for one episode.

    Parameters
    ----------
    periods:
        Iterable of strictly positive period lengths ``t_1, ..., t_m``.
        The order matters: period 1 is dispatched first.

    Notes
    -----
    The class performs *structural* validation only (positive, finite
    lengths).  Whether the schedule fits a particular residual lifespan is
    checked by :meth:`validate_for_lifespan`, because the same schedule
    object is sometimes evaluated hypothetically against several lifespans
    by the analysis code.
    """

    __slots__ = ("_periods", "_total_length", "_finish_times")

    def __init__(self, periods: Iterable[float]):
        arr = np.asarray(list(periods), dtype=float)
        if arr.ndim != 1:
            raise InvalidScheduleError("periods must be a one-dimensional sequence")
        if arr.size == 0:
            raise InvalidScheduleError("an episode schedule needs at least one period")
        if not np.all(np.isfinite(arr)):
            raise InvalidScheduleError("period lengths must be finite")
        if np.any(arr <= 0.0):
            bad = arr[arr <= 0.0][0]
            raise InvalidScheduleError(f"period lengths must be positive, got {bad!r}")
        arr.setflags(write=False)
        self._periods = arr
        self._total_length = None
        self._finish_times = None

    @classmethod
    def from_validated_array(cls, periods: np.ndarray) -> "EpisodeSchedule":
        """Wrap an array the caller guarantees to be valid (positive, finite).

        Used by the batch backends, which assemble thousands of schedules
        from already-validated shared prefixes; skipping the per-element
        re-validation keeps that path array-speed.  The array is copied
        into a read-only float buffer, so later mutation of the input
        cannot corrupt the schedule.
        """
        self = cls.__new__(cls)
        arr = np.array(periods, dtype=float)
        arr.setflags(write=False)
        self._periods = arr
        self._total_length = None
        self._finish_times = None
        return self

    @classmethod
    def _from_readonly_view(cls, view: np.ndarray) -> "EpisodeSchedule":
        """Wrap a 1-D float view of an already read-only buffer (no copy).

        Internal constructor for the batch assembly paths, which carve
        tens of thousands of (mostly single-period) schedules out of one
        shared array per call; the caller guarantees validity and that the
        base buffer is read-only, so neither a copy nor a ``setflags`` is
        needed per schedule.
        """
        self = cls.__new__(cls)
        self._periods = view
        self._total_length = None
        self._finish_times = None
        return self

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    @property
    def periods(self) -> np.ndarray:
        """Read-only array of period lengths ``t_1, ..., t_m``."""
        return self._periods

    @property
    def num_periods(self) -> int:
        """Number of periods ``m`` in the schedule."""
        return int(self._periods.size)

    def __len__(self) -> int:
        return self.num_periods

    def __iter__(self) -> Iterator[float]:
        return iter(self._periods.tolist())

    def __getitem__(self, index: int) -> float:
        """Return the length of period ``index`` (0-based)."""
        return float(self._periods[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EpisodeSchedule):
            return NotImplemented
        return (self.num_periods == other.num_periods
                and bool(np.all(self._periods == other._periods)))

    def __hash__(self) -> int:
        return hash(self._periods.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.num_periods <= 8:
            body = ", ".join(f"{t:g}" for t in self._periods)
        else:
            head = ", ".join(f"{t:g}" for t in self._periods[:3])
            tail = ", ".join(f"{t:g}" for t in self._periods[-2:])
            body = f"{head}, ... , {tail}"
        return f"EpisodeSchedule([{body}], m={self.num_periods}, L={self.total_length:g})"

    # ------------------------------------------------------------------
    # Timing structure
    # ------------------------------------------------------------------
    @property
    def total_length(self) -> float:
        """Total scheduled time ``T_m = t_1 + ... + t_m`` (cached)."""
        if self._total_length is None:
            self._total_length = float(self._periods.sum())
        return self._total_length

    @property
    def finish_times(self) -> np.ndarray:
        """Prefix sums ``T_1, ..., T_m`` (the paper's period end times).

        Cached (the schedule is immutable) and read-only — adversaries and
        both simulation backends consult it on hot paths.
        """
        if self._finish_times is None:
            finishes = np.cumsum(self._periods)
            finishes.setflags(write=False)
            self._finish_times = finishes
        return self._finish_times

    @property
    def start_times(self) -> np.ndarray:
        """Period start times ``τ_1 = 0, τ_2 = T_1, ..., τ_m = T_{m-1}``."""
        finishes = self.finish_times
        starts = np.empty_like(finishes)
        starts[0] = 0.0
        starts[1:] = finishes[:-1]
        return starts

    def finish_time(self, k: int) -> float:
        """Return ``T_k`` — the end time of period ``k`` (1-based).

        ``finish_time(0)`` is defined as ``0`` for convenience, matching the
        paper's ``T_0 = 0``.
        """
        if k < 0 or k > self.num_periods:
            raise IndexError(f"period index {k} out of range [0, {self.num_periods}]")
        if k == 0:
            return 0.0
        return float(self._periods[:k].sum())

    def period_containing(self, time: float) -> int:
        """Return the 1-based index of the period containing ``time``.

        ``time`` must lie in ``[0, total_length)``.  Period ``k`` spans
        ``[T_{k-1}, T_k)``.
        """
        if time < 0.0 or time >= self.total_length:
            raise InvalidScheduleError(
                f"time {time!r} outside the episode [0, {self.total_length!r})"
            )
        finishes = self.finish_times
        return int(np.searchsorted(finishes, time, side="right")) + 1

    # ------------------------------------------------------------------
    # Productivity (Section 4.1)
    # ------------------------------------------------------------------
    def productive_mask(self, setup_cost: float) -> np.ndarray:
        """Boolean mask of periods whose length strictly exceeds ``c``."""
        return self._periods > float(setup_cost)

    def is_productive(self, setup_cost: float) -> bool:
        """True when all periods except possibly the last exceed ``c``.

        This is the paper's notion of a *productive* schedule (used in
        Theorem 4.1): only the terminal period of an episode may be "short".
        """
        if self.num_periods == 1:
            return True
        return bool(np.all(self._periods[:-1] > float(setup_cost)))

    def is_fully_productive(self, setup_cost: float) -> bool:
        """True when *every* period length strictly exceeds ``c``."""
        return bool(np.all(self._periods > float(setup_cost)))

    # ------------------------------------------------------------------
    # Work accounting helpers (the general machinery lives in core.work)
    # ------------------------------------------------------------------
    def work_if_uninterrupted(self, setup_cost: float) -> float:
        """Total work if the episode runs to completion: ``Σ (t_k ⊖ c)``."""
        return float(period_work_array(self._periods, setup_cost).sum())

    def work_of_prefix(self, num_completed: int, setup_cost: float) -> float:
        """Work of the first ``num_completed`` periods, ``Σ_{i<=k} (t_i ⊖ c)``."""
        if num_completed < 0 or num_completed > self.num_periods:
            raise IndexError(
                f"num_completed {num_completed} out of range [0, {self.num_periods}]"
            )
        if num_completed == 0:
            return 0.0
        return float(period_work_array(self._periods[:num_completed], setup_cost).sum())

    def overhead_if_uninterrupted(self, setup_cost: float) -> float:
        """Total communication overhead paid when no interrupt occurs.

        Periods shorter than ``c`` burn their whole length on (truncated)
        set-up, so the overhead of period ``t`` is ``min(t, c)``.
        """
        return float(np.minimum(self._periods, float(setup_cost)).sum())

    # ------------------------------------------------------------------
    # Derived schedules
    # ------------------------------------------------------------------
    def tail_from(self, first_period: int) -> Optional["EpisodeSchedule"]:
        """Return the sub-schedule starting at 1-based period ``first_period``.

        Used by the non-adaptive engine: after an interrupt in period ``i``
        the owner re-uses the tail ``t_{i+1}, ..., t_m``.  Returns ``None``
        when the tail is empty.
        """
        if first_period < 1 or first_period > self.num_periods + 1:
            raise IndexError(
                f"first_period {first_period} out of range [1, {self.num_periods + 1}]"
            )
        tail = self._periods[first_period - 1:]
        if tail.size == 0:
            return None
        return EpisodeSchedule(tail)

    def truncated_to(self, lifespan: float) -> Optional["EpisodeSchedule"]:
        """Clip the schedule so its total length does not exceed ``lifespan``.

        Whole periods beyond the lifespan are dropped; the period straddling
        the boundary is shortened.  Returns ``None`` when nothing fits
        (``lifespan <= 0``).
        """
        if lifespan <= 0.0:
            return None
        if self.total_length <= lifespan:
            return self
        kept: List[float] = []
        remaining = float(lifespan)
        for t in self._periods:
            if remaining <= 0.0:
                break
            kept.append(min(float(t), remaining))
            remaining -= float(t)
        return EpisodeSchedule(kept)

    def with_appended(self, extra_period: float) -> "EpisodeSchedule":
        """Return a new schedule with one extra period appended."""
        return EpisodeSchedule(np.concatenate([self._periods, [float(extra_period)]]))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_for_lifespan(self, lifespan: float,
                              *, require_exact: bool = True,
                              rel_tol: float = DEFAULT_REL_TOL,
                              abs_tol: float = 1e-6) -> None:
        """Check that the schedule is admissible for a residual lifespan.

        Parameters
        ----------
        lifespan:
            The residual lifespan ``L`` the episode must cover.
        require_exact:
            When true (the default, matching the paper's definition) the
            period lengths must sum to ``L`` up to tolerance; otherwise they
            must merely not exceed it.
        """
        total = self.total_length
        if total > lifespan and not is_close(total, lifespan, rel_tol=rel_tol, abs_tol=abs_tol):
            raise InvalidScheduleError(
                f"schedule length {total!r} exceeds the residual lifespan {lifespan!r}"
            )
        if require_exact and not is_close(total, lifespan, rel_tol=rel_tol, abs_tol=abs_tol):
            raise InvalidScheduleError(
                f"schedule length {total!r} does not cover the residual lifespan {lifespan!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_period(cls, lifespan: float) -> "EpisodeSchedule":
        """The 1-period schedule that the paper proves optimal for p = 0."""
        return cls([float(lifespan)])

    @classmethod
    def equal_periods(cls, lifespan: float, num_periods: int) -> "EpisodeSchedule":
        """Split ``lifespan`` into ``num_periods`` equal periods."""
        if num_periods <= 0:
            raise InvalidScheduleError(f"num_periods must be positive, got {num_periods}")
        return cls(np.full(num_periods, float(lifespan) / num_periods))

    @classmethod
    def from_period_lengths(cls, lengths: Sequence[float], lifespan: float,
                            *, absorb_remainder: bool = True) -> "EpisodeSchedule":
        """Build a schedule from target lengths, fitting it to ``lifespan``.

        Guideline formulas produce period lengths whose sum only
        approximately equals the lifespan (floors, closed-form constants).
        This constructor clips the sequence to the lifespan and, when
        ``absorb_remainder`` is set, stretches the final period so the
        schedule covers the lifespan exactly — the convention used by every
        scheduler in :mod:`repro.schedules`.
        """
        lifespan = float(lifespan)
        if lifespan <= 0.0:
            raise InvalidScheduleError(f"lifespan must be positive, got {lifespan!r}")
        kept: List[float] = []
        remaining = lifespan
        for raw in lengths:
            t = float(raw)
            if t <= 0.0:
                continue
            if remaining <= 0.0:
                break
            kept.append(min(t, remaining))
            remaining -= t
        if not kept:
            kept = [lifespan]
            remaining = 0.0
        if absorb_remainder and remaining > 0.0:
            kept[-1] += remaining
        return cls(kept)


@dataclass(frozen=True)
class EpisodeRecord:
    """What actually happened during one episode of a played opportunity."""

    #: The schedule the owner of A committed to at the start of the episode.
    schedule: EpisodeSchedule
    #: Residual lifespan at the start of the episode.
    residual_lifespan: float
    #: Interrupts the adversary still had available at the start.
    interrupts_remaining: int
    #: Episode time at which the interrupt occurred (``None`` = no interrupt).
    interrupt_time: Optional[float]
    #: Work accomplished during the episode.
    work: float
    #: Time actually consumed by the episode (interrupt time or full length).
    elapsed: float

    @property
    def was_interrupted(self) -> bool:
        """Whether the adversary interrupted this episode."""
        return self.interrupt_time is not None


@dataclass
class OpportunitySchedule:
    """The sequence of episodes of one played cycle-stealing opportunity.

    Produced by the game engine (:mod:`repro.core.game`); the aggregate work
    is the paper's ``W(Σ)`` from Section 2.2.
    """

    episodes: List[EpisodeRecord] = field(default_factory=list)

    def append(self, record: EpisodeRecord) -> None:
        """Add the record of one more episode."""
        self.episodes.append(record)

    @property
    def total_work(self) -> float:
        """Aggregate work over all episodes, ``W(Σ) = Σ_i W(S_i)``."""
        return float(sum(e.work for e in self.episodes))

    @property
    def total_elapsed(self) -> float:
        """Total lifespan consumed by the recorded episodes."""
        return float(sum(e.elapsed for e in self.episodes))

    @property
    def num_interrupts(self) -> int:
        """Number of episodes that ended with an interrupt."""
        return sum(1 for e in self.episodes if e.was_interrupted)

    @property
    def num_episodes(self) -> int:
        """Number of episodes played."""
        return len(self.episodes)

    def interrupt_times(self) -> Tuple[float, ...]:
        """Episode-relative interrupt times, in episode order."""
        return tuple(e.interrupt_time for e in self.episodes if e.interrupt_time is not None)

    def work_lost_to_interrupts(self, setup_cost: float) -> float:
        """Productive time nullified by interrupts (work that was in flight).

        For each interrupted episode this is the work the *current* period
        would have contributed had it completed — the quantity the draconian
        contract destroys.
        """
        lost = 0.0
        for e in self.episodes:
            if e.interrupt_time is None:
                continue
            k = e.schedule.period_containing(min(e.interrupt_time,
                                                 e.schedule.total_length * (1 - 1e-12)))
            start = e.schedule.finish_time(k - 1)
            in_flight = e.interrupt_time - start
            lost += positive_subtraction(in_flight, setup_cost)
        return lost
