"""Opportunity parameters of the guaranteed-output cycle-stealing model.

Section 2.1 of the paper characterises a cycle-stealing opportunity by two
quantities, plus the architecture-independent communication cost:

* ``lifespan`` (``U > 0``) — the number of time units during which the
  borrowed workstation B is available to the borrowing workstation A;
* ``max_interrupts`` (``p >= 0``) — an upper bound on the number of times
  B's owner may interrupt the usable lifespan (each interrupt kills all work
  in progress);
* ``setup_cost`` (``c >= 0``) — the cost of the paired communications that
  bracket every period (A sends work, B returns results).

:class:`CycleStealingParams` packages the three together, validates them and
exposes the handful of derived quantities the rest of the library keeps
needing (the zero-work threshold of Proposition 4.1(c), the normalised
lifespan ``U/c``, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from .exceptions import InvalidParameterError

__all__ = ["CycleStealingParams"]


@dataclass(frozen=True)
class CycleStealingParams:
    """Immutable description of one cycle-stealing opportunity.

    Parameters
    ----------
    lifespan:
        Usable lifespan ``U`` of the opportunity, in time units.  Must be a
        positive, finite real number.
    setup_cost:
        Communication set-up cost ``c`` charged to every period.  Must be a
        non-negative, finite real number.
    max_interrupts:
        Upper bound ``p`` on the number of owner interrupts.  Must be a
        non-negative integer.

    Examples
    --------
    >>> params = CycleStealingParams(lifespan=1000.0, setup_cost=1.0, max_interrupts=2)
    >>> params.normalized_lifespan
    1000.0
    >>> params.zero_work_threshold
    3.0
    """

    lifespan: float
    setup_cost: float
    max_interrupts: int

    def __post_init__(self) -> None:
        lifespan = float(self.lifespan)
        setup_cost = float(self.setup_cost)

        if not math.isfinite(lifespan) or lifespan <= 0.0:
            raise InvalidParameterError(
                f"lifespan must be a positive finite number, got {self.lifespan!r}"
            )
        if not math.isfinite(setup_cost) or setup_cost < 0.0:
            raise InvalidParameterError(
                f"setup_cost must be a non-negative finite number, got {self.setup_cost!r}"
            )
        if isinstance(self.max_interrupts, bool) or not isinstance(self.max_interrupts, (int,)):
            raise InvalidParameterError(
                f"max_interrupts must be an integer, got {self.max_interrupts!r}"
            )
        if self.max_interrupts < 0:
            raise InvalidParameterError(
                f"max_interrupts must be non-negative, got {self.max_interrupts!r}"
            )

        # Normalise to plain floats so downstream arithmetic never sees
        # numpy scalars or Decimals with surprising semantics.
        object.__setattr__(self, "lifespan", lifespan)
        object.__setattr__(self, "setup_cost", setup_cost)
        object.__setattr__(self, "max_interrupts", int(self.max_interrupts))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def normalized_lifespan(self) -> float:
        """Lifespan expressed in units of the set-up cost, ``U / c``.

        The guideline formulas in the paper depend on the parameters only
        through this ratio (and ``p``).  Returns ``inf`` when the set-up
        cost is zero (communication is free, so every guideline degenerates
        to "use many tiny periods").
        """
        if self.setup_cost == 0.0:
            return math.inf
        return self.lifespan / self.setup_cost

    @property
    def zero_work_threshold(self) -> float:
        """Lifespan at or below which no work can be guaranteed.

        Proposition 4.1(c): if ``U <= (p + 1) * c`` the adversary can kill
        every productive period, hence ``W^(p)[U] = 0``.
        """
        return (self.max_interrupts + 1) * self.setup_cost

    @property
    def can_guarantee_work(self) -> bool:
        """Whether any schedule can guarantee strictly positive work."""
        return self.lifespan > self.zero_work_threshold

    @property
    def trivial_upper_bound(self) -> float:
        """Work that would be achieved with free communication, ``U``."""
        return self.lifespan

    @property
    def single_period_work(self) -> float:
        """Work of the 1-period schedule when no interrupt occurs, ``U ⊖ c``."""
        return max(0.0, self.lifespan - self.setup_cost)

    # ------------------------------------------------------------------
    # Convenience constructors / transformers
    # ------------------------------------------------------------------
    def with_lifespan(self, lifespan: float) -> "CycleStealingParams":
        """Return a copy with a different usable lifespan."""
        return replace(self, lifespan=lifespan)

    def with_interrupts(self, max_interrupts: int) -> "CycleStealingParams":
        """Return a copy with a different interrupt budget."""
        return replace(self, max_interrupts=max_interrupts)

    def with_setup_cost(self, setup_cost: float) -> "CycleStealingParams":
        """Return a copy with a different communication set-up cost."""
        return replace(self, setup_cost=setup_cost)

    def after_interrupt(self, elapsed: float) -> "CycleStealingParams":
        """Parameters of the residual opportunity after an interrupt.

        An interrupt at episode time ``elapsed`` nullifies that much of the
        lifespan and consumes one interrupt from the budget (Section 2.2).

        Raises
        ------
        InvalidParameterError
            If no interrupts remain, or ``elapsed`` is negative, or the
            interrupt would not leave a positive residual lifespan.
        """
        if self.max_interrupts <= 0:
            raise InvalidParameterError("no interrupts remain in the budget")
        if elapsed < 0.0:
            raise InvalidParameterError(f"elapsed time must be non-negative, got {elapsed!r}")
        residual = self.lifespan - float(elapsed)
        if residual <= 0.0:
            raise InvalidParameterError(
                f"interrupt at time {elapsed!r} leaves no residual lifespan "
                f"(lifespan={self.lifespan!r})"
            )
        return CycleStealingParams(
            lifespan=residual,
            setup_cost=self.setup_cost,
            max_interrupts=self.max_interrupts - 1,
        )

    @classmethod
    def normalized(cls, normalized_lifespan: float, max_interrupts: int) -> "CycleStealingParams":
        """Create parameters with unit set-up cost and the given ``U/c``."""
        return cls(lifespan=float(normalized_lifespan), setup_cost=1.0,
                   max_interrupts=max_interrupts)

    def sweep_interrupts(self, max_p: int) -> Iterator["CycleStealingParams"]:
        """Yield copies of these parameters for ``p = 0, 1, ..., max_p``."""
        for p in range(max_p + 1):
            yield self.with_interrupts(p)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CycleStealingParams(U={self.lifespan:g}, c={self.setup_cost:g}, "
                f"p={self.max_interrupts})")
