"""Elementary arithmetic used throughout the guaranteed-output model.

The paper works with *positive subtraction* ``x ⊖ y = max(0, x − y)``
(Section 2.2, footnote 1): a period of length ``t`` accomplishes ``t ⊖ c``
units of work because the first ``c`` time units are consumed by the paired
communication set-up in which workstation A ships work to B and later
reclaims the results.

This module provides scalar and NumPy-vectorised versions of that operator
plus a couple of small numeric helpers (tolerant comparisons) used when
validating schedules built from floating-point formulas.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "positive_subtraction",
    "monus",
    "positive_subtraction_array",
    "period_work",
    "period_work_array",
    "is_close",
    "is_at_least",
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
]

#: Absolute tolerance used when comparing schedule lengths against lifespans.
DEFAULT_ABS_TOL: float = 1e-9

#: Relative tolerance used when comparing schedule lengths against lifespans.
DEFAULT_REL_TOL: float = 1e-9

Number = Union[int, float]


def positive_subtraction(x: Number, y: Number) -> float:
    """Return ``x ⊖ y = max(0, x − y)`` (the paper's "monus" operator).

    Parameters
    ----------
    x, y:
        Real numbers.  ``NaN`` inputs propagate as ``NaN`` so that callers
        notice malformed data instead of silently clamping it to zero.

    Examples
    --------
    >>> positive_subtraction(5.0, 2.0)
    3.0
    >>> positive_subtraction(1.0, 4.0)
    0.0
    """
    diff = float(x) - float(y)
    if np.isnan(diff):
        return diff
    return diff if diff > 0.0 else 0.0


# ``monus`` is the standard name for truncated subtraction; keep it as an
# alias because parts of the analysis code read better with it.
monus = positive_subtraction


def positive_subtraction_array(x, y):
    """Vectorised ``x ⊖ y`` for NumPy arrays (or array-likes).

    Broadcasting follows NumPy rules; the result is always a float array.
    """
    diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
    return np.maximum(diff, 0.0)


def period_work(length: Number, setup_cost: Number) -> float:
    """Work accomplished by an *uninterrupted* period of the given length.

    A period of length ``t`` supplies ``t ⊖ c`` units of work to the
    borrowed workstation: the set-up cost ``c`` brackets the period with the
    send/reclaim communications, and only the remainder is productive.
    A period that is interrupted accomplishes zero work regardless of its
    length; that case is handled by the work-accounting layer
    (:mod:`repro.core.work`), not here.
    """
    if setup_cost < 0:
        raise ValueError(f"setup_cost must be non-negative, got {setup_cost!r}")
    return positive_subtraction(length, setup_cost)


def period_work_array(lengths, setup_cost: Number):
    """Vectorised :func:`period_work` over an array of period lengths."""
    if setup_cost < 0:
        raise ValueError(f"setup_cost must be non-negative, got {setup_cost!r}")
    return positive_subtraction_array(lengths, setup_cost)


def is_close(a: Number, b: Number,
             rel_tol: float = DEFAULT_REL_TOL,
             abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant equality for schedule bookkeeping.

    Uses the same semantics as :func:`math.isclose` but with library-wide
    default tolerances, so every module compares float period lengths the
    same way.
    """
    a = float(a)
    b = float(b)
    return abs(a - b) <= max(rel_tol * max(abs(a), abs(b)), abs_tol)


def is_at_least(a: Number, b: Number,
                rel_tol: float = DEFAULT_REL_TOL,
                abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """Tolerant ``a >= b`` (true also when the two are merely close)."""
    return float(a) >= float(b) or is_close(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
