"""The cycle-stealing game: schedulers vs. adversaries (Section 4).

The paper views a cycle-stealing opportunity as a game.  The owner of
workstation A moves first by committing to an episode-schedule for the
current residual lifespan; the owner of workstation B (the adversary) then
either lets the episode run to completion or interrupts it, nullifying the
remaining lifespan of the interrupted period's prefix and sending the game
back to A with one fewer interrupt available.

This module provides:

* :class:`AdaptiveSchedulerProtocol` / :class:`NonAdaptiveSchedulerProtocol`
  / :class:`AdversaryProtocol` — structural typing contracts implemented by
  :mod:`repro.schedules` and :mod:`repro.adversary`.
* :func:`play_adaptive` and :func:`play_nonadaptive` — referee functions
  that play one full opportunity and return a :class:`GameResult`.
* :func:`guaranteed_adaptive_work` — a memoised minimax that computes the
  *worst-case* (guaranteed) work of an adaptive scheduler exactly, by
  letting the adversary explore every period-end interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from .arithmetic import positive_subtraction
from .exceptions import InvalidScheduleError, SchedulingError
from .params import CycleStealingParams
from .schedule import EpisodeRecord, EpisodeSchedule, OpportunitySchedule
from .work import episode_elapsed, episode_work

__all__ = [
    "AdaptiveSchedulerProtocol",
    "NonAdaptiveSchedulerProtocol",
    "AdversaryProtocol",
    "GameResult",
    "play_adaptive",
    "play_nonadaptive",
    "guaranteed_adaptive_work",
    "guaranteed_adaptive_work_reference",
]


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
@runtime_checkable
class AdaptiveSchedulerProtocol(Protocol):
    """A scheduler that re-plans after every interrupt.

    Implementations must be deterministic functions of
    ``(residual_lifespan, interrupts_remaining, setup_cost)`` for the
    guaranteed-work evaluation to be meaningful.
    """

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the episode-schedule for the given residual state."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class NonAdaptiveSchedulerProtocol(Protocol):
    """A scheduler that commits to a single schedule for the whole lifespan."""

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the single schedule used for the entire opportunity."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class AdversaryProtocol(Protocol):
    """The owner of workstation B deciding where (whether) to interrupt."""

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Return an episode-relative interrupt time, or ``None`` to abstain.

        The returned time must lie in ``[0, schedule.total_length)``.
        """
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GameResult:
    """Outcome of one played cycle-stealing opportunity."""

    #: Parameters of the opportunity that was played.
    params: CycleStealingParams
    #: Total work accomplished, the paper's ``W``.
    total_work: float
    #: Per-episode transcript.
    transcript: OpportunitySchedule

    @property
    def num_interrupts(self) -> int:
        """How many interrupts the adversary actually used."""
        return self.transcript.num_interrupts

    @property
    def num_episodes(self) -> int:
        """How many episodes were played."""
        return self.transcript.num_episodes

    @property
    def efficiency(self) -> float:
        """Fraction of the usable lifespan converted into work, ``W / U``."""
        return self.total_work / self.params.lifespan

    @property
    def loss(self) -> float:
        """Lifespan not converted into work, ``U − W``."""
        return self.params.lifespan - self.total_work


# ----------------------------------------------------------------------
# Referees
# ----------------------------------------------------------------------
def _checked_schedule(scheduler: AdaptiveSchedulerProtocol, residual: float,
                      interrupts_remaining: int, setup_cost: float) -> EpisodeSchedule:
    schedule = scheduler.episode_schedule(residual, interrupts_remaining, setup_cost)
    if not isinstance(schedule, EpisodeSchedule):
        raise SchedulingError(
            f"scheduler returned {type(schedule).__name__}, expected EpisodeSchedule"
        )
    try:
        schedule.validate_for_lifespan(residual, require_exact=False)
    except InvalidScheduleError as exc:
        raise SchedulingError(
            f"scheduler produced an inadmissible schedule for residual {residual!r}: {exc}"
        ) from exc
    return schedule


def play_adaptive(scheduler: AdaptiveSchedulerProtocol,
                  adversary: AdversaryProtocol,
                  params: CycleStealingParams) -> GameResult:
    """Play one opportunity with an adaptive scheduler.

    The scheduler is consulted at the start of the opportunity and again
    after every interrupt; the adversary is consulted once per episode and
    may return ``None`` (no interrupt) or an episode-relative time.

    Interrupts returned by the adversary once its budget is exhausted are
    ignored (the referee enforces the budget).
    """
    residual = params.lifespan
    interrupts_left = params.max_interrupts
    transcript = OpportunitySchedule()
    c = params.setup_cost

    while residual > 0.0:
        schedule = _checked_schedule(scheduler, residual, interrupts_left, c)
        interrupt: Optional[float] = None
        if interrupts_left > 0:
            interrupt = adversary.choose_interrupt(schedule, residual, interrupts_left, c)
            if interrupt is not None:
                interrupt = float(interrupt)
                if not (0.0 <= interrupt < schedule.total_length):
                    raise SchedulingError(
                        f"adversary chose interrupt time {interrupt!r} outside "
                        f"[0, {schedule.total_length!r})"
                    )
        work = episode_work(schedule, c, interrupt)
        elapsed = episode_elapsed(schedule, interrupt)
        transcript.append(EpisodeRecord(
            schedule=schedule,
            residual_lifespan=residual,
            interrupts_remaining=interrupts_left,
            interrupt_time=interrupt,
            work=work,
            elapsed=elapsed,
        ))
        if interrupt is None:
            # Episode ran to completion.  Whatever lifespan the schedule did
            # not cover (schedulers may under-commit by a rounding margin)
            # is unusable without a new episode, and no new episode starts
            # without an interrupt, so the opportunity ends here.
            break
        residual -= elapsed
        interrupts_left -= 1
        if residual <= 0.0:
            break

    return GameResult(params=params,
                      total_work=transcript.total_work,
                      transcript=transcript)


def play_nonadaptive(scheduler: NonAdaptiveSchedulerProtocol,
                     adversary: AdversaryProtocol,
                     params: CycleStealingParams,
                     *, extend_final_period: bool = True) -> GameResult:
    """Play one opportunity with a non-adaptive scheduler.

    The scheduler commits to a single schedule covering the lifespan.  After
    an interrupt in period ``i`` the owner of A obliviously continues with
    the tail ``t_{i+1}, ...``; after the ``p``-th interrupt the remainder of
    the lifespan is executed as one long period (the exception spelled out
    in Section 2.2).  The adversary is consulted before each remaining
    stretch with the tail it is facing.
    """
    base = scheduler.opportunity_schedule(params)
    if not isinstance(base, EpisodeSchedule):
        raise SchedulingError(
            f"scheduler returned {type(base).__name__}, expected EpisodeSchedule"
        )
    base.validate_for_lifespan(params.lifespan, require_exact=False)

    c = params.setup_cost
    lifespan = params.lifespan
    transcript = OpportunitySchedule()
    clock = 0.0
    interrupts_left = params.max_interrupts
    tail: Optional[EpisodeSchedule] = base

    while clock < lifespan:
        remaining = lifespan - clock
        if interrupts_left == 0 and params.max_interrupts > 0 and transcript.num_interrupts > 0:
            current = EpisodeSchedule.single_period(remaining)
        elif tail is None:
            if not extend_final_period:
                break
            current = EpisodeSchedule.single_period(remaining)
        else:
            current = tail.truncated_to(remaining)
            if current is None:
                break
            if extend_final_period and current.total_length < remaining:
                current = current.with_appended(remaining - current.total_length)

        interrupt: Optional[float] = None
        if interrupts_left > 0:
            interrupt = adversary.choose_interrupt(current, remaining, interrupts_left, c)
            if interrupt is not None:
                interrupt = float(interrupt)
                if not (0.0 <= interrupt < current.total_length):
                    raise SchedulingError(
                        f"adversary chose interrupt time {interrupt!r} outside "
                        f"[0, {current.total_length!r})"
                    )

        work = episode_work(current, c, interrupt)
        elapsed = episode_elapsed(current, interrupt)
        transcript.append(EpisodeRecord(
            schedule=current,
            residual_lifespan=remaining,
            interrupts_remaining=interrupts_left,
            interrupt_time=interrupt,
            work=work,
            elapsed=elapsed,
        ))
        if interrupt is None:
            break
        # Oblivious continuation: drop every period that has already begun
        # (completed or killed) and keep the rest.
        k = current.period_containing(min(interrupt, current.total_length * (1 - 1e-15))) \
            if current.total_length > 0 else 1
        tail = current.tail_from(k + 1)
        clock += elapsed
        interrupts_left -= 1

    return GameResult(params=params,
                      total_work=transcript.total_work,
                      transcript=transcript)


# ----------------------------------------------------------------------
# Exact guaranteed work of an adaptive scheduler (minimax referees)
# ----------------------------------------------------------------------
def guaranteed_adaptive_work_reference(scheduler: AdaptiveSchedulerProtocol,
                                       params: CycleStealingParams,
                                       *, residual_grain: float = 1e-6) -> float:
    """Exact worst-case work of an adaptive scheduler (recursive reference).

    Plays the minimax game: for the schedule the scheduler emits at each
    ``(residual lifespan, interrupts remaining)`` state, the adversary tries
    "no interrupt" and "interrupt at the last instant of period k" for every
    ``k`` (Observation (a): last instants dominate all other interrupt
    placements).  States are memoised on the residual lifespan rounded to
    ``residual_grain`` to keep the recursion polynomial; schedulers built
    from closed-form formulas revisit the same residuals constantly, so the
    memoisation is highly effective.

    This is the readable recursive formulation; the production referee is
    the level-ordered iterative :func:`guaranteed_adaptive_work`, which the
    property tests pin against this one to ``1e-9``.
    """
    c = params.setup_cost
    memo: Dict[Tuple[int, int], float] = {}

    def key(residual: float, p: int) -> Tuple[int, int]:
        return (int(round(residual / residual_grain)), p)

    def value(residual: float, p: int) -> float:
        if residual <= 0.0:
            return 0.0
        if p == 0:
            # Adversary is out of interrupts: scheduler gets the residual
            # uninterrupted.  Every sensible scheduler uses one long period,
            # but we honour whatever it returns.
            schedule = _checked_schedule(scheduler, residual, 0, c)
            return schedule.work_if_uninterrupted(c)
        k = key(residual, p)
        if k in memo:
            return memo[k]
        schedule = _checked_schedule(scheduler, residual, p, c)
        # Option: no interrupt.
        best_for_adversary = schedule.work_if_uninterrupted(c)
        # Options: interrupt at the last instant of period j.
        finishes = schedule.finish_times
        prefix_work = 0.0
        for j in range(1, schedule.num_periods + 1):
            continuation = value(residual - float(finishes[j - 1]), p - 1)
            candidate = prefix_work + continuation
            if candidate < best_for_adversary:
                best_for_adversary = candidate
            prefix_work += positive_subtraction(schedule[j - 1], c)
        memo[k] = best_for_adversary
        return best_for_adversary

    return value(params.lifespan, params.max_interrupts)


def _checked_schedules_batch(scheduler: AdaptiveSchedulerProtocol,
                             residuals: Sequence[float], p: int,
                             c: float) -> List[EpisodeSchedule]:
    """One referee-validated schedule per residual, batched when possible.

    Schedulers exposing ``episode_schedule_batch`` (the guideline
    schedulers share one backward prefix across a whole batch) amortise
    their construction over every state of a level; each schedule still
    passes exactly the checks of :func:`_checked_schedule`.
    """
    build = getattr(scheduler, "episode_schedule_batch", None)
    if build is not None:
        schedules = list(build(list(residuals), p, c))
    else:
        schedules = [scheduler.episode_schedule(residual, p, c)
                     for residual in residuals]
    for residual, schedule in zip(residuals, schedules):
        if not isinstance(schedule, EpisodeSchedule):
            raise SchedulingError(
                f"scheduler returned {type(schedule).__name__}, "
                "expected EpisodeSchedule")
        try:
            schedule.validate_for_lifespan(residual, require_exact=False)
        except InvalidScheduleError as exc:
            raise SchedulingError(
                f"scheduler produced an inadmissible schedule for residual "
                f"{residual!r}: {exc}") from exc
    return schedules


def guaranteed_adaptive_work(scheduler: AdaptiveSchedulerProtocol,
                             params: CycleStealingParams,
                             *, residual_grain: float = 1e-6) -> float:
    """Exact worst-case work of an adaptive scheduler (vectorized kernel).

    Semantically identical to :func:`guaranteed_adaptive_work_reference`
    (the same minimax game over the same memoised state lattice, pinned to
    ``1e-9`` by the property tests), but evaluated iteratively and in
    array passes instead of by per-state Python recursion:

    * the state lattice is discovered **level by level** — all states with
      ``q`` interrupts remaining sit on level ``q``, and every adversary
      option from level ``q`` lands on level ``q − 1``, so one downward
      discovery sweep followed by one upward evaluation sweep visits each
      state exactly once;
    * per level, all episode-schedules are built through one
      ``episode_schedule_batch`` call when the scheduler provides it (the
      guideline schedulers share one backward prefix across the batch);
    * per state, the adversary's minimisation over "interrupt at the last
      instant of period j" is one array pass — a ``cumsum`` of the period
      works (the same sequential accumulation order as the reference's
      ``+=`` loop, hence bit-identical partial sums) plus a gather of the
      continuation values from the already-evaluated level below.

    States are deduplicated exactly like the reference memo: levels
    ``q >= 1`` on the residual rounded to ``residual_grain`` (keeping the
    first-reached representative, which the level order preserves), level
    ``0`` on the exact residual (the reference never memoises ``p = 0``).
    On gap sweeps over the guideline schedulers this kernel is an order of
    magnitude faster than the reference (see
    ``benchmarks/results/referee_speedup.*``).
    """
    c = params.setup_cost
    p_max = params.max_interrupts
    lifespan = params.lifespan
    if lifespan <= 0.0:
        return 0.0

    # ------------------------------------------------------------------
    # Phase 1: discover the state lattice level by level, downwards.
    # levels[q] holds the representative residuals of level q in
    # first-reach order; children[q][i] the residuals reachable from state
    # i of level q (one per period last-instant, untruncated).
    # ------------------------------------------------------------------
    levels: List[List[float]] = [[] for _ in range(p_max + 1)]
    children: List[List[np.ndarray]] = [[] for _ in range(p_max + 1)]
    schedules: List[List[EpisodeSchedule]] = [[] for _ in range(p_max + 1)]

    levels[p_max] = [lifespan]
    for q in range(p_max, 0, -1):
        frontier = levels[q]
        schedules[q] = _checked_schedules_batch(scheduler, frontier, q, c)
        seen: set = set()
        next_level: List[float] = []
        child_arrays: List[np.ndarray] = []
        for residual, schedule in zip(frontier, schedules[q]):
            child_res = residual - schedule.finish_times
            child_arrays.append(child_res)
            # Dedup matching the reference memo: rounded key on q-1 >= 1,
            # the exact residual on level 0 (never memoised there).
            if q - 1 >= 1:
                keys = np.rint(child_res / residual_grain).astype(np.int64)
                for res, key in zip(child_res.tolist(), keys.tolist()):
                    if res > 0.0 and key not in seen:
                        seen.add(key)
                        next_level.append(res)
            else:
                for res in child_res.tolist():
                    if res > 0.0 and res not in seen:
                        seen.add(res)
                        next_level.append(res)
        children[q] = child_arrays
        levels[q - 1] = next_level

    # ------------------------------------------------------------------
    # Phase 2: evaluate upwards from level 0.
    # ------------------------------------------------------------------
    level0 = levels[0]
    schedules[0] = _checked_schedules_batch(scheduler, level0, 0, c)
    values = np.asarray([schedule.work_if_uninterrupted(c)
                         for schedule in schedules[0]])
    # Sorted lookup keys of the level below: exact residuals for level 0,
    # rounded integer keys for levels >= 1.
    below_keys = np.asarray(level0)
    order = np.argsort(below_keys, kind="stable")
    below_keys, below_values = below_keys[order], values[order]

    for q in range(1, p_max + 1):
        level_values = np.empty(len(levels[q]))
        for i, schedule in enumerate(schedules[q]):
            child_res = children[q][i]
            alive = child_res > 0.0
            continuation = np.zeros(child_res.size)
            if alive.any():
                lookup = (child_res[alive] if q - 1 == 0 else
                          np.rint(child_res[alive] / residual_grain).astype(np.int64))
                continuation[alive] = below_values[
                    np.searchsorted(below_keys, lookup)]
            # Adversary options: prefix work banked before period j plus
            # the continuation value, against "no interrupt" as baseline.
            period_works = np.maximum(schedule.periods - c, 0.0)
            prefix = np.empty(period_works.size)
            prefix[0] = 0.0
            np.cumsum(period_works[:-1], out=prefix[1:])
            level_values[i] = min(schedule.work_if_uninterrupted(c),
                                  float(np.min(prefix + continuation)))
        if q == p_max:
            return float(level_values[0])
        keys = np.rint(np.asarray(levels[q]) / residual_grain).astype(np.int64)
        order = np.argsort(keys, kind="stable")
        below_keys, below_values = keys[order], level_values[order]

    # p_max == 0: the level-0 value of the full lifespan is the answer.
    return float(values[level0.index(lifespan)])
