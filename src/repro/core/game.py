"""The cycle-stealing game: schedulers vs. adversaries (Section 4).

The paper views a cycle-stealing opportunity as a game.  The owner of
workstation A moves first by committing to an episode-schedule for the
current residual lifespan; the owner of workstation B (the adversary) then
either lets the episode run to completion or interrupts it, nullifying the
remaining lifespan of the interrupted period's prefix and sending the game
back to A with one fewer interrupt available.

This module provides:

* :class:`AdaptiveSchedulerProtocol` / :class:`NonAdaptiveSchedulerProtocol`
  / :class:`AdversaryProtocol` — structural typing contracts implemented by
  :mod:`repro.schedules` and :mod:`repro.adversary`.
* :func:`play_adaptive` and :func:`play_nonadaptive` — referee functions
  that play one full opportunity and return a :class:`GameResult`.
* :func:`guaranteed_adaptive_work` — a memoised minimax that computes the
  *worst-case* (guaranteed) work of an adaptive scheduler exactly, by
  letting the adversary explore every period-end interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

from .arithmetic import positive_subtraction
from .exceptions import InvalidScheduleError, SchedulingError
from .params import CycleStealingParams
from .schedule import EpisodeRecord, EpisodeSchedule, OpportunitySchedule
from .work import episode_elapsed, episode_work

__all__ = [
    "AdaptiveSchedulerProtocol",
    "NonAdaptiveSchedulerProtocol",
    "AdversaryProtocol",
    "GameResult",
    "play_adaptive",
    "play_nonadaptive",
    "guaranteed_adaptive_work",
]


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
@runtime_checkable
class AdaptiveSchedulerProtocol(Protocol):
    """A scheduler that re-plans after every interrupt.

    Implementations must be deterministic functions of
    ``(residual_lifespan, interrupts_remaining, setup_cost)`` for the
    guaranteed-work evaluation to be meaningful.
    """

    def episode_schedule(self, residual_lifespan: float, interrupts_remaining: int,
                         setup_cost: float) -> EpisodeSchedule:
        """Return the episode-schedule for the given residual state."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class NonAdaptiveSchedulerProtocol(Protocol):
    """A scheduler that commits to a single schedule for the whole lifespan."""

    def opportunity_schedule(self, params: CycleStealingParams) -> EpisodeSchedule:
        """Return the single schedule used for the entire opportunity."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class AdversaryProtocol(Protocol):
    """The owner of workstation B deciding where (whether) to interrupt."""

    def choose_interrupt(self, schedule: EpisodeSchedule, residual_lifespan: float,
                         interrupts_remaining: int, setup_cost: float) -> Optional[float]:
        """Return an episode-relative interrupt time, or ``None`` to abstain.

        The returned time must lie in ``[0, schedule.total_length)``.
        """
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GameResult:
    """Outcome of one played cycle-stealing opportunity."""

    #: Parameters of the opportunity that was played.
    params: CycleStealingParams
    #: Total work accomplished, the paper's ``W``.
    total_work: float
    #: Per-episode transcript.
    transcript: OpportunitySchedule

    @property
    def num_interrupts(self) -> int:
        """How many interrupts the adversary actually used."""
        return self.transcript.num_interrupts

    @property
    def num_episodes(self) -> int:
        """How many episodes were played."""
        return self.transcript.num_episodes

    @property
    def efficiency(self) -> float:
        """Fraction of the usable lifespan converted into work, ``W / U``."""
        return self.total_work / self.params.lifespan

    @property
    def loss(self) -> float:
        """Lifespan not converted into work, ``U − W``."""
        return self.params.lifespan - self.total_work


# ----------------------------------------------------------------------
# Referees
# ----------------------------------------------------------------------
def _checked_schedule(scheduler: AdaptiveSchedulerProtocol, residual: float,
                      interrupts_remaining: int, setup_cost: float) -> EpisodeSchedule:
    schedule = scheduler.episode_schedule(residual, interrupts_remaining, setup_cost)
    if not isinstance(schedule, EpisodeSchedule):
        raise SchedulingError(
            f"scheduler returned {type(schedule).__name__}, expected EpisodeSchedule"
        )
    try:
        schedule.validate_for_lifespan(residual, require_exact=False)
    except InvalidScheduleError as exc:
        raise SchedulingError(
            f"scheduler produced an inadmissible schedule for residual {residual!r}: {exc}"
        ) from exc
    return schedule


def play_adaptive(scheduler: AdaptiveSchedulerProtocol,
                  adversary: AdversaryProtocol,
                  params: CycleStealingParams) -> GameResult:
    """Play one opportunity with an adaptive scheduler.

    The scheduler is consulted at the start of the opportunity and again
    after every interrupt; the adversary is consulted once per episode and
    may return ``None`` (no interrupt) or an episode-relative time.

    Interrupts returned by the adversary once its budget is exhausted are
    ignored (the referee enforces the budget).
    """
    residual = params.lifespan
    interrupts_left = params.max_interrupts
    transcript = OpportunitySchedule()
    c = params.setup_cost

    while residual > 0.0:
        schedule = _checked_schedule(scheduler, residual, interrupts_left, c)
        interrupt: Optional[float] = None
        if interrupts_left > 0:
            interrupt = adversary.choose_interrupt(schedule, residual, interrupts_left, c)
            if interrupt is not None:
                interrupt = float(interrupt)
                if not (0.0 <= interrupt < schedule.total_length):
                    raise SchedulingError(
                        f"adversary chose interrupt time {interrupt!r} outside "
                        f"[0, {schedule.total_length!r})"
                    )
        work = episode_work(schedule, c, interrupt)
        elapsed = episode_elapsed(schedule, interrupt)
        transcript.append(EpisodeRecord(
            schedule=schedule,
            residual_lifespan=residual,
            interrupts_remaining=interrupts_left,
            interrupt_time=interrupt,
            work=work,
            elapsed=elapsed,
        ))
        if interrupt is None:
            # Episode ran to completion.  Whatever lifespan the schedule did
            # not cover (schedulers may under-commit by a rounding margin)
            # is unusable without a new episode, and no new episode starts
            # without an interrupt, so the opportunity ends here.
            break
        residual -= elapsed
        interrupts_left -= 1
        if residual <= 0.0:
            break

    return GameResult(params=params,
                      total_work=transcript.total_work,
                      transcript=transcript)


def play_nonadaptive(scheduler: NonAdaptiveSchedulerProtocol,
                     adversary: AdversaryProtocol,
                     params: CycleStealingParams,
                     *, extend_final_period: bool = True) -> GameResult:
    """Play one opportunity with a non-adaptive scheduler.

    The scheduler commits to a single schedule covering the lifespan.  After
    an interrupt in period ``i`` the owner of A obliviously continues with
    the tail ``t_{i+1}, ...``; after the ``p``-th interrupt the remainder of
    the lifespan is executed as one long period (the exception spelled out
    in Section 2.2).  The adversary is consulted before each remaining
    stretch with the tail it is facing.
    """
    base = scheduler.opportunity_schedule(params)
    if not isinstance(base, EpisodeSchedule):
        raise SchedulingError(
            f"scheduler returned {type(base).__name__}, expected EpisodeSchedule"
        )
    base.validate_for_lifespan(params.lifespan, require_exact=False)

    c = params.setup_cost
    lifespan = params.lifespan
    transcript = OpportunitySchedule()
    clock = 0.0
    interrupts_left = params.max_interrupts
    tail: Optional[EpisodeSchedule] = base

    while clock < lifespan:
        remaining = lifespan - clock
        if interrupts_left == 0 and params.max_interrupts > 0 and transcript.num_interrupts > 0:
            current = EpisodeSchedule.single_period(remaining)
        elif tail is None:
            if not extend_final_period:
                break
            current = EpisodeSchedule.single_period(remaining)
        else:
            current = tail.truncated_to(remaining)
            if current is None:
                break
            if extend_final_period and current.total_length < remaining:
                current = current.with_appended(remaining - current.total_length)

        interrupt: Optional[float] = None
        if interrupts_left > 0:
            interrupt = adversary.choose_interrupt(current, remaining, interrupts_left, c)
            if interrupt is not None:
                interrupt = float(interrupt)
                if not (0.0 <= interrupt < current.total_length):
                    raise SchedulingError(
                        f"adversary chose interrupt time {interrupt!r} outside "
                        f"[0, {current.total_length!r})"
                    )

        work = episode_work(current, c, interrupt)
        elapsed = episode_elapsed(current, interrupt)
        transcript.append(EpisodeRecord(
            schedule=current,
            residual_lifespan=remaining,
            interrupts_remaining=interrupts_left,
            interrupt_time=interrupt,
            work=work,
            elapsed=elapsed,
        ))
        if interrupt is None:
            break
        # Oblivious continuation: drop every period that has already begun
        # (completed or killed) and keep the rest.
        k = current.period_containing(min(interrupt, current.total_length * (1 - 1e-15))) \
            if current.total_length > 0 else 1
        tail = current.tail_from(k + 1)
        clock += elapsed
        interrupts_left -= 1

    return GameResult(params=params,
                      total_work=transcript.total_work,
                      transcript=transcript)


# ----------------------------------------------------------------------
# Exact guaranteed work of an adaptive scheduler (memoised minimax)
# ----------------------------------------------------------------------
def guaranteed_adaptive_work(scheduler: AdaptiveSchedulerProtocol,
                             params: CycleStealingParams,
                             *, residual_grain: float = 1e-6) -> float:
    """Exact worst-case work of an adaptive scheduler.

    Plays the minimax game: for the schedule the scheduler emits at each
    ``(residual lifespan, interrupts remaining)`` state, the adversary tries
    "no interrupt" and "interrupt at the last instant of period k" for every
    ``k`` (Observation (a): last instants dominate all other interrupt
    placements).  States are memoised on the residual lifespan rounded to
    ``residual_grain`` to keep the recursion polynomial; schedulers built
    from closed-form formulas revisit the same residuals constantly, so the
    memoisation is highly effective.

    Complexity is ``O(#distinct states × m)`` scheduler calls where ``m`` is
    the per-episode period count; for the guideline schedulers and lifespans
    up to ``10^5 c`` this completes in well under a second.
    """
    c = params.setup_cost
    memo: Dict[Tuple[int, int], float] = {}

    def key(residual: float, p: int) -> Tuple[int, int]:
        return (int(round(residual / residual_grain)), p)

    def value(residual: float, p: int) -> float:
        if residual <= 0.0:
            return 0.0
        if p == 0:
            # Adversary is out of interrupts: scheduler gets the residual
            # uninterrupted.  Every sensible scheduler uses one long period,
            # but we honour whatever it returns.
            schedule = _checked_schedule(scheduler, residual, 0, c)
            return schedule.work_if_uninterrupted(c)
        k = key(residual, p)
        if k in memo:
            return memo[k]
        schedule = _checked_schedule(scheduler, residual, p, c)
        # Option: no interrupt.
        best_for_adversary = schedule.work_if_uninterrupted(c)
        # Options: interrupt at the last instant of period j.
        finishes = schedule.finish_times
        prefix_work = 0.0
        for j in range(1, schedule.num_periods + 1):
            continuation = value(residual - float(finishes[j - 1]), p - 1)
            candidate = prefix_work + continuation
            if candidate < best_for_adversary:
                best_for_adversary = candidate
            prefix_work += positive_subtraction(schedule[j - 1], c)
        memo[k] = best_for_adversary
        return best_for_adversary

    return value(params.lifespan, params.max_interrupts)
