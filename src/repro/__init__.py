"""repro — guaranteed-output cycle-stealing in networks of workstations.

A from-scratch reproduction of

    Arnold L. Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in
    Networks of Workstations, II: On Maximizing Guaranteed Output",
    IPPS/SPDP 1999.

The package is organised around the paper's structure:

* :mod:`repro.core` — the formal model: opportunity parameters ``(U, c, p)``,
  episode schedules, interrupt patterns, work accounting and the
  scheduler-vs-adversary game.
* :mod:`repro.schedules` — the paper's non-adaptive and adaptive guidelines,
  the exact p ≤ 1 optimum, the DP-optimal scheduler and practical baselines.
* :mod:`repro.adversary` — worst-case, heuristic and stochastic owners.
* :mod:`repro.dp` — exact dynamic programming for ``W^(p)[L]``.
* :mod:`repro.analysis` — closed-form bounds, Table 1/2 generators,
  optimality gaps and parameter sweeps.
* :mod:`repro.expected` — the companion expected-output submodel.
* :mod:`repro.simulator` / :mod:`repro.workloads` — a discrete-event NOW
  simulator plus task bags, owner traces and canned scenarios.
* :mod:`repro.experiments` — the experiment harness: parallel sweep
  orchestration, Monte-Carlo replication over stochastic owners, and a
  two-level (LRU + on-disk) cache of solved DP tables.
* :mod:`repro.reporting` — ASCII/CSV rendering of results.
* :mod:`repro.catalog` — the cross-run analytics index and query API.

Quick start
-----------
>>> from repro import CycleStealingParams
>>> from repro.schedules import EqualizingAdaptiveScheduler
>>> params = CycleStealingParams(lifespan=10_000, setup_cost=1.0, max_interrupts=2)
>>> scheduler = EqualizingAdaptiveScheduler()
>>> scheduler.guaranteed_work(params) > 9_500   # worst case over all interrupts
True

Stable facade
-------------
``repro`` re-exports the one-blessed-way entry points — the supported
surface documented in ``docs/api.md``: the model types above plus
``run_spec`` / ``resume_run`` / ``Run`` / ``RunColumns`` (the run store),
``Catalog`` / ``CatalogError`` / ``RunHandle`` / ``export_frame`` (cross-run
analytics), ``ExperimentSpec`` / ``load_spec`` / ``parse_spec`` /
``spec_digest`` / ``spec_summary`` (declarative specs),
``replicate_point`` (Monte-Carlo), and the ``SCHEDULERS`` /
``ADVERSARIES`` / ``SCENARIO_FAMILIES`` registries.  These resolve
lazily (PEP 562), so ``import repro`` stays as cheap as the core model.
"""

from .core import (
    CycleStealingError,
    CycleStealingParams,
    EpisodeSchedule,
    GameResult,
    InvalidInterruptError,
    InvalidParameterError,
    InvalidScheduleError,
    OpportunitySchedule,
    PeriodEndInterrupts,
    SchedulingError,
    SimulationError,
    TimedInterrupts,
    guaranteed_adaptive_work,
    play_adaptive,
    play_nonadaptive,
    positive_subtraction,
)

__version__ = "1.0.0"

#: The lazily re-exported half of the facade: name -> defining submodule.
#: Resolved on first attribute access (PEP 562) so ``import repro`` does
#: not drag in numpy-heavy experiment machinery, and so the run store /
#: catalog (which import back into :mod:`repro.specs`) cannot form an
#: import cycle with this package.
_LAZY_EXPORTS = {
    # run store
    "run_spec": "repro.runstore",
    "resume_run": "repro.runstore",
    "Run": "repro.runstore",
    "RunStore": "repro.runstore",
    "RunColumns": "repro.runstore",
    "ROW_SOURCES": "repro.runstore",
    # cross-run catalog
    "Catalog": "repro.catalog",
    "CatalogError": "repro.catalog",
    "RunHandle": "repro.catalog",
    "export_frame": "repro.catalog",
    # declarative specs
    "ExperimentSpec": "repro.specs",
    "load_spec": "repro.specs",
    "parse_spec": "repro.specs",
    "spec_digest": "repro.specs",
    "spec_summary": "repro.specs",
    # Monte-Carlo replication
    "replicate_point": "repro.experiments.montecarlo",
    # registries
    "SCHEDULERS": "repro.registry",
    "ADVERSARIES": "repro.registry",
    "SCENARIO_FAMILIES": "repro.registry",
}

__all__ = [
    "__version__",
    "CycleStealingParams",
    "EpisodeSchedule",
    "OpportunitySchedule",
    "PeriodEndInterrupts",
    "TimedInterrupts",
    "GameResult",
    "play_adaptive",
    "play_nonadaptive",
    "guaranteed_adaptive_work",
    "positive_subtraction",
    "CycleStealingError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "InvalidInterruptError",
    "SchedulingError",
    "SimulationError",
] + sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
