"""repro — guaranteed-output cycle-stealing in networks of workstations.

A from-scratch reproduction of

    Arnold L. Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in
    Networks of Workstations, II: On Maximizing Guaranteed Output",
    IPPS/SPDP 1999.

The package is organised around the paper's structure:

* :mod:`repro.core` — the formal model: opportunity parameters ``(U, c, p)``,
  episode schedules, interrupt patterns, work accounting and the
  scheduler-vs-adversary game.
* :mod:`repro.schedules` — the paper's non-adaptive and adaptive guidelines,
  the exact p ≤ 1 optimum, the DP-optimal scheduler and practical baselines.
* :mod:`repro.adversary` — worst-case, heuristic and stochastic owners.
* :mod:`repro.dp` — exact dynamic programming for ``W^(p)[L]``.
* :mod:`repro.analysis` — closed-form bounds, Table 1/2 generators,
  optimality gaps and parameter sweeps.
* :mod:`repro.expected` — the companion expected-output submodel.
* :mod:`repro.simulator` / :mod:`repro.workloads` — a discrete-event NOW
  simulator plus task bags, owner traces and canned scenarios.
* :mod:`repro.experiments` — the experiment harness: parallel sweep
  orchestration, Monte-Carlo replication over stochastic owners, and a
  two-level (LRU + on-disk) cache of solved DP tables.
* :mod:`repro.reporting` — ASCII/CSV rendering of results.

Quick start
-----------
>>> from repro import CycleStealingParams
>>> from repro.schedules import EqualizingAdaptiveScheduler
>>> params = CycleStealingParams(lifespan=10_000, setup_cost=1.0, max_interrupts=2)
>>> scheduler = EqualizingAdaptiveScheduler()
>>> scheduler.guaranteed_work(params) > 9_500   # worst case over all interrupts
True
"""

from .core import (
    CycleStealingError,
    CycleStealingParams,
    EpisodeSchedule,
    GameResult,
    InvalidInterruptError,
    InvalidParameterError,
    InvalidScheduleError,
    OpportunitySchedule,
    PeriodEndInterrupts,
    SchedulingError,
    SimulationError,
    TimedInterrupts,
    guaranteed_adaptive_work,
    play_adaptive,
    play_nonadaptive,
    positive_subtraction,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CycleStealingParams",
    "EpisodeSchedule",
    "OpportunitySchedule",
    "PeriodEndInterrupts",
    "TimedInterrupts",
    "GameResult",
    "play_adaptive",
    "play_nonadaptive",
    "guaranteed_adaptive_work",
    "positive_subtraction",
    "CycleStealingError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "InvalidInterruptError",
    "SchedulingError",
    "SimulationError",
]
