"""Extract optimal episode-schedules from a solved :class:`ValueTable`.

The DP stores, for every state ``(L, q)``, a maximising first-period length.
An optimal *episode-schedule* for that state is obtained by repeatedly
following the "let it run" branch: take the optimal first period ``t``,
then the optimal first period of ``(L − t, q)``, and so on until the
residual lifespan is exhausted.  (The adversary's interrupt sends the game
to ``q − 1``, which is a different row of the table; that is what the
adaptive game referee does at run time.)
"""

from __future__ import annotations

from typing import List

from ..core.exceptions import InvalidParameterError
from ..core.schedule import EpisodeSchedule
from .value import ValueTable

__all__ = ["extract_episode_schedule", "extract_period_lengths"]


def extract_period_lengths(table: ValueTable, lifespan: int,
                           max_interrupts: int) -> List[int]:
    """Integer period lengths of an optimal episode-schedule for ``(L, p)``."""
    L = int(lifespan)
    p = int(max_interrupts)
    if L < 0 or L > table.max_lifespan:
        raise InvalidParameterError(
            f"lifespan {L} outside the solved range [0, {table.max_lifespan}]"
        )
    if p < 0 or p > table.max_interrupts:
        raise InvalidParameterError(
            f"interrupt budget {p} outside the solved range [0, {table.max_interrupts}]"
        )
    lengths: List[int] = []
    while L > 0:
        t = table.optimal_first_period(p, L)
        t = max(1, min(t, L))
        lengths.append(int(t))
        L -= t
    return lengths


def extract_episode_schedule(table: ValueTable, lifespan: int,
                             max_interrupts: int) -> EpisodeSchedule:
    """Optimal episode-schedule for the state ``(lifespan, max_interrupts)``."""
    lengths = extract_period_lengths(table, lifespan, max_interrupts)
    if not lengths:
        raise InvalidParameterError("cannot extract a schedule for a zero lifespan")
    return EpisodeSchedule(lengths)
