"""Exact dynamic-programming solution of the guaranteed-output game.

* :func:`repro.dp.solve` / :func:`repro.dp.solve_fast` /
  :func:`repro.dp.solve_reference` — build the value table ``W^(p)[L]``.
* :class:`repro.dp.ValueTable` — the solved table, queryable and usable as a
  work oracle.
* :func:`repro.dp.extract_episode_schedule` — optimal episode-schedules.
"""

from .schedule_extract import extract_episode_schedule, extract_period_lengths
from .solver import discretize_params, solve, solve_fast, solve_for_params
from .value import ValueTable, solve_reference

__all__ = [
    "ValueTable",
    "solve",
    "solve_fast",
    "solve_reference",
    "solve_for_params",
    "discretize_params",
    "extract_episode_schedule",
    "extract_period_lengths",
]
