"""Fast exact solver for the ``W^(p)[L]`` dynamic program.

:func:`solve_fast` computes exactly the same table as
:func:`repro.dp.value.solve_reference` in ``O(p·L)`` total work — one
amortised-constant-time step per state — using two structural facts about
the recurrence (both verified by the property tests in the test-suite).
Substituting ``s = L − t`` (the lifespan left after the first period), the
adversary's two options become

* "let it run":  ``g(s) = (L − s − c) + W^(p)[s]`` — **non-increasing**
  in ``s`` because ``W^(p)`` is 1-Lipschitz;
* "interrupt":   ``h(s) = W^(p−1)[s]`` — **non-decreasing** in ``s``.

The maximum of ``min(g, h)`` is attained where the curves cross, i.e. at
the largest ``s`` with ``W^(p)[s] − s − W^(p−1)[s] ≥ c − L`` (or one past
it).  The left-hand side is a non-increasing function of ``s`` that does
not depend on ``L``, while the threshold ``c − L`` falls by one per unit of
``L`` — so the crossing index is non-decreasing in ``L`` and a single
forward-moving pointer locates it for every state of a row in ``O(L)``
amortised time.  (Earlier revisions used a per-state ``O(log L)`` binary
search and, before that, the reference ``O(L)`` scan.)  Period lengths
below ``c`` are dominated by the single candidate ``W^(p)[L − 1]``
(wasting one time unit), which is checked separately.  The ``p = 0`` base
row and the final table assembly are vectorised with NumPy; the pointer
sweep itself runs on plain Python lists, which profile measurably faster
than per-element ``ndarray`` indexing.

:func:`solve` is the public entry point choosing between the two solvers,
and :func:`solve_for_params` adapts real-valued
:class:`~repro.core.params.CycleStealingParams` to the integer grid.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.exceptions import InvalidParameterError
from ..core.params import CycleStealingParams
from .value import ValueTable, _validate_inputs, solve_reference

__all__ = ["solve", "solve_fast", "solve_for_params", "discretize_params"]


def solve_fast(max_lifespan: int, setup_cost: int, max_interrupts: int) -> ValueTable:
    """Solve the recurrence with the monotone-crossing pointer (``O(p·L)``)."""
    _validate_inputs(max_lifespan, setup_cost, max_interrupts)
    L_max = int(max_lifespan)
    c = int(setup_cost)
    p_max = int(max_interrupts)

    work = np.maximum(np.arange(L_max + 1, dtype=np.int64) - c, 0)
    values = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)
    first = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)

    values[0] = work
    first[0] = np.arange(L_max + 1)

    # Shortest first period the s-scan must consider: periods shorter than
    # max(c, 1) are dominated by the waste-one-unit candidate W^(q)[L − 1].
    cm = max(c, 1)

    for q in range(1, p_max + 1):
        prev = values[q - 1].tolist()
        row = [0] * (L_max + 1)
        row_first = [0] * (L_max + 1)
        # diff[s] = W^(q)[s] − s − W^(q−1)[s]: non-increasing in s (the row
        # is 1-Lipschitz, the previous row non-decreasing), independent of
        # L.  The crossing is the largest s with diff[s] >= c − L.
        diff = [0] * (L_max + 1)
        s_ptr = 0
        for L in range(1, L_max + 1):
            # Candidate 1: waste one time unit (dominates every t <= c; for
            # c >= 1 its exact value is W^(q)[L − 1], for c = 0 that is a
            # safe lower bound and t = 1 is re-examined by the scan below).
            best_val = row[L - 1]
            best_t = 1

            s_max = L - cm
            if s_max >= 0:
                threshold = c - L
                while s_ptr < s_max and diff[s_ptr + 1] >= threshold:
                    s_ptr += 1
                # At the crossing the "interrupt" branch is the minimum.
                val = prev[s_ptr]
                if val > best_val:
                    best_val = val
                    best_t = L - s_ptr
                # One past the crossing the "let it run" branch is.
                s_past = s_ptr + 1
                if s_past <= s_max:
                    val = (L - s_past - c) + row[s_past]
                    if val > best_val:
                        best_val = val
                        best_t = L - s_past
            row[L] = best_val
            row_first[L] = best_t
            diff[L] = best_val - L - prev[L]
        values[q] = row
        first[q] = row_first

    return ValueTable(setup_cost=c, values=values, first_periods=first)


def solve(max_lifespan: int, setup_cost: int, max_interrupts: int,
          *, method: str = "fast") -> ValueTable:
    """Solve the dynamic program with the chosen method (``fast``/``reference``)."""
    if method == "fast":
        return solve_fast(max_lifespan, setup_cost, max_interrupts)
    if method == "reference":
        return solve_reference(max_lifespan, setup_cost, max_interrupts)
    raise InvalidParameterError(f"unknown DP method {method!r}")


def discretize_params(params: CycleStealingParams, *, grain: float = None):
    """Map real-valued parameters onto the integer grid used by the DP.

    Returns ``(max_lifespan, setup_cost, scale)`` such that
    ``lifespan ≈ max_lifespan * scale`` and ``setup_cost ≈ c_int * scale``.
    When ``grain`` is omitted the set-up cost itself is used as the grid
    unit if it is (close to) an integer divisor of the lifespan; otherwise
    one-hundredth of the set-up cost is used, which keeps the relative
    discretisation error of every period below 1%.
    """
    if grain is None:
        if params.setup_cost > 0 and float(params.setup_cost).is_integer() \
                and float(params.lifespan).is_integer():
            grain = 1.0
        elif params.setup_cost > 0:
            grain = params.setup_cost / 100.0
        else:
            grain = max(params.lifespan / 10_000.0, 1e-9)
    if grain <= 0:
        raise InvalidParameterError(f"grain must be positive, got {grain!r}")
    c_int = int(round(params.setup_cost / grain))
    L_int = int(math.floor(params.lifespan / grain))
    if L_int < 1:
        raise InvalidParameterError(
            f"lifespan {params.lifespan!r} is below one grid unit ({grain!r})"
        )
    return L_int, c_int, grain


def solve_for_params(params: CycleStealingParams, *, grain: float = None,
                     method: str = "fast") -> ValueTable:
    """Solve the DP for (a discretisation of) the given opportunity.

    The returned table is expressed in grid units; use the accompanying
    ``grain`` from :func:`discretize_params` to convert back, or simply work
    with integer-valued parameters (the benchmarks do) so the table is exact.
    """
    L_int, c_int, _ = discretize_params(params, grain=grain)
    return solve(L_int, c_int, params.max_interrupts, method=method)
