"""Fast exact solver for the ``W^(p)[L]`` dynamic program.

:func:`solve_fast` computes exactly the same table as
:func:`repro.dp.value.solve_reference` but replaces the ``O(L)`` inner
maximisation with an ``O(log L)`` binary search, using two structural facts
about the recurrence (both verified by the property tests in
``tests/dp/test_structure.py``):

* the "let it run" branch ``g(t) = (t ⊖ c) + W^(p)[L − t]`` is
  non-decreasing in ``t`` on ``t >= c`` because ``W^(p)`` is 1-Lipschitz;
* the "interrupt" branch ``h(t) = W^(p−1)[L − t]`` is non-increasing in
  ``t`` because ``W^(p−1)`` is non-decreasing in the lifespan.

The maximum of ``min(g, h)`` over ``t ∈ [c, L]`` is therefore attained at
the crossing of the two curves, located by bisection; period lengths below
``c`` are dominated by the single candidate ``W^(p)[L − 1]`` (wasting one
time unit), which is checked separately.

:func:`solve` is the public entry point choosing between the two solvers,
and :func:`solve_for_params` adapts real-valued
:class:`~repro.core.params.CycleStealingParams` to the integer grid.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.exceptions import InvalidParameterError
from ..core.params import CycleStealingParams
from .value import ValueTable, _validate_inputs, solve_reference

__all__ = ["solve", "solve_fast", "solve_for_params", "discretize_params"]


def solve_fast(max_lifespan: int, setup_cost: int, max_interrupts: int) -> ValueTable:
    """Solve the recurrence with the bisection inner step (``O(p·L·log L)``)."""
    _validate_inputs(max_lifespan, setup_cost, max_interrupts)
    L_max = int(max_lifespan)
    c = int(setup_cost)
    p_max = int(max_interrupts)

    work = np.maximum(np.arange(L_max + 1, dtype=np.int64) - c, 0)
    values = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)
    first = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)

    values[0] = work
    first[0] = np.arange(L_max + 1)

    for q in range(1, p_max + 1):
        row = values[q]
        prev = values[q - 1]
        row_first = first[q]
        for L in range(1, L_max + 1):
            best_val, best_t = _best_first_period(row, prev, work, L, c)
            row[L] = best_val
            row_first[L] = best_t

    return ValueTable(setup_cost=c, values=values, first_periods=first)


def _best_first_period(row: np.ndarray, prev: np.ndarray, work: np.ndarray,
                       L: int, c: int):
    """Maximise ``min(g, h)`` over the first-period length for one state."""
    def g(t: int) -> int:
        return int(work[t] + row[L - t])

    def h(t: int) -> int:
        return int(prev[L - t])

    # Candidate 1: waste one time unit (covers every t <= c, all of which are
    # dominated by t = 1 because g(t) = W^(q)[L - t] is largest at t = 1 and
    # is always the smaller branch there).
    best_val = int(row[L - 1])
    best_t = 1

    lo = max(1, min(c, L))
    hi = L
    if lo <= hi:
        # Find the smallest t in [lo, hi] with g(t) >= h(t); min(g, h) peaks
        # at that crossing (or at hi when g stays below h).
        a, b = lo, hi
        if g(b) < h(b):
            cross = b + 1  # no crossing: g below h everywhere
        else:
            while a < b:
                mid = (a + b) // 2
                if g(mid) >= h(mid):
                    b = mid
                else:
                    a = mid + 1
            cross = a
        for t in (cross - 1, cross):
            if lo <= t <= hi:
                val = min(g(t), h(t))
                if val > best_val:
                    best_val = val
                    best_t = t
        if cross > hi:
            val = min(g(hi), h(hi))
            if val > best_val:
                best_val = val
                best_t = hi
    return best_val, best_t


def solve(max_lifespan: int, setup_cost: int, max_interrupts: int,
          *, method: str = "fast") -> ValueTable:
    """Solve the dynamic program with the chosen method (``fast``/``reference``)."""
    if method == "fast":
        return solve_fast(max_lifespan, setup_cost, max_interrupts)
    if method == "reference":
        return solve_reference(max_lifespan, setup_cost, max_interrupts)
    raise InvalidParameterError(f"unknown DP method {method!r}")


def discretize_params(params: CycleStealingParams, *, grain: float = None):
    """Map real-valued parameters onto the integer grid used by the DP.

    Returns ``(max_lifespan, setup_cost, scale)`` such that
    ``lifespan ≈ max_lifespan * scale`` and ``setup_cost ≈ c_int * scale``.
    When ``grain`` is omitted the set-up cost itself is used as the grid
    unit if it is (close to) an integer divisor of the lifespan; otherwise
    one-hundredth of the set-up cost is used, which keeps the relative
    discretisation error of every period below 1%.
    """
    if grain is None:
        if params.setup_cost > 0 and float(params.setup_cost).is_integer() \
                and float(params.lifespan).is_integer():
            grain = 1.0
        elif params.setup_cost > 0:
            grain = params.setup_cost / 100.0
        else:
            grain = max(params.lifespan / 10_000.0, 1e-9)
    if grain <= 0:
        raise InvalidParameterError(f"grain must be positive, got {grain!r}")
    c_int = int(round(params.setup_cost / grain))
    L_int = int(math.floor(params.lifespan / grain))
    if L_int < 1:
        raise InvalidParameterError(
            f"lifespan {params.lifespan!r} is below one grid unit ({grain!r})"
        )
    return L_int, c_int, grain


def solve_for_params(params: CycleStealingParams, *, grain: float = None,
                     method: str = "fast") -> ValueTable:
    """Solve the DP for (a discretisation of) the given opportunity.

    The returned table is expressed in grid units; use the accompanying
    ``grain`` from :func:`discretize_params` to convert back, or simply work
    with integer-valued parameters (the benchmarks do) so the table is exact.
    """
    L_int, c_int, _ = discretize_params(params, grain=grain)
    return solve(L_int, c_int, params.max_interrupts, method=method)
