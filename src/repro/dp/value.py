r"""Exact optimal guaranteed work ``W^(p)[L]`` by dynamic programming.

The paper characterises optimal adaptive schedules through the bootstrapping
game of Section 4: with ``p`` interrupts remaining and residual lifespan
``L``, the owner of A picks the next period length ``t``; the adversary
either interrupts it at its last instant (sending the game to the state
``(L − t, p − 1)`` with no work banked from this period) or lets it complete
(banking ``t ⊖ c`` and continuing at ``(L − t, p)``).  Because nothing is
learnt during an uninterrupted episode, choosing periods one at a time is
equivalent to committing a whole episode-schedule up front, so the value of
this game *is* the paper's ``W^(p)[L]``.

On an integer time grid the game solves exactly by dynamic programming:

.. math::

   W^{(0)}[L] = L ⊖ c, \qquad
   W^{(p)}[L] = \max_{1 \le t \le L} \min\bigl( (t ⊖ c) + W^{(p)}[L − t],\;
                                                W^{(p-1)}[L − t] \bigr).

:class:`ValueTable` stores the full table together with the maximising first
period for every state, from which optimal episode-schedules are extracted
(:mod:`repro.dp.schedule_extract`).  Two solvers produce it:

* :func:`solve_reference` — the recurrence exactly as written, with the
  inner maximisation vectorised in NumPy (``O(p·L²)`` work);
* :func:`solve_fast` (in :mod:`repro.dp.solver`) — exploits the fact that
  the "let it run" branch is non-decreasing and the "interrupt" branch is
  non-increasing in ``t``, so the inner maximisation reduces to a binary
  search (``O(p·L·log L)``).

The two are verified against each other in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.exceptions import InvalidParameterError
from ..core.params import CycleStealingParams

__all__ = ["ValueTable", "solve_reference"]


@dataclass(frozen=True)
class ValueTable:
    """The solved table ``W^(q)[L]`` for ``q <= p`` and integer ``L <= L_max``.

    Attributes
    ----------
    setup_cost:
        Integer set-up cost ``c`` the table was solved for.
    values:
        Array of shape ``(p + 1, L_max + 1)``; ``values[q, L]`` is
        ``W^(q)[L]``.
    first_periods:
        Same shape; ``first_periods[q, L]`` is a maximising first period
        length for the state ``(L, q)`` (``L`` itself for ``q = 0``).
    """

    setup_cost: int
    values: np.ndarray
    first_periods: np.ndarray

    # ------------------------------------------------------------------
    @property
    def max_interrupts(self) -> int:
        """Largest interrupt budget covered by the table."""
        return self.values.shape[0] - 1

    @property
    def max_lifespan(self) -> int:
        """Largest lifespan covered by the table."""
        return self.values.shape[1] - 1

    def value(self, max_interrupts: int, lifespan: int) -> float:
        """Return ``W^(p)[L]`` for integer arguments within the table."""
        p, L = self._check(max_interrupts, lifespan)
        return float(self.values[p, L])

    def optimal_first_period(self, max_interrupts: int, lifespan: int) -> int:
        """A maximising first period length for the state ``(L, p)``."""
        p, L = self._check(max_interrupts, lifespan)
        return int(self.first_periods[p, L])

    def work_curve(self, max_interrupts: int) -> np.ndarray:
        """The whole row ``W^(p)[0..L_max]`` (read-only view)."""
        p, _ = self._check(max_interrupts, 0)
        row = self.values[p]
        row.setflags(write=False)
        return row

    def _check(self, max_interrupts: int, lifespan: int):
        p = int(max_interrupts)
        L = int(lifespan)
        if not (0 <= p <= self.max_interrupts):
            raise InvalidParameterError(
                f"interrupt budget {p} outside the solved range [0, {self.max_interrupts}]"
            )
        if not (0 <= L <= self.max_lifespan):
            raise InvalidParameterError(
                f"lifespan {L} outside the solved range [0, {self.max_lifespan}]"
            )
        return p, L

    # ------------------------------------------------------------------
    def as_oracle(self) -> Callable[[float, int, float], float]:
        """Adapt the table to the ``oracle(L, q, c)`` signature.

        The returned callable floors real-valued residual lifespans to the
        grid (a lower bound on the true value, hence safe for the equalising
        construction) and validates that the requested set-up cost matches
        the one the table was solved for.
        """
        def oracle(residual: float, interrupts: int, setup_cost: float) -> float:
            if abs(float(setup_cost) - float(self.setup_cost)) > 1e-9:
                raise InvalidParameterError(
                    f"oracle solved for c={self.setup_cost}, asked for c={setup_cost}"
                )
            if residual <= 0.0:
                return 0.0
            L = min(int(residual), self.max_lifespan)
            q = min(int(interrupts), self.max_interrupts)
            return float(self.values[q, L])

        return oracle

    def params(self, max_interrupts: int = None, lifespan: int = None) -> CycleStealingParams:
        """Convenience: build matching :class:`CycleStealingParams`."""
        return CycleStealingParams(
            lifespan=float(self.max_lifespan if lifespan is None else lifespan),
            setup_cost=float(self.setup_cost),
            max_interrupts=self.max_interrupts if max_interrupts is None else int(max_interrupts),
        )


def _validate_inputs(max_lifespan: int, setup_cost: int, max_interrupts: int) -> None:
    if int(max_lifespan) != max_lifespan or max_lifespan < 1:
        raise InvalidParameterError(f"max_lifespan must be a positive integer, got {max_lifespan!r}")
    if int(setup_cost) != setup_cost or setup_cost < 0:
        raise InvalidParameterError(f"setup_cost must be a non-negative integer, got {setup_cost!r}")
    if int(max_interrupts) != max_interrupts or max_interrupts < 0:
        raise InvalidParameterError(
            f"max_interrupts must be a non-negative integer, got {max_interrupts!r}"
        )


def solve_reference(max_lifespan: int, setup_cost: int, max_interrupts: int) -> ValueTable:
    """Solve the Bellman recurrence exactly as written (``O(p·L²)``).

    Parameters
    ----------
    max_lifespan:
        Largest integer lifespan ``L_max`` to tabulate.
    setup_cost:
        Integer set-up cost ``c >= 0``.
    max_interrupts:
        Largest interrupt budget ``p`` to tabulate.
    """
    _validate_inputs(max_lifespan, setup_cost, max_interrupts)
    L_max = int(max_lifespan)
    c = int(setup_cost)
    p_max = int(max_interrupts)

    work = np.maximum(np.arange(L_max + 1, dtype=np.int64) - c, 0)
    values = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)
    first = np.zeros((p_max + 1, L_max + 1), dtype=np.int64)

    values[0] = work
    first[0] = np.arange(L_max + 1)

    for q in range(1, p_max + 1):
        row = values[q]
        prev = values[q - 1]
        row_first = first[q]
        for L in range(1, L_max + 1):
            # For first-period length t = 1..L:
            #   "let it run"  -> (t ⊖ c) + W^(q)[L − t]
            #   "interrupt"   -> W^(q-1)[L − t]
            run_branch = work[1:L + 1] + row[L - 1::-1]
            kill_branch = prev[L - 1::-1]
            adversary = np.minimum(run_branch, kill_branch)
            best_t = int(np.argmax(adversary)) + 1
            row[L] = adversary[best_t - 1]
            row_first[L] = best_t

    return ValueTable(setup_cost=c, values=values, first_periods=first)
