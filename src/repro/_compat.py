"""Deprecation shims for the consolidated public API.

The blessed entry points (:func:`repro.runstore.run_spec`,
:func:`repro.runstore.resume_run`,
:func:`repro.experiments.montecarlo.replicate_point`, …) take their
config-bearing parameters — backend, aggregation, variance, jobs, seeds —
**keyword-only**, so call sites stay readable and the spec/CLI/API triples
cannot silently drift when a parameter is inserted.  Legacy positional
callers are not broken cold, though: :func:`keyword_only` maps the extra
positional arguments onto the declared keyword names in order and emits a
:class:`DeprecationWarning` naming the exact replacement spelling.
"""

from __future__ import annotations

import functools
import warnings

__all__ = ["keyword_only"]


def keyword_only(*names: str, lead: int):
    """Tolerate legacy positional use of now-keyword-only parameters.

    ``lead`` is how many genuinely positional parameters the function
    keeps; any further positional arguments are mapped onto ``names`` in
    declaration order, each with a :class:`DeprecationWarning` that spells
    out the keyword form to migrate to.  Passing a parameter both
    positionally and by keyword stays a :class:`TypeError`, exactly as the
    plain signature would raise.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if len(args) > lead:
                extra, args = args[lead:], args[:lead]
                if len(extra) > len(names):
                    raise TypeError(
                        f"{func.__name__}() takes {lead} positional "
                        f"argument(s) (plus, deprecated, {list(names)}) but "
                        f"{lead + len(extra)} were given")
                for name, value in zip(names, extra):
                    if name in kwargs:
                        raise TypeError(
                            f"{func.__name__}() got multiple values for "
                            f"argument {name!r}")
                    warnings.warn(
                        f"passing {name!r} to {func.__name__}() positionally "
                        f"is deprecated and will become an error; pass "
                        f"{name}=... instead (the parameter is keyword-only)",
                        DeprecationWarning, stacklevel=2)
                    kwargs[name] = value
            return func(*args, **kwargs)

        return wrapper

    return decorate
