"""Canonical NOW cycle-stealing scenarios used by the examples and benchmarks.

Each scenario bundles the three ingredients a simulation needs — borrowed
workstation contracts (with owner interrupt traces), a data-parallel task
bag, and the analytic parameters of the guarantee — into one object, so the
examples read like the situations the paper's introduction describes.

Every generator is a *parameterised scenario family*: calling it with a
different ``seed`` yields an independent random instance with the same
shape, which is exactly what the Monte-Carlo layer in
:mod:`repro.experiments.montecarlo` samples.  :data:`SCENARIO_FAMILIES`
maps stable names to the generators for the CLI and the experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.params import CycleStealingParams
from ..core.sampling import reseed
from ..registry import SCENARIO_FAMILIES
from ..simulator.workstation import BorrowedWorkstation
from .owner_activity import (
    bursty_interrupts,
    diurnal_rate,
    inhomogeneous_poisson_interrupts,
    poisson_interrupts,
    poisson_interrupts_batch,
    workday_interrupts,
)
from .tasks import TaskBag, lognormal_tasks, uniform_tasks

__all__ = [
    "Scenario",
    "laptop_evening",
    "overnight_desktops",
    "shared_lab",
    "bursty_office_day",
    "heterogeneous_cluster",
    "flaky_owners",
    "diurnal_owners",
    "mixed_fleet",
    "SCENARIO_FAMILIES",
]


@dataclass
class Scenario:
    """A ready-to-run cycle-stealing situation."""

    #: Human-readable name.
    name: str
    #: The borrowed workstations (contracts plus owner traces).
    workstations: List[BorrowedWorkstation]
    #: The data-parallel workload to burn through.
    task_bag: TaskBag
    #: Analytic parameters of the *first* (or only) contract, for comparing
    #: simulated output against the guaranteed-output theory.
    params: CycleStealingParams

    def describe(self) -> str:
        """One-line summary used by the examples."""
        return (f"{self.name}: {len(self.workstations)} workstation(s), "
                f"{self.task_bag.total_tasks} tasks, "
                f"U={self.params.lifespan:g}, c={self.params.setup_cost:g}, "
                f"p={self.params.max_interrupts}")


def laptop_evening(*, lifespan: float = 240.0, setup_cost: float = 2.0,
                   interrupt_budget: int = 2, seed: Optional[int] = 7) -> Scenario:
    """A colleague's laptop borrowed for an evening.

    The laptop may be unplugged (killing everything) a couple of times —
    exactly the draconian contract the paper motivates.  The owner trace is
    a small number of Poisson reclaims.
    """
    interrupts = poisson_interrupts(lifespan, rate=interrupt_budget / lifespan,
                                    seed=seed, max_interrupts=interrupt_budget)
    ws = BorrowedWorkstation(workstation_id="laptop-0", lifespan=lifespan,
                             setup_cost=setup_cost, interrupt_budget=interrupt_budget,
                             owner_interrupts=interrupts)
    bag = uniform_tasks(4000, low=0.05, high=0.15, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="laptop-evening", workstations=[ws], task_bag=bag, params=params)


def overnight_desktops(*, num_machines: int = 8, lifespan: float = 600.0,
                       setup_cost: float = 1.0, interrupt_budget: int = 1,
                       seed: Optional[int] = 11) -> Scenario:
    """A pool of office desktops borrowed overnight.

    Most owners never come back before morning; a few do once.  Machine
    speeds are mildly heterogeneous.
    """
    machine_seeds = [None if seed is None else seed + i
                     for i in range(num_machines)]
    traces = poisson_interrupts_batch(lifespan, 0.5 / lifespan, machine_seeds,
                                      max_interrupts=interrupt_budget)
    workstations = [
        BorrowedWorkstation(
            workstation_id=f"desktop-{i}", lifespan=lifespan, setup_cost=setup_cost,
            interrupt_budget=interrupt_budget, owner_interrupts=trace,
            speed=1.0 + 0.1 * (i % 3))
        for i, trace in enumerate(traces)]
    bag = lognormal_tasks(20_000, median=0.2, sigma=0.4, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="overnight-desktops", workstations=workstations,
                    task_bag=bag, params=params)


def shared_lab(*, num_machines: int = 4, lifespan: float = 480.0,
               setup_cost: float = 3.0, interrupt_budget: int = 4,
               seed: Optional[int] = 23) -> Scenario:
    """Daytime borrowing of shared lab machines with bursty owner activity.

    Owners wander back in clusters; the negotiated interrupt budget is
    generous but can still be exceeded, which is exactly the regime where
    the guaranteed-output guarantees degrade gracefully rather than hold
    exactly.
    """
    workstations: List[BorrowedWorkstation] = []
    for i in range(num_machines):
        machine_seed = None if seed is None else seed + 13 * i
        if i % 2 == 0:
            interrupts = bursty_interrupts(lifespan, num_bursts=2, burst_size=2,
                                           burst_spread=4.0, seed=machine_seed)
        else:
            interrupts = workday_interrupts(lifespan, day_length=lifespan,
                                            busy_fraction=0.3, rate_when_busy=0.01,
                                            seed=machine_seed)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"lab-{i}", lifespan=lifespan, setup_cost=setup_cost,
            interrupt_budget=interrupt_budget, owner_interrupts=interrupts))
    bag = uniform_tasks(30_000, low=0.02, high=0.2, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="shared-lab", workstations=workstations, task_bag=bag,
                    params=params)


def bursty_office_day(*, num_machines: int = 6, day_length: float = 480.0,
                      setup_cost: float = 2.0, interrupt_budget: int = 3,
                      seed: Optional[int] = 31) -> Scenario:
    """A full office day of borrowing: coffee-break bursts on a workday rhythm.

    Owners are quiet in long stretches but come back in clusters (stand-up,
    lunch, end-of-day), so each machine's trace is the *union* of a workday
    background process and two or three tight bursts.  This is the regime
    where adaptive guidelines shine: interrupts arrive bunched, and a
    re-planned episode after the burst recovers most of the quiet tail.
    """
    rng = np.random.default_rng(seed)
    workstations: List[BorrowedWorkstation] = []
    for i in range(num_machines):
        machine_seed = None if seed is None else reseed(seed, rng.integers(0, 2**31 - 1))
        background = workday_interrupts(day_length, day_length=day_length,
                                        busy_fraction=0.25, rate_when_busy=0.008,
                                        seed=machine_seed)
        burst_seed = None if machine_seed is None else machine_seed + 1
        bursts = bursty_interrupts(day_length, num_bursts=3, burst_size=2,
                                   burst_spread=6.0, seed=burst_seed)
        trace = sorted(background + bursts)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"office-{i}", lifespan=day_length,
            setup_cost=setup_cost, interrupt_budget=interrupt_budget,
            owner_interrupts=trace))
    bag = lognormal_tasks(25_000, median=0.15, sigma=0.5, seed=seed)
    params = CycleStealingParams(lifespan=day_length, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="bursty-office-day", workstations=workstations,
                    task_bag=bag, params=params)


def heterogeneous_cluster(*, num_machines: int = 12, lifespan: float = 720.0,
                          interrupt_budget: int = 2, base_setup_cost: float = 1.0,
                          speed_sigma: float = 0.6,
                          seed: Optional[int] = 37) -> Scenario:
    """A cluster whose machines differ widely in speed *and* set-up cost.

    Speeds are log-normal (a few machines several times faster than the
    median); slower machines also sit on slower links, so their per-period
    set-up cost scales up.  The family stresses exactly the dimension the
    single-opportunity analysis abstracts away — how to spread one task bag
    over contracts of very different quality.
    """
    rng = np.random.default_rng(seed)
    machine_seeds: List[Optional[int]] = []
    speeds: List[float] = []
    for _ in range(num_machines):
        # Seed and speed draws interleave on one generator stream; the order
        # is part of the family's deterministic identity.
        machine_seeds.append(None if seed is None
                             else reseed(seed, rng.integers(0, 2**31 - 1)))
        speeds.append(float(np.exp(rng.normal(0.0, speed_sigma))))
    traces = poisson_interrupts_batch(lifespan, interrupt_budget / lifespan,
                                      machine_seeds,
                                      max_interrupts=interrupt_budget)
    workstations = []
    for i, (speed, trace) in enumerate(zip(speeds, traces)):
        # Slow machines pay proportionally more set-up (slower round trips),
        # bounded away from zero so the DP grid stays sane.
        setup_cost = max(0.25, base_setup_cost / math.sqrt(speed))
        workstations.append(BorrowedWorkstation(
            workstation_id=f"node-{i}", lifespan=lifespan,
            setup_cost=setup_cost, interrupt_budget=interrupt_budget,
            owner_interrupts=trace, speed=speed))
    bag = lognormal_tasks(60_000, median=0.25, sigma=0.6, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=base_setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="heterogeneous-cluster", workstations=workstations,
                    task_bag=bag, params=params)


def flaky_owners(*, num_machines: int = 5, lifespan: float = 360.0,
                 setup_cost: float = 1.5, interrupt_budget: int = 1,
                 breach_factor: float = 4.0,
                 seed: Optional[int] = 41) -> Scenario:
    """Owners who break the negotiated contract.

    Each contract was negotiated for ``interrupt_budget`` reclaims, but the
    actual traces contain roughly ``breach_factor`` times as many: the
    guarantee no longer applies and the interesting question — which the
    paper raises and the simulator answers — is how *gracefully* each
    guideline degrades once the premise fails.
    """
    if breach_factor < 1.0:
        raise ValueError(f"breach_factor must be >= 1, got {breach_factor!r}")
    rng = np.random.default_rng(seed)
    machine_seeds = [None if seed is None else reseed(seed, rng.integers(0, 2**31 - 1))
                    for _ in range(num_machines)]
    rate = breach_factor * max(interrupt_budget, 1) / lifespan
    traces = poisson_interrupts_batch(lifespan, rate, machine_seeds)
    workstations = [
        BorrowedWorkstation(
            workstation_id=f"flaky-{i}", lifespan=lifespan,
            setup_cost=setup_cost, interrupt_budget=interrupt_budget,
            owner_interrupts=trace)
        for i, trace in enumerate(traces)]
    bag = uniform_tasks(15_000, low=0.05, high=0.25, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="flaky-owners", workstations=workstations,
                    task_bag=bag, params=params)


def diurnal_owners(*, num_machines: int = 6, num_days: float = 2.0,
                   day_length: float = 480.0, setup_cost: float = 2.0,
                   interrupt_budget: int = 3, base_rate_scale: float = 0.2,
                   peak_rate_scale: float = 3.0,
                   seed: Optional[int] = 43) -> Scenario:
    """Owners on a day/night rhythm: inhomogeneous-Poisson reclaims.

    Reclaim pressure is not constant in a real building — it swells towards
    mid-day and nearly vanishes at night.  Each machine's trace is drawn
    from an inhomogeneous Poisson process (Lewis-Shedler thinning, see
    :func:`repro.workloads.owner_activity.inhomogeneous_poisson_interrupts`)
    whose rate follows a sinusoidal diurnal profile: the *average* rate is
    calibrated so roughly ``interrupt_budget`` reclaims land per machine
    over the lifespan, but they bunch into the daytime peaks — the
    inhomogeneity the constant-rate families cannot express.

    Units and notation: the lifespan ``U = num_days * day_length`` and
    ``setup_cost`` (the paper's ``c``) are in the same time units;
    ``interrupt_budget`` is the contract's ``p`` (a count).
    """
    if num_days <= 0.0:
        raise ValueError(f"num_days must be positive, got {num_days!r}")
    lifespan = float(num_days) * float(day_length)
    mean_rate = max(interrupt_budget, 1) / lifespan
    scale_mid = 0.5 * (base_rate_scale + peak_rate_scale)
    base_rate = mean_rate * base_rate_scale / scale_mid
    peak_rate = mean_rate * peak_rate_scale / scale_mid
    rng = np.random.default_rng(seed)
    workstations: List[BorrowedWorkstation] = []
    for i in range(num_machines):
        machine_seed = None if seed is None else reseed(seed, rng.integers(0, 2**31 - 1))
        # Owners peak at slightly different times of day (staggered lunches).
        peak_time = 0.5 * day_length * (1.0 + 0.2 * ((i % 3) - 1))
        trace = inhomogeneous_poisson_interrupts(
            lifespan, diurnal_rate(base_rate, peak_rate,
                                   day_length=day_length, peak_time=peak_time),
            max_rate=peak_rate, seed=machine_seed)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"diurnal-{i}", lifespan=lifespan,
            setup_cost=setup_cost, interrupt_budget=interrupt_budget,
            owner_interrupts=trace))
    bag = lognormal_tasks(20_000, median=0.2, sigma=0.5, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="diurnal-owners", workstations=workstations,
                    task_bag=bag, params=params)


def mixed_fleet(*, lifespan: float = 480.0, seed: Optional[int] = 47,
                num_laptops: int = 2, num_desktops: int = 4,
                num_lab: int = 2) -> Scenario:
    """A mixed fleet: laptops, desktops and lab machines under one task bag.

    Real borrowing pools are not uniform — this family combines the three
    classic contract shapes into one scenario: fragile laptops (high set-up
    cost ``c``, tiny interrupt budget ``p``, Poisson owners), steady
    desktops (cheap set-up, owners mostly absent, slightly heterogeneous
    speeds) and busy lab machines (generous budget, bursty owners).  One
    shared task bag is spread across all contracts, so the interesting
    question is how a guideline balances very different ``(U, c, p)``
    triples at once.  All times (``lifespan``, set-up costs, interrupt
    times) share the same unit; speeds are dimensionless multipliers.
    """
    rng = np.random.default_rng(seed)

    def next_seed() -> Optional[int]:
        return None if seed is None else reseed(seed, rng.integers(0, 2**31 - 1))

    workstations: List[BorrowedWorkstation] = []
    for i in range(num_laptops):
        trace = poisson_interrupts(lifespan, rate=2.0 / lifespan,
                                   seed=next_seed(), max_interrupts=2)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"fleet-laptop-{i}", lifespan=lifespan,
            setup_cost=3.0, interrupt_budget=2, owner_interrupts=trace,
            speed=0.8))
    for i in range(num_desktops):
        trace = poisson_interrupts(lifespan, rate=0.5 / lifespan,
                                   seed=next_seed(), max_interrupts=1)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"fleet-desktop-{i}", lifespan=lifespan,
            setup_cost=1.0, interrupt_budget=1, owner_interrupts=trace,
            speed=1.0 + 0.15 * (i % 2)))
    for i in range(num_lab):
        trace = bursty_interrupts(lifespan, num_bursts=2, burst_size=2,
                                  burst_spread=5.0, seed=next_seed())
        workstations.append(BorrowedWorkstation(
            workstation_id=f"fleet-lab-{i}", lifespan=lifespan,
            setup_cost=2.0, interrupt_budget=4, owner_interrupts=trace,
            speed=1.2))
    bag = lognormal_tasks(25_000, median=0.18, sigma=0.5, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=1.0,
                                 max_interrupts=1)
    return Scenario(name="mixed-fleet", workstations=workstations,
                    task_bag=bag, params=params)


# Stable names for every scenario family (CLI, specs + Monte-Carlo
# sampling).  The canonical mapping is the registry in
# :mod:`repro.registry`; registering here keeps each name next to its
# generator.
_BUILTIN_FAMILIES: Dict[str, Callable[..., Scenario]] = {
    "laptop": laptop_evening,
    "desktops": overnight_desktops,
    "lab": shared_lab,
    "office": bursty_office_day,
    "cluster": heterogeneous_cluster,
    "flaky": flaky_owners,
    "diurnal": diurnal_owners,
    "fleet": mixed_fleet,
}
for _name, _family in _BUILTIN_FAMILIES.items():
    if _name not in SCENARIO_FAMILIES:
        SCENARIO_FAMILIES.register(_name, _family)
