"""Canonical NOW cycle-stealing scenarios used by the examples and benchmarks.

Each scenario bundles the three ingredients a simulation needs — borrowed
workstation contracts (with owner interrupt traces), a data-parallel task
bag, and the analytic parameters of the guarantee — into one object, so the
examples read like the situations the paper's introduction describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.params import CycleStealingParams
from ..simulator.workstation import BorrowedWorkstation
from .owner_activity import bursty_interrupts, poisson_interrupts, workday_interrupts
from .tasks import TaskBag, lognormal_tasks, uniform_tasks

__all__ = ["Scenario", "laptop_evening", "overnight_desktops", "shared_lab"]


@dataclass
class Scenario:
    """A ready-to-run cycle-stealing situation."""

    #: Human-readable name.
    name: str
    #: The borrowed workstations (contracts plus owner traces).
    workstations: List[BorrowedWorkstation]
    #: The data-parallel workload to burn through.
    task_bag: TaskBag
    #: Analytic parameters of the *first* (or only) contract, for comparing
    #: simulated output against the guaranteed-output theory.
    params: CycleStealingParams

    def describe(self) -> str:
        """One-line summary used by the examples."""
        return (f"{self.name}: {len(self.workstations)} workstation(s), "
                f"{self.task_bag.total_tasks} tasks, "
                f"U={self.params.lifespan:g}, c={self.params.setup_cost:g}, "
                f"p={self.params.max_interrupts}")


def laptop_evening(*, lifespan: float = 240.0, setup_cost: float = 2.0,
                   interrupt_budget: int = 2, seed: Optional[int] = 7) -> Scenario:
    """A colleague's laptop borrowed for an evening.

    The laptop may be unplugged (killing everything) a couple of times —
    exactly the draconian contract the paper motivates.  The owner trace is
    a small number of Poisson reclaims.
    """
    interrupts = poisson_interrupts(lifespan, rate=interrupt_budget / lifespan,
                                    seed=seed, max_interrupts=interrupt_budget)
    ws = BorrowedWorkstation(workstation_id="laptop-0", lifespan=lifespan,
                             setup_cost=setup_cost, interrupt_budget=interrupt_budget,
                             owner_interrupts=interrupts)
    bag = uniform_tasks(4000, low=0.05, high=0.15, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="laptop-evening", workstations=[ws], task_bag=bag, params=params)


def overnight_desktops(*, num_machines: int = 8, lifespan: float = 600.0,
                       setup_cost: float = 1.0, interrupt_budget: int = 1,
                       seed: Optional[int] = 11) -> Scenario:
    """A pool of office desktops borrowed overnight.

    Most owners never come back before morning; a few do once.  Machine
    speeds are mildly heterogeneous.
    """
    workstations: List[BorrowedWorkstation] = []
    for i in range(num_machines):
        machine_seed = None if seed is None else seed + i
        interrupts = poisson_interrupts(lifespan, rate=0.5 / lifespan,
                                        seed=machine_seed,
                                        max_interrupts=interrupt_budget)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"desktop-{i}", lifespan=lifespan, setup_cost=setup_cost,
            interrupt_budget=interrupt_budget, owner_interrupts=interrupts,
            speed=1.0 + 0.1 * (i % 3)))
    bag = lognormal_tasks(20_000, median=0.2, sigma=0.4, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="overnight-desktops", workstations=workstations,
                    task_bag=bag, params=params)


def shared_lab(*, num_machines: int = 4, lifespan: float = 480.0,
               setup_cost: float = 3.0, interrupt_budget: int = 4,
               seed: Optional[int] = 23) -> Scenario:
    """Daytime borrowing of shared lab machines with bursty owner activity.

    Owners wander back in clusters; the negotiated interrupt budget is
    generous but can still be exceeded, which is exactly the regime where
    the guaranteed-output guarantees degrade gracefully rather than hold
    exactly.
    """
    workstations: List[BorrowedWorkstation] = []
    for i in range(num_machines):
        machine_seed = None if seed is None else seed + 13 * i
        if i % 2 == 0:
            interrupts = bursty_interrupts(lifespan, num_bursts=2, burst_size=2,
                                           burst_spread=4.0, seed=machine_seed)
        else:
            interrupts = workday_interrupts(lifespan, day_length=lifespan,
                                            busy_fraction=0.3, rate_when_busy=0.01,
                                            seed=machine_seed)
        workstations.append(BorrowedWorkstation(
            workstation_id=f"lab-{i}", lifespan=lifespan, setup_cost=setup_cost,
            interrupt_budget=interrupt_budget, owner_interrupts=interrupts))
    bag = uniform_tasks(30_000, low=0.02, high=0.2, seed=seed)
    params = CycleStealingParams(lifespan=lifespan, setup_cost=setup_cost,
                                 max_interrupts=interrupt_budget)
    return Scenario(name="shared-lab", workstations=workstations, task_bag=bag,
                    params=params)
