"""Data-parallel workloads (bags of independent tasks).

The paper targets *data-parallel* computations: large collections of
independent, individually small tasks whose inputs and outputs travel with
the period that executes them.  :class:`TaskBag` is the minimal faithful
model of such a workload — a multiset of task sizes consumed greedily by the
productive time the schedules manage to secure — plus generators for the
size distributions the examples use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TaskBag", "uniform_tasks", "lognormal_tasks", "constant_tasks"]


class TaskBag:
    """A bag of independent tasks with known (work-unit) sizes.

    Parameters
    ----------
    sizes:
        Work units needed by each task (all strictly positive).  Tasks are
        dispatched in the given order; because the tasks are independent the
        order does not affect any quantity the library reports.
    """

    def __init__(self, sizes: Sequence[float]):
        arr = np.asarray(list(sizes), dtype=float)
        if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr <= 0.0)):
            raise ValueError("task sizes must be positive finite numbers")
        self._sizes = arr
        self._next = 0
        self._completed = 0

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Read-only array of every task's size (the batch backend's view)."""
        view = self._sizes.view()
        view.setflags(write=False)
        return view

    @property
    def total_tasks(self) -> int:
        """Number of tasks the bag started with."""
        return int(self._sizes.size)

    @property
    def completed_tasks(self) -> int:
        """Tasks completed so far."""
        return self._completed

    @property
    def remaining_tasks(self) -> int:
        """Tasks not yet completed."""
        return self.total_tasks - self._completed

    @property
    def total_work(self) -> float:
        """Total work units across all tasks."""
        return float(self._sizes.sum())

    @property
    def remaining_work(self) -> float:
        """Work units still to be done."""
        return float(self._sizes[self._next:].sum())

    @property
    def is_empty(self) -> bool:
        """Whether every task has been completed."""
        return self._next >= self.total_tasks

    # ------------------------------------------------------------------
    def take(self, work_capacity: float) -> Tuple[int, float]:
        """Complete as many whole tasks as fit into ``work_capacity``.

        Returns ``(tasks_completed, work_consumed)``.  Partial tasks are not
        executed (the model's tasks are indivisible), so the unused capacity
        is simply returned to the caller implicitly.
        """
        if work_capacity <= 0.0 or self.is_empty:
            return 0, 0.0
        budget = float(work_capacity)
        count = 0
        used = 0.0
        while self._next < self.total_tasks:
            size = float(self._sizes[self._next])
            if size > budget + 1e-12:
                break
            budget -= size
            used += size
            count += 1
            self._next += 1
        self._completed += count
        return count, used

    def reset(self) -> None:
        """Return every task to the bag (for re-running a simulation)."""
        self._next = 0
        self._completed = 0

    def chunk_of(self, num_tasks: int) -> float:
        """Work units of the next ``num_tasks`` tasks (for sizing a period)."""
        end = min(self._next + max(0, int(num_tasks)), self.total_tasks)
        return float(self._sizes[self._next:end].sum())


def constant_tasks(num_tasks: int, size: float = 1.0) -> TaskBag:
    """A bag of ``num_tasks`` identical tasks of the given size."""
    if num_tasks < 0:
        raise ValueError(f"num_tasks must be non-negative, got {num_tasks}")
    return TaskBag(np.full(int(num_tasks), float(size)))


def uniform_tasks(num_tasks: int, low: float, high: float,
                  seed: Optional[int] = None) -> TaskBag:
    """A bag of tasks with sizes uniform in ``[low, high]``."""
    if not (0.0 < low <= high):
        raise ValueError(f"need 0 < low <= high, got low={low!r}, high={high!r}")
    rng = np.random.default_rng(seed)
    return TaskBag(rng.uniform(low, high, size=int(num_tasks)))


def lognormal_tasks(num_tasks: int, median: float, sigma: float = 0.5,
                    seed: Optional[int] = None) -> TaskBag:
    """A bag of tasks with log-normal sizes (heavy-ish tail, realistic mix)."""
    if median <= 0.0 or sigma <= 0.0:
        raise ValueError("median and sigma must be positive")
    rng = np.random.default_rng(seed)
    sizes = rng.lognormal(mean=np.log(median), sigma=sigma, size=int(num_tasks))
    return TaskBag(sizes)
