"""Workloads: task bags, owner-activity traces and canonical scenarios."""

from .owner_activity import (
    bursty_interrupts,
    diurnal_rate,
    evenly_spaced_interrupts,
    inhomogeneous_poisson_interrupts,
    pad_traces,
    poisson_interrupts,
    poisson_interrupts_batch,
    workday_interrupts,
    worst_case_interrupts_for_schedule,
)
from .scenarios import (
    SCENARIO_FAMILIES,
    Scenario,
    bursty_office_day,
    diurnal_owners,
    flaky_owners,
    heterogeneous_cluster,
    laptop_evening,
    mixed_fleet,
    overnight_desktops,
    shared_lab,
)
from .tasks import TaskBag, constant_tasks, lognormal_tasks, uniform_tasks

__all__ = [
    "TaskBag",
    "constant_tasks",
    "uniform_tasks",
    "lognormal_tasks",
    "poisson_interrupts",
    "poisson_interrupts_batch",
    "inhomogeneous_poisson_interrupts",
    "diurnal_rate",
    "pad_traces",
    "evenly_spaced_interrupts",
    "workday_interrupts",
    "bursty_interrupts",
    "worst_case_interrupts_for_schedule",
    "Scenario",
    "laptop_evening",
    "overnight_desktops",
    "shared_lab",
    "bursty_office_day",
    "heterogeneous_cluster",
    "flaky_owners",
    "diurnal_owners",
    "mixed_fleet",
    "SCENARIO_FAMILIES",
]
