"""Owner-activity traces: when does the owner of B reclaim the machine?

The simulator consumes plain sequences of absolute interrupt times.  The
generators here produce such traces for the situations the paper's
introduction motivates — a laptop that may be unplugged at any moment, a
desktop whose owner pops back during the evening, a shared lab machine with
bursty daytime usage — plus adversarial traces derived from the worst-case
analysis so the simulator can reproduce the analytic guarantees end-to-end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.sampling import spawn_rng

__all__ = [
    "poisson_interrupts",
    "poisson_interrupts_batch",
    "inhomogeneous_poisson_interrupts",
    "diurnal_rate",
    "evenly_spaced_interrupts",
    "workday_interrupts",
    "bursty_interrupts",
    "worst_case_interrupts_for_schedule",
    "pad_traces",
]


def poisson_interrupts(lifespan: float, rate: float,
                       seed: Optional[int] = None,
                       max_interrupts: Optional[int] = None) -> List[float]:
    """Interrupt times from a Poisson process of the given rate over the lifespan."""
    if lifespan <= 0.0 or rate < 0.0:
        raise ValueError("lifespan must be positive and rate non-negative")
    if rate == 0.0:
        return []
    # spawn_rng: a plain default_rng for ordinary seeds, the antithetic
    # reflection stream for PairedSeed (see repro.core.sampling).
    rng = spawn_rng(seed)
    times: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= lifespan:
            break
        times.append(t)
        if max_interrupts is not None and len(times) >= max_interrupts:
            break
    return times


def poisson_interrupts_batch(lifespan: float, rate: float,
                             seeds: Sequence[Optional[int]],
                             max_interrupts: Optional[int] = None
                             ) -> List[np.ndarray]:
    """One Poisson owner trace per seed, generated at array level.

    Returns a list of float arrays, one per seed, bit-identical to calling
    :func:`poisson_interrupts` with each seed in turn (NumPy generators
    draw the same stream whether asked for scalars one at a time or for a
    whole ``size=K`` block, and ``cumsum`` accumulates in the same order as
    the scalar loop's ``t += gap``).  The per-trace cost is a couple of
    array operations instead of one Python-level draw per event; the
    Poisson-owner scenario families in :mod:`repro.workloads.scenarios`
    generate all their machines' traces through it, which keeps batch
    replication (see :mod:`repro.simulator.batch`) cheap end to end.
    """
    if lifespan <= 0.0 or rate < 0.0:
        raise ValueError("lifespan must be positive and rate non-negative")
    traces: List[np.ndarray] = []
    if rate == 0.0:
        return [np.empty(0, dtype=float) for _ in seeds]
    # Enough draws that a second block is rarely needed (mean + 6 sigma).
    expected = rate * lifespan
    block = max(8, int(expected + 6.0 * max(1.0, expected ** 0.5)) + 1)
    scale = 1.0 / rate
    for seed in seeds:
        rng = spawn_rng(seed)
        times = np.cumsum(rng.exponential(scale, size=block))
        while times[-1] < lifespan:
            # Continue the accumulation from times[-1] *inside* the cumsum so
            # the additions happen in the scalar loop's exact order
            # ((T + g1) + g2, not (g1 + g2) + T) — bit-identity is the contract.
            more = np.cumsum(np.concatenate((times[-1:],
                                             rng.exponential(scale, size=block))))[1:]
            times = np.concatenate((times, more))
        trace = times[:int(np.searchsorted(times, lifespan, side="left"))]
        if max_interrupts is not None:
            trace = trace[:max_interrupts]
        traces.append(trace)
    return traces


def inhomogeneous_poisson_interrupts(lifespan: float, rate_fn,
                                     max_rate: float,
                                     seed: Optional[int] = None,
                                     max_interrupts: Optional[int] = None
                                     ) -> List[float]:
    """Interrupt times from an inhomogeneous Poisson process, by thinning.

    Samples a homogeneous Poisson process at the envelope rate ``max_rate``
    and keeps each candidate time ``t`` with probability
    ``rate_fn(t) / max_rate`` (Lewis-Shedler thinning), which yields an
    exact draw from the inhomogeneous process with instantaneous rate
    ``rate_fn`` as long as ``rate_fn(t) <= max_rate`` everywhere on
    ``[0, lifespan)``.  All quantities are in the lifespan's time units:
    ``lifespan`` is the contract's ``U``, rates are reclaims per time unit.

    Parameters
    ----------
    lifespan:
        Length of the borrowed opportunity (``U > 0``).
    rate_fn:
        Callable ``t -> rate`` giving the instantaneous reclaim rate at
        absolute time ``t``; must stay within ``[0, max_rate]``.
    max_rate:
        The thinning envelope (``> 0``); a tight envelope wastes fewer
        candidate draws but any upper bound is correct.
    seed:
        Seed for the candidate/acceptance stream; the draw order
        (gap, acceptance, gap, acceptance, ...) is part of the function's
        deterministic identity.
    max_interrupts:
        Optional cap on the number of *accepted* reclaims (the contract's
        interrupt budget ``p``, when the trace should respect it).
    """
    if lifespan <= 0.0 or max_rate <= 0.0:
        raise ValueError("lifespan and max_rate must be positive")
    rng = spawn_rng(seed)
    times: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / max_rate))
        if t >= lifespan:
            break
        rate = float(rate_fn(t))
        if not 0.0 <= rate <= max_rate * (1.0 + 1e-12):
            raise ValueError(
                f"rate_fn({t!r}) = {rate!r} outside [0, max_rate={max_rate!r}]")
        if float(rng.uniform()) * max_rate < rate:
            times.append(t)
            if max_interrupts is not None and len(times) >= max_interrupts:
                break
    return times


def diurnal_rate(base_rate: float, peak_rate: float, day_length: float = 480.0,
                 peak_time: float = 240.0):
    """A smooth day/night reclaim-rate profile for the inhomogeneous sampler.

    Returns a callable ``t -> rate`` that oscillates sinusoidally with
    period ``day_length`` between ``base_rate`` (quietest, half a day away
    from the peak) and ``peak_rate`` (busiest, at ``peak_time`` within each
    day).  Rates are reclaims per time unit of the lifespan ``U``.
    """
    if base_rate < 0.0 or peak_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= peak_rate")
    if day_length <= 0.0:
        raise ValueError(f"day_length must be positive, got {day_length!r}")
    mean = 0.5 * (base_rate + peak_rate)
    amplitude = 0.5 * (peak_rate - base_rate)
    omega = 2.0 * np.pi / day_length

    def rate(t: float) -> float:
        return mean + amplitude * float(np.cos(omega * (t - peak_time)))

    return rate


def pad_traces(traces: Sequence[Sequence[float]],
               fill: float = np.inf) -> Tuple[np.ndarray, np.ndarray]:
    """Pack ragged interrupt traces into one padded (R × K) array.

    Returns ``(padded, counts)`` where ``padded[r, :counts[r]]`` holds
    trace ``r`` and the remainder is ``fill`` (``+inf`` by default, so
    time comparisons against the padding are always false).  The batch
    simulation kernel stores every row's segment boundaries this way.
    """
    arrays = [np.asarray(t, dtype=float) for t in traces]
    counts = np.asarray([a.size for a in arrays], dtype=np.int64)
    width = int(counts.max()) if arrays else 0
    padded = np.full((len(arrays), width), fill, dtype=float)
    for r, a in enumerate(arrays):
        padded[r, :a.size] = a
    return padded, counts


def evenly_spaced_interrupts(lifespan: float, count: int) -> List[float]:
    """``count`` interrupts splitting the lifespan into equal episodes."""
    if count <= 0:
        return []
    step = float(lifespan) / (count + 1)
    return [step * (i + 1) for i in range(count)]


def workday_interrupts(lifespan: float, day_length: float = 480.0,
                       busy_fraction: float = 0.4, rate_when_busy: float = 0.02,
                       seed: Optional[int] = None) -> List[float]:
    """Owner activity that alternates quiet nights and busy daytime stretches.

    Each "day" of length ``day_length`` starts with a busy stretch covering
    ``busy_fraction`` of it, during which reclaims arrive with rate
    ``rate_when_busy``; the remainder of the day is quiet.
    """
    if not (0.0 <= busy_fraction <= 1.0):
        raise ValueError(f"busy_fraction must lie in [0, 1], got {busy_fraction!r}")
    rng = spawn_rng(seed)
    times: List[float] = []
    day_start = 0.0
    while day_start < lifespan:
        busy_end = min(day_start + busy_fraction * day_length, lifespan)
        t = day_start
        while rate_when_busy > 0.0:
            t += float(rng.exponential(1.0 / rate_when_busy))
            if t >= busy_end:
                break
            times.append(t)
        day_start += day_length
    return times


def bursty_interrupts(lifespan: float, num_bursts: int, burst_size: int = 3,
                      burst_spread: float = 5.0, seed: Optional[int] = None
                      ) -> List[float]:
    """Clusters of reclaims (e.g. the owner repeatedly checking mail)."""
    if num_bursts < 0 or burst_size < 1 or burst_spread <= 0.0:
        raise ValueError("need num_bursts >= 0, burst_size >= 1, burst_spread > 0")
    rng = spawn_rng(seed)
    centres = np.sort(rng.uniform(0.0, lifespan, size=int(num_bursts)))
    times: List[float] = []
    for centre in centres:
        offsets = np.abs(rng.normal(0.0, burst_spread, size=int(burst_size)))
        for off in np.sort(offsets):
            t = float(centre + off)
            if 0.0 <= t < lifespan:
                times.append(t)
    return sorted(times)


def worst_case_interrupts_for_schedule(schedule, params) -> List[float]:
    """Absolute interrupt times realising the worst case against a fixed schedule.

    Uses the exact period-end analysis of
    :func:`repro.core.work.worst_case_nonadaptive_pattern` and converts the
    chosen period indices into absolute times a hair before each period's
    end, so the trace can be replayed through the simulator.
    """
    from ..core.work import worst_case_nonadaptive_pattern

    pattern, _ = worst_case_nonadaptive_pattern(schedule, params)
    times: List[float] = []
    for index in pattern.indices:
        end = schedule.finish_time(index)
        start = schedule.finish_time(index - 1)
        times.append(max(start, end - max((end - start) * 1e-9, 1e-12)))
    return times
