"""The run-service daemon: bounded workers over the durable queue journal.

:class:`RunService` turns the one-shot ``repro run`` CLI into a system: it
accepts :class:`~repro.specs.ExperimentSpec` submissions (journalled by
:mod:`repro.service.journal`), validates them, and executes them through
the existing :func:`repro.runstore.run_spec` machinery under a bounded
pool of worker threads.  All the durability lives *below* the service —
atomic journal entries, atomic run-store shards, byte-identical resume —
so the service itself can be killed at any instant and simply pick up
where the disk says it was:

* Entries found ``running`` at startup are crash leftovers; they are
  re-claimed and re-executed with ``resume=True``, which skips every
  completed shard and produces byte-identical published results.
* A failing entry retries with capped exponential backoff
  (``min(backoff_cap, backoff_base * 2**(attempts-1))`` seconds) until
  ``max_retries`` is exhausted, then parks in the dead-letter state with
  the captured traceback.
* Runs are namespaced per tenant: entry ``tenant`` ``t`` executes under
  ``<runs_dir>/t/``, so tenants cannot collide on run ids.

Concurrent submissions share one service-lifetime
:class:`~repro.experiments.cache.DPTableCache` and one machine-wide
:class:`~repro.experiments.cache.SharedTablePublisher`: a 60k-lifespan DP
table is solved and published once per *service*, not once per
submission (asserted by the fault-injection suite through
``publisher.stats``).
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Set, Tuple

from ..experiments.cache import DPTableCache, SharedTablePublisher
from ..runstore import DEFAULT_RUNS_DIR, run_spec
from ..specs import SpecError, default_run_id, parse_spec
from .journal import ACTIVE_STATES, QUEUE_DIRNAME, Journal, JournalError

__all__ = ["RunService"]

#: Test-only hook: ``"<needle>:<n>"`` — a worker raises an injected
#: RuntimeError for any entry whose id, run id or spec name contains
#: ``needle``, for as long as the entry has had fewer than ``n`` attempts.
#: ``n = 1`` fails the first attempt only (retry succeeds); a large ``n``
#: drives the entry into the dead-letter state.  Lets the fault suite
#: exercise retry → backoff → dead-letter without a spec that genuinely
#: crashes the simulation stack.
_FAULT_ENV = "REPRO_TEST_SERVICE_FAULT"


def _injected_fault(entry) -> None:
    spec = os.environ.get(_FAULT_ENV)
    if not spec:
        return
    needle, _, count = spec.rpartition(":")
    try:
        threshold = int(count)
    except ValueError:
        return
    haystack = " ".join(filter(None, (entry.entry_id, entry.run_id,
                                      entry.spec_name)))
    if needle in haystack and entry.attempts < threshold:
        raise RuntimeError(
            f"injected service fault for {entry.entry_id} "
            f"(attempt {entry.attempts + 1}/{threshold})")


class RunService:
    """Durable-queue experiment executor with a bounded worker pool.

    Parameters
    ----------
    runs_dir:
        Run-store root; the queue journal lives in ``<runs_dir>/_queue/``
        and each tenant's runs under ``<runs_dir>/<tenant>/``.
    workers:
        Maximum concurrently executing submissions (worker *threads*; the
        heavy lifting is NumPy, which releases the GIL).
    jobs_per_run:
        ``jobs`` forwarded to :func:`~repro.runstore.run_spec` for each
        submission (worker *processes* within one run).
    max_retries:
        Failed attempts beyond the first before dead-lettering; an entry
        dead-letters on failure number ``max_retries + 1``.
    backoff_base / backoff_cap:
        Capped exponential retry delay in seconds.
    poll_interval:
        Main-loop poll period (journal scans, drain checks).
    cache_dir:
        On-disk DP-table cache directory shared by every submission.
    http_port:
        When not ``None``, serve the JSON status endpoint on this
        localhost port (``0`` = ephemeral; read ``service.http.port``).
    executor:
        ``"local"`` (default) executes submissions through
        :func:`~repro.runstore.run_spec` in-process; ``"cluster"``
        routes each one through
        :func:`repro.distributed.run_spec_distributed` — a loopback
        coordinator plus ``cluster_workers`` worker processes per
        submission, with the distributed metrics surfaced at
        ``/metrics``.
    cluster_workers:
        Worker processes per submission when ``executor="cluster"``.
    """

    def __init__(self, runs_dir: str = DEFAULT_RUNS_DIR, *,
                 workers: int = 2, jobs_per_run: int = 1,
                 max_retries: int = 3, backoff_base: float = 0.5,
                 backoff_cap: float = 30.0, poll_interval: float = 0.1,
                 cache_dir: Optional[str] = None,
                 http_port: Optional[int] = None,
                 executor: str = "local",
                 cluster_workers: int = 2,
                 catalog_index: bool = True) -> None:
        if workers < 1:
            raise JournalError(f"workers must be >= 1, got {workers!r}")
        if executor not in ("local", "cluster"):
            raise JournalError(
                f"executor must be 'local' or 'cluster', got {executor!r}")
        self.runs_dir = os.fspath(runs_dir)
        self.journal = Journal(os.path.join(self.runs_dir, QUEUE_DIRNAME))
        self.workers = int(workers)
        self.jobs_per_run = int(jobs_per_run)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.poll_interval = float(poll_interval)
        self.cache_dir = cache_dir
        self.http_port = http_port
        self.http = None
        self.executor = executor
        self.cluster_workers = int(cluster_workers)
        #: Upsert published runs into the cross-run catalog index
        #: (<runs_dir>/_catalog/) so `repro catalog` sees them immediately.
        self.catalog_index = bool(catalog_index)
        #: Cumulative distributed-executor counters across finished
        #: submissions, plus live coordinator snapshots while they run.
        self._distributed_totals: Dict[str, int] = {
            "runs": 0, "points_done": 0, "shards_streamed": 0,
            "shard_bytes_streamed": 0, "table_requests": 0,
            "dp_solves": 0, "table_bytes_streamed": 0,
            "leases_granted": 0, "leases_expired": 0}
        self._metrics_lock = threading.Lock()
        #: Service-lifetime DP cache + publisher: one solve and one
        #: shared-memory copy per (L, c, p, method) key per service.
        self.table_cache = DPTableCache(cache_dir=cache_dir)
        self.publisher = SharedTablePublisher()
        self._inflight: Dict[str, Future] = {}
        #: ``(tenant, run_id)`` keys currently executing — two submissions
        #: of the same spec must serialise, not race on one run directory.
        self._inflight_runs: Set[Tuple[str, Optional[str]]] = set()
        self._stop = threading.Event()

    # -- control -------------------------------------------------------
    def stop(self) -> None:
        """Ask the serve loop to exit after the current reap (signal-safe)."""
        self._stop.set()

    def tenant_runs_dir(self, tenant: str) -> str:
        return os.path.join(self.runs_dir, tenant)

    def inflight_ids(self) -> List[str]:
        """Entry ids currently executing (sorted; for status displays)."""
        return sorted(self._inflight)

    def metrics_snapshot(self) -> Dict[str, object]:
        """Executor gauges for ``/metrics`` (merged with queue counts).

        Always reports the executor mode and the service-lifetime
        DP-cache counters; with ``executor="cluster"`` adds the
        cumulative distributed totals across finished submissions.
        """
        stats = self.table_cache.stats
        payload: Dict[str, object] = {
            "executor": self.executor,
            "inflight": len(self._inflight),
            "table_cache": {"memory_hits": stats.memory_hits,
                            "disk_hits": stats.disk_hits,
                            "misses": stats.misses},
            "shared_tables": {"created": self.publisher.stats.created,
                              "reused": self.publisher.stats.reused},
        }
        if self.executor == "cluster":
            with self._metrics_lock:
                payload["distributed"] = dict(self._distributed_totals)
        return payload

    def _absorb_cluster_metrics(self, metrics: Dict[str, object]) -> None:
        """Fold one finished submission's coordinator snapshot into totals."""
        points = metrics.get("points", {})
        tables = metrics.get("table_service", {})
        shards = metrics.get("shards", {})
        leases = metrics.get("leases", {})
        with self._metrics_lock:
            totals = self._distributed_totals
            totals["runs"] += 1
            totals["points_done"] += int(points.get("done", 0))
            totals["shards_streamed"] += int(shards.get("streamed", 0))
            totals["shard_bytes_streamed"] += \
                int(shards.get("bytes_streamed", 0))
            totals["table_requests"] += int(tables.get("requests", 0))
            totals["dp_solves"] += int(tables.get("dp_solves", 0))
            totals["table_bytes_streamed"] += \
                int(tables.get("bytes_streamed", 0))
            totals["leases_granted"] += int(leases.get("granted", 0))
            totals["leases_expired"] += int(leases.get("expired", 0))

    # -- the serve loop ------------------------------------------------
    def serve(self, *, drain: bool = False,
              max_runtime: Optional[float] = None) -> Dict[str, int]:
        """Run the service loop; returns the final journal state counts.

        ``drain=True`` exits once no active entries remain (every
        submission published, dead or cancelled) — the mode the CLI tests
        and the nightly round-trip script use.  ``max_runtime`` is a
        wall-clock safety net in seconds; the loop also exits on
        :meth:`stop` (wired to SIGTERM/SIGINT by the CLI).
        """
        started = time.monotonic()
        if self.http_port is not None and self.http is None:
            from .http import StatusHTTPServer

            self.http = StatusHTTPServer(
                self.journal, port=self.http_port,
                inflight=self.inflight_ids,
                metrics=self.metrics_snapshot)
            self.http.start()
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-service")
        try:
            while not self._stop.is_set():
                self._reap()
                self._validate_new()
                self._launch_ready(pool)
                if drain and not self._inflight \
                        and not self.journal.entries(states=ACTIVE_STATES):
                    break
                if max_runtime is not None \
                        and time.monotonic() - started >= max_runtime:
                    break
                self._wait_for_progress()
        finally:
            self._stop.set()
            pool.shutdown(wait=True)
            self._reap()
            if self.http is not None:
                self.http.close()
            # Unlink the shared-memory blocks; stats survive for callers.
            self.publisher.close()
        return self.journal.counts()

    def _wait_for_progress(self) -> None:
        futures = list(self._inflight.values())
        if futures:
            wait(futures, timeout=self.poll_interval,
                 return_when=FIRST_COMPLETED)
        else:
            self._stop.wait(self.poll_interval)

    # -- loop stages ---------------------------------------------------
    def _reap(self) -> None:
        """Drop finished futures (transitions already happened in-thread)."""
        for entry_id in [eid for eid, fut in self._inflight.items()
                         if fut.done()]:
            future = self._inflight.pop(entry_id)
            self._inflight_runs.discard(self._run_key(entry_id))
            # _execute_entry catches everything; anything surfacing here
            # is a service bug and must not be silently swallowed.
            future.result()

    def _run_key(self, entry_id: str) -> Tuple[str, Optional[str]]:
        try:
            entry = self.journal.get(entry_id)
        except JournalError:  # pragma: no cover - entry vanished
            return ("", entry_id)
        return (entry.tenant, entry.run_id)

    def _validate_new(self) -> None:
        """Parse ``submitted`` entries; stamp run ids or dead-letter them."""
        for entry in self.journal.entries(states=("submitted",)):
            try:
                spec = parse_spec(entry.spec_data,
                                  source=f"submission {entry.entry_id}")
            except SpecError:
                self.journal.transition(entry.entry_id, "dead",
                                        error=traceback.format_exc())
                continue
            self.journal.transition(entry.entry_id, "validated",
                                    run_id=default_run_id(spec))

    def _launch_ready(self, pool: ThreadPoolExecutor) -> None:
        """Claim runnable entries up to the worker bound and submit them.

        ``runnable()`` also lists ``running`` crash leftovers from a
        killed service — re-claiming them (``running -> running``) and
        executing with ``resume=True`` is exactly the recovery path.
        """
        for entry in self.journal.runnable():
            if len(self._inflight) >= self.workers:
                break
            if entry.entry_id in self._inflight:
                continue
            run_key = (entry.tenant, entry.run_id)
            if entry.run_id is not None and run_key in self._inflight_runs:
                continue  # same run already executing: serialise
            try:
                self.journal.transition(entry.entry_id, "running")
            except JournalError:
                continue  # lost a race (e.g. concurrent cancel): skip
            self._inflight_runs.add(run_key)
            self._inflight[entry.entry_id] = pool.submit(
                self._execute_entry, entry.entry_id)

    # -- execution (worker threads) ------------------------------------
    def _execute_entry(self, entry_id: str) -> None:
        entry = self.journal.get(entry_id)
        try:
            _injected_fault(entry)
            spec = parse_spec(entry.spec_data,
                              source=f"submission {entry.entry_id}")
            run_id = entry.run_id or default_run_id(spec)
            if self.executor == "cluster":
                from ..distributed import run_spec_distributed

                metrics: Dict[str, object] = {}
                run_spec_distributed(
                    spec, runs_dir=self.tenant_runs_dir(entry.tenant),
                    run_id=run_id, workers=self.cluster_workers,
                    worker_jobs=self.jobs_per_run,
                    cache_dir=self.cache_dir, resume=True,
                    metrics_out=metrics)
                self._absorb_cluster_metrics(metrics)
            else:
                run_spec(spec, runs_dir=self.tenant_runs_dir(entry.tenant),
                         run_id=run_id, jobs=self.jobs_per_run,
                         cache_dir=self.cache_dir, resume=True,
                         publisher=self.publisher,
                         table_cache=self.table_cache)
        except BaseException:
            self._record_failure(entry)
            return
        self.journal.transition(entry_id, "published",
                                attempts=entry.attempts + 1, error="")
        self._index_published(entry.tenant, run_id)

    def _index_published(self, tenant: str, run_id: str) -> None:
        """Upsert one published run into the catalog index (best-effort).

        The index is an accelerator over state the run directories already
        hold, so a failure here (unwritable index dir, concurrent rebuild
        race) must never fail the publish — the next ``repro catalog
        index`` repairs it.
        """
        if not self.catalog_index:
            return
        try:
            from ..catalog import Catalog

            Catalog([self.runs_dir]).index_run(
                os.path.join(self.tenant_runs_dir(tenant), run_id),
                tenant=tenant)
        except Exception:  # noqa: BLE001 - advisory cache, never fatal
            pass

    def _record_failure(self, entry) -> None:
        """Move a failed attempt to ``failed`` (backoff) or ``dead``."""
        captured = traceback.format_exc()
        attempts = entry.attempts + 1
        try:
            if attempts > self.max_retries:
                self.journal.transition(entry.entry_id, "dead",
                                        attempts=attempts, error=captured)
            else:
                delay = min(self.backoff_cap,
                            self.backoff_base * 2 ** (attempts - 1))
                self.journal.transition(entry.entry_id, "failed",
                                        attempts=attempts, error=captured,
                                        next_attempt_at=time.time() + delay)
        except JournalError:  # pragma: no cover - journal dir destroyed
            pass
