"""Run-service layer: durable spec submissions executed by a daemon.

See ``docs/service.md`` for the lifecycle and operational model.  The
package splits by responsibility:

* :mod:`repro.service.journal` — the durable on-disk queue (atomic JSON
  entries under ``runs/_queue/``, the submitted → validated → running →
  published/failed/dead/cancelled state machine).
* :mod:`repro.service.runner` — :class:`RunService`: bounded worker pool,
  crash recovery, capped-backoff retries, the shared DP-table cache and
  shared-memory publisher.
* :mod:`repro.service.status` — the one snapshot shape behind ``repro
  status`` and the HTTP endpoint.
* :mod:`repro.service.http` — the stdlib JSON-over-HTTP status server.
"""

from .journal import (
    ACTIVE_STATES,
    CANCELLABLE_STATES,
    QUEUE_DIRNAME,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    Journal,
    JournalError,
    QueueEntry,
)
from .runner import RunService
from .status import entry_summary, status_snapshot

__all__ = [
    "ACTIVE_STATES",
    "CANCELLABLE_STATES",
    "QUEUE_DIRNAME",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "Journal",
    "JournalError",
    "QueueEntry",
    "RunService",
    "entry_summary",
    "status_snapshot",
]
