"""JSON-over-HTTP status endpoint for the run-service (stdlib only).

A deliberately small read-only API on top of :mod:`http.server` — the
service's *control* surface stays the CLI and the journal; HTTP exists so
dashboards and probes can watch a long-lived service without shelling
out:

* ``GET /healthz`` — liveness: ``{"ok": true}``.
* ``GET /status`` — the full :func:`repro.service.status.status_snapshot`.
* ``GET /status/<entry-id>`` — one entry's summary, 404 when unknown.
* ``GET /metrics`` — operational counters (queue states plus, when a
  ``metrics`` callable was supplied, distributed-executor gauges: points
  pending/leased/done, worker count, table-service hits/misses, shard
  bytes streamed).

Binds localhost only by default; requests are served on daemon threads
(:class:`~http.server.ThreadingHTTPServer`) so a slow reader never stalls
the service loop.  Port ``0`` picks an ephemeral port — read it back from
:attr:`StatusHTTPServer.port` (the tests do).

``journal=None`` runs the server journal-less (a standalone distributed
coordinator exposing only ``/healthz`` + ``/metrics``); the journal
endpoints then answer 404.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, Optional

from .journal import Journal, JournalError
from .status import entry_summary, status_snapshot

__all__ = ["StatusHTTPServer"]


class StatusHTTPServer:
    """Owns the HTTP server and its serving thread."""

    def __init__(self, journal: Optional[Journal], *, host: str = "127.0.0.1",
                 port: int = 0,
                 inflight: Optional[Callable[[], Iterable[str]]] = None,
                 metrics: Optional[Callable[[], Dict[str, Any]]] = None
                 ) -> None:
        self.journal = journal
        self._inflight = inflight or (lambda: ())
        self._metrics = metrics
        self._server = ThreadingHTTPServer((host, port),
                                           self._make_handler())
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return int(self._server.server_address[1])

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-service-http",
                                        daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _metrics_payload(self) -> Dict[str, Any]:
        """Queue counters merged with the supplier's executor gauges."""
        payload: Dict[str, Any] = {}
        if self.journal is not None:
            snapshot = status_snapshot(self.journal,
                                       inflight=self._inflight())
            payload["queue"] = snapshot["queue"]
        if self._metrics is not None:
            payload.update(self._metrics())
        return payload

    def _make_handler(self):
        service_http = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002 - stdlib name
                pass  # request logging would interleave with service output

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/healthz":
                    self._reply(200, {"ok": True})
                elif path == "/metrics":
                    self._reply(200, service_http._metrics_payload())
                elif service_http.journal is None:
                    self._reply(404, {"error": f"unknown path {path!r}; "
                                      "this server has no journal — try "
                                      "/healthz or /metrics"})
                elif path == "/status":
                    self._reply(200, status_snapshot(
                        service_http.journal,
                        inflight=service_http._inflight()))
                elif path.startswith("/status/"):
                    entry_id = path[len("/status/"):]
                    try:
                        entry = service_http.journal.get(entry_id)
                    except JournalError as exc:
                        self._reply(404, {"error": str(exc)})
                        return
                    self._reply(200, entry_summary(entry))
                else:
                    self._reply(404, {"error": f"unknown path {path!r}; "
                                      "try /healthz, /status, "
                                      "/status/<entry-id> or /metrics"})

            def _reply(self, code: int, payload) -> None:
                body = json.dumps(payload, indent=2,
                                  sort_keys=True).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        return Handler
