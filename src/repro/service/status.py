"""Status views over the queue journal, shared by the CLI and HTTP layers.

One snapshot shape serves ``repro status``, ``repro status --json`` and
the HTTP ``/status`` endpoint, so the golden-file schema test in
``tests/test_service_cli.py`` pins all three at once.  The snapshot is a
pure function of the journal directory — any process (the service, the
CLI, a monitoring probe) can take one concurrently, because every journal
file is written atomically.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from .journal import Journal, QueueEntry

__all__ = ["SNAPSHOT_SCHEMA", "entry_summary", "status_snapshot"]

#: Version of the snapshot dictionary layout (bump on breaking changes;
#: the golden schema file pins the key set per version).
SNAPSHOT_SCHEMA = 1


def entry_summary(entry: QueueEntry) -> Dict[str, Any]:
    """The status row of one journal entry (JSON-ready scalars only)."""
    return {
        "entry": entry.entry_id,
        "state": entry.state,
        "tenant": entry.tenant,
        "priority": entry.priority,
        "seq": entry.seq,
        "spec_name": entry.spec_name,
        "run_id": entry.run_id,
        "attempts": entry.attempts,
        "error": entry.error,
        "next_attempt_at": entry.next_attempt_at,
        "submitted_at": entry.submitted_at,
        "updated_at": entry.updated_at,
    }


def status_snapshot(journal: Journal, *,
                    inflight: Iterable[str] = ()) -> Dict[str, Any]:
    """The whole queue's state as one JSON-ready dictionary.

    ``inflight`` (entry ids currently executing) comes from the live
    service when available; a CLI snapshot of the journal alone passes
    none and the field stays an empty list.
    """
    entries: List[Dict[str, Any]] = [entry_summary(entry)
                                     for entry in journal.entries()]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "queue": journal.counts(),
        "inflight": sorted(inflight),
        "corrupt": journal.corrupt_entries(),
        "entries": entries,
    }
