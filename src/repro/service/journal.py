"""Durable spec-submission queue journal (``runs/_queue/``).

The run-service accepts experiment-spec submissions into an on-disk
journal that survives any crash: one JSON file per submission, every
state change written atomically (temp file + ``os.replace``), so a
SIGKILL at any instant — mid-submit, mid-transition, power loss — leaves
each entry in exactly one well-defined state, never lost, torn or
duplicated.  The journal is the service's *only* mutable state; a
restarted service reconstructs everything by scanning the directory.

Lifecycle (see ``docs/service.md`` for the full diagram)::

    submitted ──▶ validated ──▶ running ──▶ published
        │             │         │   ▲  └──▶ dead      (retries exhausted /
        │             │         ▼   │                  invalid forever)
        │             │       failed┘                 (awaiting backoff)
        └───────────▶ cancelled ◀───┴─ (submitted/validated/failed only)

* ``submitted`` — the raw spec dictionary is on disk; nothing checked yet.
* ``validated`` — the service parsed the spec against the registries and
  stamped the deterministic run id.
* ``running`` — claimed by a worker; the run store is executing it.  An
  entry found ``running`` at startup is a crash leftover and is simply
  re-claimed — the run store's kill/resume machinery makes re-execution
  resume from the last completed point, byte-identically.
* ``failed`` — the last attempt raised; the entry retries after a capped
  exponential backoff (``next_attempt_at``).
* ``published`` / ``dead`` / ``cancelled`` — terminal.  ``dead`` is the
  dead-letter state: the captured traceback of the final attempt is
  preserved in ``error``.

Entries are ordered by ``(-priority, seq, entry_id)``: higher priority
first, FIFO within a priority band.  ``tenant`` namespaces the run store
(each tenant's runs live under ``<runs-dir>/<tenant>/``); tenant names
are restricted to filesystem-safe characters at submit time.

This module is deliberately free of experiment imports — it knows JSON
files and states, nothing about specs or runs — so the property tests
can drive it hard without paying for the simulation stack.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.exceptions import CycleStealingError

__all__ = [
    "JournalError",
    "Journal",
    "QueueEntry",
    "QUEUE_DIRNAME",
    "STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "CANCELLABLE_STATES",
    "TRANSITIONS",
]

#: Name of the queue directory under the run-store root.  The underscore
#: keeps it out of :meth:`repro.runstore.RunStore.list_runs` (no
#: ``manifest.json``) and visually separates it from run directories.
QUEUE_DIRNAME = "_queue"

#: Every journal state, in lifecycle order.
STATES = ("submitted", "validated", "running", "failed",
          "published", "dead", "cancelled")

#: States that still need service attention.
ACTIVE_STATES = ("submitted", "validated", "running", "failed")

#: States an entry never leaves.
TERMINAL_STATES = ("published", "dead", "cancelled")

#: States ``repro cancel`` may cancel from (a running run keeps running —
#: killing a worker mid-point would only waste the completed shards).
CANCELLABLE_STATES = ("submitted", "validated", "failed")

#: Legal state transitions.  ``running -> running`` is the re-claim of a
#: crash leftover by a restarted service.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "submitted": ("validated", "dead", "cancelled"),
    "validated": ("running", "cancelled"),
    "running": ("running", "published", "failed", "dead"),
    "failed": ("running", "dead", "cancelled"),
    "published": (),
    "dead": (),
    "cancelled": (),
}

#: Entry-file schema version.
ENTRY_SCHEMA = 1

#: Tenant names become run-store subdirectories; keep them boring.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_ENTRY_FILE_RE = re.compile(r"^(sub-\d{6,}-[0-9a-f]{8})\.json$")

#: Test-only hook: seconds to sleep between staging a *transition*'s temp
#: file and its atomic publish (new submissions are unaffected).  Lets
#: the fault-injection suite land a SIGKILL inside the rename window and
#: assert no entry is lost or duplicated; a ``.transitioning`` marker
#: signals the window is open.  Mirrors REPRO_TEST_CONSOLIDATE_DELAY in
#: :mod:`repro.runstore`.
_JOURNAL_DELAY_ENV = "REPRO_TEST_JOURNAL_DELAY"


class JournalError(CycleStealingError, RuntimeError):
    """A missing, corrupt or illegally transitioned journal entry."""


@dataclass(frozen=True)
class QueueEntry:
    """One submission's durable record (immutable snapshot of the file)."""

    entry_id: str
    state: str
    tenant: str
    priority: int
    #: Submission sequence number: FIFO order within a priority band.
    seq: int
    #: The raw (file-shaped) spec dictionary as submitted.
    spec_data: Mapping[str, Any]
    #: Deterministic run id, stamped at validation.
    run_id: Optional[str] = None
    #: Execution attempts so far (failed or succeeded).
    attempts: int = 0
    #: Captured traceback of the most recent failure (preserved in the
    #: dead-letter state).
    error: Optional[str] = None
    #: Epoch seconds before which a ``failed`` entry must not be retried.
    next_attempt_at: float = 0.0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: ``(state, epoch-seconds)`` pairs, in transition order.
    history: Tuple[Tuple[str, float], ...] = ()

    @property
    def spec_name(self) -> Optional[str]:
        """The spec's ``experiment.name`` when present (display only)."""
        experiment = self.spec_data.get("experiment") \
            if isinstance(self.spec_data, Mapping) else None
        if isinstance(experiment, Mapping):
            name = experiment.get("name")
            if isinstance(name, str):
                return name
        return None

    def order_key(self) -> Tuple[int, int, str]:
        """Scheduling order: higher priority first, then FIFO."""
        return (-self.priority, self.seq, self.entry_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ENTRY_SCHEMA,
            "entry": self.entry_id,
            "state": self.state,
            "tenant": self.tenant,
            "priority": self.priority,
            "seq": self.seq,
            "spec": dict(self.spec_data),
            "run_id": self.run_id,
            "attempts": self.attempts,
            "error": self.error,
            "next_attempt_at": self.next_attempt_at,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "history": [list(item) for item in self.history],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueueEntry":
        try:
            if int(data["schema"]) != ENTRY_SCHEMA:
                raise JournalError(
                    f"unsupported journal entry schema {data['schema']!r}")
            state = str(data["state"])
            if state not in STATES:
                raise JournalError(f"unknown journal state {state!r}")
            return cls(
                entry_id=str(data["entry"]), state=state,
                tenant=str(data["tenant"]), priority=int(data["priority"]),
                seq=int(data["seq"]), spec_data=dict(data["spec"]),
                run_id=data.get("run_id"),
                attempts=int(data.get("attempts", 0)),
                error=data.get("error"),
                next_attempt_at=float(data.get("next_attempt_at", 0.0)),
                submitted_at=float(data.get("submitted_at", 0.0)),
                updated_at=float(data.get("updated_at", 0.0)),
                history=tuple((str(s), float(t))
                              for s, t in data.get("history", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed journal entry: {exc}") from exc


def validate_tenant(tenant: str) -> str:
    """Check a tenant name is filesystem-safe; returns it unchanged."""
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise JournalError(
            f"invalid tenant {tenant!r}: tenant names must match "
            "[A-Za-z0-9][A-Za-z0-9._-]* (max 64 chars) — they become "
            "run-store subdirectories")
    return tenant


class Journal:
    """The on-disk queue journal: one atomic JSON file per submission.

    All writes are temp-file + ``os.replace`` inside the journal
    directory, so concurrent readers (the status CLI, the HTTP endpoint,
    a second ``submit``) and crashes only ever observe whole entries.
    In-process callers (the service's worker threads) are serialised by a
    lock; cross-process writers only ever *create* new files (``submit``)
    or are the single service process, so the single-writer-per-entry
    rule holds without file locks.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------
    def entry_path(self, entry_id: str) -> str:
        return os.path.join(self.root, f"{entry_id}.json")

    def _entry_files(self) -> List[Tuple[str, str]]:
        """``(entry_id, filename)`` for every entry file, unsorted."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        out = []
        for name in names:
            match = _ENTRY_FILE_RE.match(name)
            if match:
                out.append((match.group(1), name))
        return out

    # -- submit --------------------------------------------------------
    def submit(self, spec_data: Mapping[str, Any], *,
               tenant: str = "default", priority: int = 0,
               entry_id: Optional[str] = None) -> QueueEntry:
        """Append a new submission in state ``submitted``.

        ``spec_data`` is the raw (file-shaped) spec dictionary; semantic
        validation against the registries is the *service's* job — the
        journal only requires a JSON-serialisable mapping.
        """
        if not isinstance(spec_data, Mapping):
            raise JournalError(
                f"spec_data must be a mapping (the parsed spec file), "
                f"got {type(spec_data).__name__}")
        validate_tenant(tenant)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise JournalError(f"priority must be an integer, got {priority!r}")
        with self._lock:
            os.makedirs(self.root, exist_ok=True)
            seq = self._next_seq()
            if entry_id is None:
                entry_id = f"sub-{seq:06d}-{uuid.uuid4().hex[:8]}"
            elif not _ENTRY_FILE_RE.match(f"{entry_id}.json"):
                raise JournalError(
                    f"invalid entry id {entry_id!r}; expected "
                    "sub-<seq>-<8 hex chars>")
            if os.path.exists(self.entry_path(entry_id)):
                raise JournalError(f"entry {entry_id!r} already exists")
            now = time.time()
            entry = QueueEntry(entry_id=entry_id, state="submitted",
                               tenant=tenant, priority=int(priority),
                               seq=seq, spec_data=dict(spec_data),
                               submitted_at=now, updated_at=now,
                               history=(("submitted", now),))
            try:
                self._write_entry(entry, transition=False)
            except TypeError as exc:  # non-JSON-serialisable spec value
                raise JournalError(
                    f"spec_data is not JSON-serialisable: {exc}") from exc
            return entry

    def _next_seq(self) -> int:
        highest = 0
        for entry_id, _name in self._entry_files():
            try:
                highest = max(highest, int(entry_id.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover - never written
                continue
        return highest + 1

    # -- read ----------------------------------------------------------
    def get(self, entry_id: str) -> QueueEntry:
        """Read one entry; raises :class:`JournalError` if missing/corrupt."""
        path = self.entry_path(entry_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            known = sorted(eid for eid, _ in self._entry_files())
            raise JournalError(
                f"no queue entry {entry_id!r} under {self.root!r}; "
                f"known entries: {known}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"unreadable queue entry {entry_id!r} ({path}): {exc}") from exc
        return QueueEntry.from_dict(data)

    def entries(self, *, states: Optional[Iterable[str]] = None
                ) -> List[QueueEntry]:
        """Every readable entry, sorted by ``(seq, entry_id)``.

        Corrupt or half-written files are skipped (they are listed by
        :meth:`corrupt_entries`); atomic writes make them impossible to
        *create* through this class, but disk faults happen.
        """
        wanted = None if states is None else set(states)
        out: List[QueueEntry] = []
        for entry_id, _name in self._entry_files():
            try:
                entry = self.get(entry_id)
            except JournalError:
                continue
            if wanted is None or entry.state in wanted:
                out.append(entry)
        out.sort(key=lambda e: (e.seq, e.entry_id))
        return out

    def corrupt_entries(self) -> List[str]:
        """Entry ids whose files exist but cannot be parsed."""
        out = []
        for entry_id, _name in self._entry_files():
            try:
                self.get(entry_id)
            except JournalError:
                out.append(entry_id)
        return sorted(out)

    def counts(self) -> Dict[str, int]:
        """``{state: entry count}`` over every state (zeros included)."""
        counts = {state: 0 for state in STATES}
        for entry in self.entries():
            counts[entry.state] += 1
        return counts

    def runnable(self, now: Optional[float] = None) -> List[QueueEntry]:
        """Entries ready to claim, in ``(-priority, seq)`` order.

        ``validated`` entries, ``failed`` entries whose backoff elapsed,
        and ``running`` crash leftovers (the caller excludes ids it is
        itself executing).
        """
        now = time.time() if now is None else now
        ready = []
        for entry in self.entries(states=("validated", "failed", "running")):
            if entry.state == "failed" and entry.next_attempt_at > now:
                continue
            ready.append(entry)
        ready.sort(key=QueueEntry.order_key)
        return ready

    # -- transition ----------------------------------------------------
    def transition(self, entry_id: str, new_state: str, *,
                   run_id: Optional[str] = None,
                   error: Optional[str] = None,
                   attempts: Optional[int] = None,
                   next_attempt_at: Optional[float] = None) -> QueueEntry:
        """Atomically move an entry to ``new_state`` (legal moves only).

        Returns the new snapshot.  Raises :class:`JournalError` for an
        unknown state, an illegal transition, or a missing entry — the
        journal's transition table *is* the service's state machine, and
        violating it would corrupt scheduling.
        """
        if new_state not in STATES:
            raise JournalError(f"unknown journal state {new_state!r}; "
                               f"expected one of {list(STATES)}")
        with self._lock:
            entry = self.get(entry_id)
            if new_state not in TRANSITIONS[entry.state]:
                raise JournalError(
                    f"illegal transition {entry.state!r} -> {new_state!r} "
                    f"for entry {entry_id!r} (allowed: "
                    f"{list(TRANSITIONS[entry.state])})")
            now = time.time()
            updated = QueueEntry(
                entry_id=entry.entry_id, state=new_state,
                tenant=entry.tenant, priority=entry.priority, seq=entry.seq,
                spec_data=entry.spec_data,
                run_id=entry.run_id if run_id is None else run_id,
                attempts=entry.attempts if attempts is None else int(attempts),
                error=entry.error if error is None else error,
                next_attempt_at=(entry.next_attempt_at
                                 if next_attempt_at is None
                                 else float(next_attempt_at)),
                submitted_at=entry.submitted_at, updated_at=now,
                history=entry.history + ((new_state, now),),
            )
            self._write_entry(updated, transition=True)
            return updated

    def cancel(self, entry_id: str) -> QueueEntry:
        """Cancel a not-yet-running entry (see :data:`CANCELLABLE_STATES`)."""
        with self._lock:
            entry = self.get(entry_id)
            if entry.state not in CANCELLABLE_STATES:
                raise JournalError(
                    f"cannot cancel entry {entry_id!r} in state "
                    f"{entry.state!r}; only {list(CANCELLABLE_STATES)} "
                    "can be cancelled")
            return self.transition(entry_id, "cancelled")

    # -- atomic write --------------------------------------------------
    def _write_entry(self, entry: QueueEntry, *, transition: bool) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            delay = os.environ.get(_JOURNAL_DELAY_ENV)
            if delay and transition:  # test-only kill window (see above)
                with open(os.path.join(self.root, ".transitioning"), "w"):
                    pass
                time.sleep(float(delay))
            os.replace(tmp_path, self.entry_path(entry.entry_id))
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
