"""Resumable on-disk run store: durable, self-describing experiment runs.

Results used to evaporate when the sweep process exited; this module makes
every run a durable artifact.  A *run* is one execution of an
:class:`~repro.specs.ExperimentSpec`, laid out on disk as::

    runs/<run-id>/
        manifest.json            # the spec (inline), point count + per-point
                                 # payload digests, status
        points/point-0000.npz    # one shard per completed point
        points/point-0001.npz
        columns.npz              # columnar sidecar over the completed shards
        report.md                # written by ``repro report`` (optional)
        report.md.digest         # report cache stamp (see repro.reporting)

The orchestrator **streams** results into the store: each point's result
row is written to its own compressed ``.npz`` shard the moment the point
finishes, atomically (temp file + ``os.replace``), so a run killed at any
instant — mid-sweep, mid-write, power loss — leaves only whole shards
behind.  ``repro resume <run-id>`` reads the manifest's point count and
per-point payload digests, finds the pending indices from the shard
directory, and expands **only the pending payloads** (lazy grid
expansion; full re-expansion is the fallback for manifests written before
the digests existed).  Because every point and replication is seeded from
its own coordinates (see :func:`repro.experiments.grid.point_seed`), a
resumed run's rows — and the report rendered from them — are
byte-identical to an uninterrupted run with the same seed.

Shards store one row each (scalar statistics keyed by column name), which
keeps the store format independent of the spec kind: anything expressible
as a ``{column: scalar}`` row — guaranteed work in time units of the
lifespan ``U``, DP optima ``W^(p)[L]``, Monte-Carlo aggregates — round-trips
through :func:`write_row_shard` / :func:`read_row_shard`.

Analytics read the store through the **columnar sidecar** ``columns.npz``:
one array per result column (plus the point-index column), consolidated
atomically from the completed shards on :meth:`Run.mark_complete` and
opportunistically after every run/resume.  :meth:`Run.rows` and
:meth:`Run.columns` read the sidecar in a single pass — zero per-shard
``.npz`` opens on the warm path — and fall back to per-shard reads
whenever the sidecar is missing, stale (manifest digest or shard-set
mismatch) or corrupt; the fallback rebuilds the sidecar best-effort.  The
sidecar is a cache, never a source of truth: shards always win, and
deleting ``columns.npz`` merely costs the next reader one rebuild pass.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import sys
import tempfile
import time
import zipfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ._compat import keyword_only
from .core.exceptions import CycleStealingError
from .experiments.profiling import aggregate_profiles, pop_profile, render_profile
from .specs import (
    ExperimentSpec,
    default_run_id,
    evaluate_payload,
    expand_payload_at,
    expand_payloads,
    parse_spec,
    payload_config,
    payload_digest,
    payload_digests,
    spec_to_dict,
)

__all__ = [
    "RunStoreError",
    "RunStore",
    "Run",
    "RunColumns",
    "run_spec",
    "resume_run",
    "write_row_shard",
    "read_row_shard",
    "row_to_shard_bytes",
    "row_from_shard_bytes",
    "write_shard_bytes",
    "DEFAULT_RUNS_DIR",
    "ROW_SOURCES",
]

#: Default root directory for stored runs (relative to the working directory).
DEFAULT_RUNS_DIR = "runs"

#: Manifest schema version.  Version 2 adds ``payload_digests`` (lazy
#: resume); version-1 manifests are still read — resume then falls back to
#: full grid expansion.
MANIFEST_VERSION = 2

#: Columnar-sidecar schema version (``columns.npz``).
SIDECAR_VERSION = 1

#: Shard-vouch schema version (``columns.vouch.json``).
VOUCH_VERSION = 1

_SHARD_RE = re.compile(r"^point-(\d{4,})\.npz$")

#: The one result-access vocabulary, shared by :meth:`Run.rows`,
#: :meth:`Run.columns` and :meth:`repro.catalog.Catalog.frame`:
#: ``"auto"`` reads the columnar sidecar when valid and falls back to
#: per-shard reads, ``"sidecar"`` requires a valid sidecar, ``"shards"``
#: always reads per shard.
ROW_SOURCES = ("auto", "sidecar", "shards")


def _check_source(source: str) -> str:
    """Validate a result-access ``source`` value (shared error message)."""
    if source not in ROW_SOURCES:
        raise ValueError(
            f"unknown source {source!r}; expected one of {list(ROW_SOURCES)}")
    return source

#: Array-name prefixes inside the sidecar: one ``col::<name>`` per result
#: column, plus ``mask::<name>`` for columns absent from some rows.
_COL_PREFIX = "col::"
_MASK_PREFIX = "mask::"

#: Test-only hook: seconds to sleep between staging the sidecar temp file
#: and its atomic publish (lets the kill-during-consolidation test land a
#: SIGKILL inside the window; see tests/test_runstore.py).
_CONSOLIDATE_DELAY_ENV = "REPRO_TEST_CONSOLIDATE_DELAY"


class RunStoreError(CycleStealingError, RuntimeError):
    """A missing, conflicting or corrupt stored run."""


# ----------------------------------------------------------------------
# Row <-> .npz shard round-trip
# ----------------------------------------------------------------------
def _row_arrays(row: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Validate a result row into the arrays its shard will store."""
    arrays = {}
    for key, value in row.items():
        arr = np.asarray(value)
        if arr.dtype == object:
            # An object array (e.g. a None value) would *write* fine but can
            # never be read back with allow_pickle=False — the shard would
            # count as corrupt forever and the run could never complete.
            # Fail loudly at write time instead.
            raise RunStoreError(
                f"row value {key}={value!r} cannot be stored in an .npz "
                "shard; rows must hold scalars (numbers, strings, booleans) "
                "or numeric/string arrays")
        arrays[key] = arr
    return arrays


def row_to_shard_bytes(row: Dict[str, Any]) -> bytes:
    """Serialize one result row to the exact bytes its ``.npz`` shard holds.

    Shards are written through the same deterministic zip writer as the
    columnar sidecar (members stamped with the zip epoch), so the bytes
    are a pure function of the row: the same row produces the same shard
    on any machine at any time.  That is what lets a distributed worker
    stream shard bytes to the coordinator with a sha256 alongside, lets a
    duplicate completion of a point be verified *identical* instead of
    merely plausible, and makes a multi-worker cluster run byte-identical
    to a single-machine ``--jobs`` run of the same spec.
    """
    buffer = io.BytesIO()
    _write_npz_deterministic(buffer, _row_arrays(row))
    return buffer.getvalue()


def write_row_shard(path: Union[str, os.PathLike], row: Dict[str, Any]) -> None:
    """Atomically write one result row as a compressed ``.npz`` shard.

    Scalars (floats, ints, bools, strings) are stored as 0-d arrays.  The
    write is temp-file + ``os.replace``, so concurrent readers (and any
    process inspecting a killed run) only ever observe whole shards; the
    bytes themselves are deterministic (see :func:`row_to_shard_bytes`).
    """
    write_shard_bytes(path, row_to_shard_bytes(row))


def write_shard_bytes(path: Union[str, os.PathLike], data: bytes) -> None:
    """Atomically publish already-serialized shard bytes (temp + replace).

    The write path the distributed coordinator uses for remotely computed
    points: the worker serialized the row with :func:`row_to_shard_bytes`
    and the coordinator verified its sha256, so the bytes land unmodified
    through the exact same temp-file + ``os.replace`` discipline as a
    locally computed shard.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def _archive_to_row(archive) -> Dict[str, Any]:
    row: Dict[str, Any] = {}
    for key in archive.files:
        value = archive[key]
        if value.ndim == 0:
            item = value.item()
            if isinstance(item, (np.generic,)):  # pragma: no cover
                item = item.item()
            row[key] = item
        else:
            row[key] = value
    return row


def read_row_shard(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read one shard back into a plain ``{column: scalar}`` row.

    Raises :class:`RunStoreError` on corrupt/truncated files — the resume
    path treats that as "point not completed" and recomputes it.
    """
    try:
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            return _archive_to_row(archive)
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        raise RunStoreError(f"corrupt or unreadable shard {path!r}: {exc}") from exc


def row_from_shard_bytes(data: bytes) -> Dict[str, Any]:
    """Parse in-memory shard bytes back into the row they encode.

    The coordinator runs every remotely streamed shard through this
    before publishing it — a worker that shipped bytes whose sha256
    matches but whose content is not a readable shard must be rejected,
    not written into the store where it would poison every future resume.
    """
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            return _archive_to_row(archive)
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        raise RunStoreError(f"corrupt shard bytes: {exc}") from exc


# ----------------------------------------------------------------------
# Columnar sidecar: deterministic .npz writing and row <-> column packing
# ----------------------------------------------------------------------
def _write_npz_deterministic(handle, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` whose bytes depend only on the array contents.

    ``np.savez_compressed`` stamps each zip member with the current local
    time, so two consolidations of identical rows differ at the byte
    level and would spuriously invalidate the report digest cache.  This
    writer pins every member's timestamp to the zip epoch; deflate itself
    is deterministic, so identical rows yield an identical sidecar — on a
    resumed run just as on an uninterrupted one.
    """
    from numpy.lib import format as npformat

    with zipfile.ZipFile(handle, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, array in arrays.items():
            buffer = io.BytesIO()
            npformat.write_array(buffer, np.asarray(array), allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o600 << 16
            archive.writestr(info, buffer.getvalue())


#: Scalar python types a column must hold (homogeneously) to be columnar,
#: with the numpy dtype each maps to (``str`` keeps numpy's unicode sizing).
_COLUMN_DTYPES = {bool: np.bool_, int: np.int64, float: np.float64, str: None}


def _columnarize(indices: List[int],
                 rows: List[Dict[str, Any]]) -> Optional[Dict[str, np.ndarray]]:
    """Pack result rows into one array per column (None when not columnar).

    Column order is first-seen row order (the same order ``rows()``
    reconstructs).  Columns missing from some rows get a ``mask::`` flag
    array.  Rows holding non-scalar values, or a column mixing python
    types (an ``int`` in one row, a ``float`` in another), cannot be
    stored losslessly — the caller then simply skips the sidecar and
    per-shard reads stay the source of truth.
    """
    if not rows:
        return None
    order: List[str] = []
    for row in rows:
        for key in row:
            if key not in order:
                order.append(key)
    arrays: Dict[str, np.ndarray] = {
        "_point_index": np.asarray(indices, dtype=np.int64)}
    for name in order:
        present = [name in row for row in rows]
        values = [row[name] for row in rows if name in row]
        kind = type(values[0])
        if kind not in _COLUMN_DTYPES \
                or any(type(v) is not kind for v in values):
            return None
        try:
            column = np.asarray(values, dtype=_COLUMN_DTYPES[kind])
        except (OverflowError, ValueError):  # e.g. an int beyond int64
            return None
        if all(present):
            arrays[_COL_PREFIX + name] = column
        else:
            full = np.zeros(len(rows), dtype=column.dtype)
            full[np.asarray(present, dtype=bool)] = column
            arrays[_COL_PREFIX + name] = full
            arrays[_MASK_PREFIX + name] = np.asarray(present, dtype=np.bool_)
    return arrays


@dataclass
class RunColumns:
    """A run's completed rows as one array per column (the analytic view).

    ``point_index[i]`` is the run-store point index of logical row ``i``
    (ascending).  ``data[name]`` holds the column's values; for columns
    absent from some rows, ``mask[name]`` flags where the value is real
    (masked-out slots hold the dtype's zero/empty filler).
    :meth:`to_rows` reconstructs exactly the ``{column: scalar}`` rows the
    per-shard reads produce — same python types, same key order — which is
    what lets :meth:`Run.rows` serve either representation
    interchangeably.
    """

    point_index: np.ndarray
    data: Dict[str, np.ndarray] = field(default_factory=dict)
    mask: Dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.point_index.size)

    def to_rows(self) -> List[Dict[str, Any]]:
        """Rebuild the plain list-of-dict rows (python scalars, row order)."""
        rows: List[Dict[str, Any]] = [{} for _ in range(len(self))]
        for name, column in self.data.items():
            values = column.tolist()
            mask = self.mask.get(name)
            if mask is None:
                for row, value in zip(rows, values):
                    row[name] = value
            else:
                for row, value, ok in zip(rows, values, mask.tolist()):
                    if ok:
                        row[name] = value
        return rows


# ----------------------------------------------------------------------
# Run + RunStore
# ----------------------------------------------------------------------
class Run:
    """Handle to one stored run directory."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.run_id = os.path.basename(os.path.normpath(self.root))
        self._manifest: Optional[Dict[str, Any]] = None
        #: Parsed-sidecar memo, keyed by the file's (size, mtime_ns) so a
        #: re-consolidation (this process or another) invalidates it.
        self._sidecar_memo: Optional[Tuple[Tuple[int, int], RunColumns]] = None

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    @property
    def points_dir(self) -> str:
        return os.path.join(self.root, "points")

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, "report.md")

    @property
    def columns_path(self) -> str:
        """The columnar sidecar consolidated from the completed shards."""
        return os.path.join(self.root, "columns.npz")

    @property
    def manifest(self) -> Dict[str, Any]:
        """The parsed manifest (cached after first read)."""
        if self._manifest is None:
            try:
                with open(self.manifest_path, "r", encoding="utf-8") as handle:
                    self._manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise RunStoreError(
                    f"run {self.run_id!r} has no readable manifest "
                    f"({self.manifest_path}): {exc}") from exc
        return self._manifest

    def spec(self) -> ExperimentSpec:
        """Re-validate and return the spec stored in the manifest."""
        return parse_spec(self.manifest["spec"],
                          source=f"manifest of run {self.run_id!r}")

    @property
    def num_points(self) -> int:
        return int(self.manifest["num_points"])

    @property
    def status(self) -> str:
        """``"running"`` (shards may be missing) or ``"complete"``."""
        return str(self.manifest.get("status", "running"))

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.manifest_path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._manifest = manifest

    def mark_complete(self) -> None:
        """Flip the run to ``"complete"``, consolidating the sidecar first.

        The sidecar write is atomic and the status flip comes after it, so
        a kill anywhere in between leaves a resumable ``"running"`` run
        whose next resume re-consolidates.  A sidecar failure (exhausted
        disk, non-columnar rows) never blocks completion — the sidecar is
        an optimisation, the shards are the record.
        """
        try:
            self.consolidate_columns()
        except (OSError, RunStoreError):
            pass
        manifest = dict(self.manifest)
        manifest["status"] = "complete"
        self._write_manifest(manifest)

    # -- shards --------------------------------------------------------
    def shard_path(self, index: int) -> str:
        return os.path.join(self.points_dir, f"point-{index:04d}.npz")

    def completed_points(self) -> Set[int]:
        """Indices of every point with a whole, readable shard on disk.

        A shard that exists but cannot be read (torn by a crash that
        bypassed the atomic rename, disk corruption) counts as *not*
        completed, so resume recomputes it rather than trusting it.

        Shards the consolidation pass has *vouched* for — read whole
        while building ``columns.npz``, stat signature recorded in
        ``columns.vouch.json`` — are trusted from a ``stat()`` alone when
        the signature still matches; only uncovered or suspect shards
        (changed size/mtime, no vouch entry) pay a full ``.npz`` open.
        On a consolidated run a resume therefore scans the directory
        once and opens zero shards; any in-place edit or corruption
        changes the stat and sends that shard back through the full read.

        Shards this scan *did* have to open and read whole are folded
        back into the vouch (best-effort, signature captured before the
        read and confirmed unchanged after) — so a run receiving a steady
        stream of remotely computed shards (a live distributed sweep) pays
        the full open once per new shard across repeated ``repro status``
        scans, not once per scan, and the reported counts are never stale.
        """
        completed: Set[int] = set()
        vouched = self._read_vouch()
        fresh: Dict[int, Tuple[int, int]] = {}
        for index, name in self._shard_names_on_disk():
            path = os.path.join(self.points_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            signature = (stat.st_size, stat.st_mtime_ns)
            if vouched.get(index) == signature:
                completed.add(index)
                continue
            try:
                read_row_shard(path)
            except RunStoreError:
                continue
            completed.add(index)
            fresh[index] = signature
        if fresh:
            # Re-stat: a shard overwritten while we were reading it must
            # not be vouched under the pre-overwrite signature.
            after = self._shard_stat_snapshot()
            stable = {index: signature for index, signature in fresh.items()
                      if after.get(index) == signature}
            if stable:
                merged = {index: signature
                          for index, signature in vouched.items()
                          if after.get(index) == signature}
                merged.update(stable)
                self._write_vouch(merged)
        return completed

    def write_point(self, index: int, row: Dict[str, Any]) -> None:
        """Persist one point's result row (atomic, idempotent).

        Any shard write also drops the columnar sidecar: the sidecar is a
        cache over an exact shard *contents*, and an in-place overwrite
        (same filename, different row) would otherwise pass the shard-set
        validity check while serving the old values.  The next completed
        read or consolidation rebuilds it.
        """
        write_row_shard(self.shard_path(index), row)
        try:
            os.remove(self.columns_path)
        except OSError:
            pass

    def write_point_bytes(self, index: int, data: bytes) -> None:
        """Persist pre-serialized shard bytes for one point (atomic).

        The distributed coordinator's landing strip for remotely computed
        shards: the bytes were produced by :func:`row_to_shard_bytes` on
        the worker and sha256-verified on receipt, and they go through the
        same temp + ``os.replace`` path and sidecar drop as a local
        :meth:`write_point` — resume, vouch, and consolidation see no
        difference between a local and a remote shard.
        """
        row_from_shard_bytes(data)  # reject unparseable bytes up front
        write_shard_bytes(self.shard_path(index), data)
        try:
            os.remove(self.columns_path)
        except OSError:
            pass

    def read_point(self, index: int) -> Dict[str, Any]:
        return read_row_shard(self.shard_path(index))

    def _shard_names_on_disk(self) -> List[Tuple[int, str]]:
        """``(index, filename)`` of every shard file present, sorted by index.

        A pure directory listing — no shard is opened, so corrupt files
        are listed too (validity is the *reader's* concern).
        """
        try:
            names = os.listdir(self.points_dir)
        except OSError:
            return []
        return sorted((int(match.group(1)), name) for name in names
                      for match in [_SHARD_RE.match(name)] if match)

    def _read_all_shards(self) -> Tuple[List[int], List[Dict[str, Any]]]:
        """Read every readable shard once, in point order (skip corrupt)."""
        indices: List[int] = []
        rows: List[Dict[str, Any]] = []
        for index, name in self._shard_names_on_disk():
            try:
                rows.append(read_row_shard(os.path.join(self.points_dir, name)))
            except RunStoreError:
                continue
            indices.append(index)
        return indices, rows

    def _shard_stat_snapshot(self) -> Dict[int, Tuple[int, int]]:
        """``{index: (size, mtime_ns)}`` of every shard file present.

        A pure-reader's opportunistic sidecar rebuild compares snapshots
        taken before and after its read pass: if any shard changed in
        between (a concurrent resume overwriting a point), publishing a
        sidecar built from the pre-change rows would resurrect stale data
        — the reader must skip the publish and leave consolidation to the
        writer, which always force-consolidates after computing points.
        """
        out: Dict[int, Tuple[int, int]] = {}
        for index, name in self._shard_names_on_disk():
            try:
                stat = os.stat(os.path.join(self.points_dir, name))
            except OSError:
                continue
            out[index] = (stat.st_size, stat.st_mtime_ns)
        return out

    # -- shard vouch (resume fast-path) --------------------------------
    @property
    def vouch_path(self) -> str:
        """Sidecar companion recording which shards were read whole.

        ``{index: (size, mtime_ns)}`` signatures captured *before* a
        consolidation pass read each shard, bound to the run's identity
        digest.  Purely advisory: :meth:`completed_points` trusts a
        matching signature without opening the shard, and any mismatch,
        corruption or absence just degrades to the full per-shard scan.
        Kept out of ``columns.npz`` (whose bytes are pinned deterministic
        for the report digest cache) and out of :meth:`content_digest`.
        """
        return os.path.join(self.root, "columns.vouch.json")

    def _read_vouch(self) -> Dict[int, Tuple[int, int]]:
        """The vouched shard signatures (empty on any doubt)."""
        try:
            with open(self.vouch_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != VOUCH_VERSION \
                    or data.get("identity") != self._identity_digest():
                return {}
            shards = data.get("shards")
            if not isinstance(shards, dict):
                return {}
            return {int(index): (int(sig[0]), int(sig[1]))
                    for index, sig in shards.items()}
        except (OSError, ValueError, TypeError, KeyError, IndexError,
                json.JSONDecodeError, RunStoreError):
            return {}

    def _write_vouch(self, signatures: Dict[int, Tuple[int, int]]) -> None:
        """Atomically publish the vouch file (best-effort, never raises)."""
        payload = {
            "schema": VOUCH_VERSION,
            "identity": self._identity_digest(),
            "shards": {str(index): [size, mtime_ns]
                       for index, (size, mtime_ns) in sorted(signatures.items())},
        }
        try:
            fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.vouch_path)
        except (OSError, RunStoreError):
            try:
                os.remove(tmp_path)
            except OSError:
                pass

    def _vouch_after_read(self, indices: List[int],
                          before: Dict[int, Tuple[int, int]]) -> None:
        """Vouch for shards read whole whose stat never changed meanwhile.

        ``before`` is the pre-read :meth:`_shard_stat_snapshot`; a shard
        overwritten between snapshot and now gets no vouch — the rows in
        hand may predate the overwrite, and a stale vouch would let a
        future resume trust the wrong signature.
        """
        after = self._shard_stat_snapshot()
        signatures = {index: before[index] for index in indices
                      if index in before and before[index] == after.get(index)}
        if signatures:
            self._write_vouch(signatures)

    # -- columnar sidecar ----------------------------------------------
    def _identity_digest(self) -> str:
        """Digest binding a sidecar to this run's spec and point count.

        Deliberately excludes ``status`` so completing a run does not
        invalidate the sidecar consolidated moments earlier.
        """
        manifest = self.manifest
        blob = json.dumps({"spec": manifest.get("spec"),
                           "num_points": manifest.get("num_points")},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _read_sidecar(self) -> Optional[RunColumns]:
        """Parse ``columns.npz`` (None when missing/corrupt/wrong run)."""
        try:
            with np.load(self.columns_path, allow_pickle=False) as archive:
                files = archive.files
                if "_schema" not in files or "_point_index" not in files \
                        or "_manifest_digest" not in files:
                    return None
                if int(archive["_schema"]) != SIDECAR_VERSION:
                    return None
                if str(archive["_manifest_digest"].item()) \
                        != self._identity_digest():
                    return None
                point_index = np.asarray(archive["_point_index"],
                                         dtype=np.int64)
                data: Dict[str, np.ndarray] = {}
                mask: Dict[str, np.ndarray] = {}
                for name in files:
                    if name.startswith(_COL_PREFIX):
                        data[name[len(_COL_PREFIX):]] = archive[name]
                    elif name.startswith(_MASK_PREFIX):
                        mask[name[len(_MASK_PREFIX):]] = archive[name]
                n = point_index.size
                if any(column.shape != (n,) for column in data.values()) \
                        or any(m.shape != (n,) for m in mask.values()):
                    return None
                return RunColumns(point_index=point_index, data=data,
                                  mask=mask)
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            return None

    def _load_valid_sidecar(self) -> Optional[RunColumns]:
        """The sidecar, iff it is readable *and* matches the shards on disk.

        Staleness is a set comparison against the directory listing — no
        shard is opened.  A shard file that appeared after consolidation
        or vanished makes the sidecar stale, and readers fall back to
        per-shard reads; in-place overwrites (same filename, new content)
        never reach this check because :meth:`write_point` drops the
        sidecar outright.

        The parsed sidecar is memoised against the file's stat signature,
        so one :class:`Run` handle decompresses it once per consolidation
        — a digest check followed by a render costs one parse, not two.
        """
        try:
            stat = os.stat(self.columns_path)
        except OSError:
            self._sidecar_memo = None
            return None
        signature = (stat.st_size, stat.st_mtime_ns)
        if self._sidecar_memo is not None \
                and self._sidecar_memo[0] == signature:
            columns = self._sidecar_memo[1]
        else:
            columns = self._read_sidecar()
            if columns is None:
                self._sidecar_memo = None
                return None
            self._sidecar_memo = (signature, columns)
        on_disk = {index for index, _name in self._shard_names_on_disk()}
        if set(columns.point_index.tolist()) != on_disk:
            return None
        return columns

    def _write_sidecar(self, indices: List[int],
                       rows: List[Dict[str, Any]]) -> Optional[str]:
        """Atomically publish a sidecar over ``rows`` (None if not columnar)."""
        packed = _columnarize(indices, rows)
        if packed is None:
            return None
        return self._publish_sidecar(packed)

    def _publish_sidecar(self, packed: Dict[str, np.ndarray]) -> str:
        """Atomically write already-columnarized arrays as ``columns.npz``."""
        arrays: Dict[str, np.ndarray] = {
            "_schema": np.asarray(SIDECAR_VERSION),
            "_manifest_digest": np.asarray(self._identity_digest()),
        }
        arrays.update(packed)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                _write_npz_deterministic(handle, arrays)
            delay = os.environ.get(_CONSOLIDATE_DELAY_ENV)
            if delay:  # test-only kill window, see _CONSOLIDATE_DELAY_ENV
                with open(os.path.join(self.root, ".consolidating"), "w"):
                    pass
                time.sleep(float(delay))
            os.replace(tmp_path, self.columns_path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        return self.columns_path

    def consolidate_columns(self, *, force: bool = False) -> Optional[str]:
        """Consolidate the completed shards into ``columns.npz``.

        Returns the sidecar path, or ``None`` when there is nothing to
        consolidate (no readable shards) or the rows cannot be stored
        columnar (non-scalar values, type-mixed columns) — per-shard reads
        then remain the only path, which is always correct.  A sidecar
        that is already valid for the current shard set is kept as is
        unless ``force`` is given; the write itself is temp-file +
        ``os.replace``, so readers and crashes only ever see whole
        sidecars.
        """
        if not force and self._load_valid_sidecar() is not None:
            return self.columns_path
        before = self._shard_stat_snapshot()
        indices, rows = self._read_all_shards()
        if not rows:
            return None
        path = self._write_sidecar(indices, rows)
        # Every index in `indices` was just read whole: vouch for the ones
        # whose stat did not change underneath the read, so the next
        # resume's completed_points() trusts them without reopening.
        self._vouch_after_read(indices, before)
        return path

    def columns(self, *, source: str = "auto") -> RunColumns:
        """The completed rows as one array per column (single-pass read).

        ``source`` selects the path: ``"auto"`` (the default) reads the
        sidecar when valid and falls back to per-shard reads otherwise
        (rebuilding the sidecar best-effort); ``"sidecar"`` requires a
        valid sidecar and raises :class:`RunStoreError` without one;
        ``"shards"`` always reads per shard.  Raises
        :class:`RunStoreError` when the rows cannot be represented
        columnar.
        """
        _check_source(source)
        if source != "shards":
            sidecar = self._load_valid_sidecar()
            if sidecar is not None:
                return sidecar
            if source == "sidecar":
                raise RunStoreError(
                    f"run {self.run_id!r} has no valid columnar sidecar "
                    f"({self.columns_path}); run consolidate_columns() or "
                    "read with source='shards'")
        before = self._shard_stat_snapshot() if source == "auto" else {}
        indices, rows = self._read_all_shards()
        if not rows:  # no completed rows yet: an empty view, not an error
            return RunColumns(point_index=np.empty(0, dtype=np.int64))
        packed = _columnarize(indices, rows)
        if packed is None:
            raise RunStoreError(
                f"run {self.run_id!r} rows are not columnar (non-scalar "
                "values or a type-mixed column); use rows() instead")
        if source == "auto":
            # Best-effort rebuild from the arrays already packed above —
            # but only when every shard was readable and nothing changed
            # underneath the read (see _shard_stat_snapshot).
            if set(indices) == set(before) \
                    and self._shard_stat_snapshot() == before:
                try:
                    self._publish_sidecar(packed)
                except OSError:
                    pass
                self._vouch_after_read(indices, before)
        data = {name[len(_COL_PREFIX):]: column
                for name, column in packed.items()
                if name.startswith(_COL_PREFIX)}
        mask = {name[len(_MASK_PREFIX):]: column
                for name, column in packed.items()
                if name.startswith(_MASK_PREFIX)}
        return RunColumns(point_index=packed["_point_index"], data=data,
                          mask=mask)

    def column_schema(self, *, source: str = "auto") -> Dict[str, str]:
        """``{column: numpy dtype string}`` of the completed result rows.

        The schema the cross-run catalog indexes per run: column names in
        first-seen row order, each with its array dtype (``"<f8"``,
        ``"<i8"``, ``"<U12"``, …).  Reads through :meth:`columns`, so with
        a valid sidecar it costs one file pass and zero per-shard opens;
        raises :class:`RunStoreError` when the rows are not columnar.
        """
        return {name: column.dtype.str
                for name, column in self.columns(source=source).data.items()}

    def _opportunistic_consolidate(
            self, indices: List[int], rows: List[Dict[str, Any]],
            before: Dict[int, Tuple[int, int]]) -> None:
        """Best-effort sidecar rebuild from rows already in hand.

        Only when every shard on disk was readable (otherwise the fresh
        sidecar would be instantly stale against the directory listing and
        every reader would rebuild it again) *and* no shard changed while
        we read (``before`` is the pre-read :meth:`_shard_stat_snapshot`;
        a concurrent writer overwriting a point must not have its fresh
        sidecar clobbered by one built from the pre-overwrite rows) — and
        never letting an I/O failure break the read path that triggered
        it.
        """
        if not rows:
            return
        if set(indices) != set(before) \
                or self._shard_stat_snapshot() != before:
            return
        try:
            self._write_sidecar(indices, rows)
        except (OSError, RunStoreError):
            pass
        self._vouch_after_read(indices, before)

    def content_digest(self) -> Optional[str]:
        """Digest of the run's manifest + consolidated results, or ``None``.

        The digest only exists while a *valid* sidecar covers the shards
        on disk; it is then a pure function of the spec, status and stored
        rows (the sidecar bytes are deterministic), so
        :func:`repro.reporting.write_run_report` can cache the rendered
        markdown against it — and an invalid sidecar simply disables the
        cache rather than ever serving a stale report.
        """
        if self._load_valid_sidecar() is None:
            return None
        digest = hashlib.sha256()
        try:
            for path in (self.manifest_path, self.columns_path):
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        except OSError:
            return None
        return digest.hexdigest()

    def rows(self, *, source: str = "auto") -> List[Dict[str, Any]]:
        """All completed rows, in point order (the grid/spec order).

        With the default ``source="auto"`` the rows come from the columnar
        sidecar in one file read when it is valid — zero per-shard
        ``.npz`` opens — and from per-shard reads otherwise (unreadable
        shards are skipped, same as :meth:`completed_points`, and the
        sidecar is rebuilt best-effort).  ``source="sidecar"`` /
        ``"shards"`` force one path (the former raises
        :class:`RunStoreError` when no valid sidecar exists); both return
        identical rows whenever both are available, which the nightly
        workflow re-verifies end to end.
        """
        _check_source(source)
        if source != "shards":
            sidecar = self._load_valid_sidecar()
            if sidecar is not None:
                return sidecar.to_rows()
            if source == "sidecar":
                raise RunStoreError(
                    f"run {self.run_id!r} has no valid columnar sidecar "
                    f"({self.columns_path}); run consolidate_columns() or "
                    "read with source='shards'")
        before = self._shard_stat_snapshot() if source == "auto" else {}
        indices, rows = self._read_all_shards()
        if source == "auto":
            self._opportunistic_consolidate(indices, rows, before)
        return rows


class RunStore:
    """A directory of stored runs (``runs/`` by default)."""

    def __init__(self, root: Union[str, os.PathLike] = DEFAULT_RUNS_DIR) -> None:
        self.root = os.fspath(root)

    def run_path(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    def exists(self, run_id: str) -> bool:
        return os.path.isfile(os.path.join(self.run_path(run_id),
                                           "manifest.json"))

    def open(self, run_id: str) -> Run:
        """Open an existing run; raises with the known ids when absent."""
        if not self.exists(run_id):
            raise RunStoreError(
                f"no run {run_id!r} under {self.root!r}; "
                f"known runs: {self.list_runs()}")
        return Run(self.run_path(run_id))

    def create(self, spec: ExperimentSpec, *,
               run_id: Optional[str] = None,
               payloads: Optional[List[Any]] = None) -> Run:
        """Create a fresh run directory for ``spec`` and write its manifest.

        ``payloads`` (the spec's full expansion, when the caller already
        holds it) avoids a second expansion just to derive the manifest's
        per-point digests.
        """
        run_id = run_id or default_run_id(spec)
        if self.exists(run_id):
            raise RunStoreError(
                f"run {run_id!r} already exists under {self.root!r}; "
                "use resume_run() / `repro resume` to continue it, or pass "
                "a different run id")
        run = Run(self.run_path(run_id))
        if payloads is None:
            digests = payload_digests(spec)
        else:
            digests = [payload_digest(payload) for payload in payloads]
        run._write_manifest({
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "spec": spec_to_dict(spec),
            "num_points": len(digests),
            # One identity digest per point, in point order: resume uses
            # these to verify lazily expanded pending payloads instead of
            # re-expanding the whole grid.
            "payload_digests": digests,
            "status": "running",
        })
        os.makedirs(run.points_dir, exist_ok=True)
        return run

    def list_runs(self) -> List[str]:
        """Ids of every run with a manifest, sorted."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n for n in names if self.exists(n))


# ----------------------------------------------------------------------
# Execution: run / resume a spec against a store
# ----------------------------------------------------------------------
@keyword_only("runs_dir", "run_id", "jobs", "cache_dir", "max_points",
              "resume", "profile", lead=1)
def run_spec(spec: ExperimentSpec, *,
             runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
             run_id: Optional[str] = None, jobs: int = 1,
             cache_dir: Optional[str] = None,
             max_points: Optional[int] = None,
             resume: bool = False,
             profile: bool = False,
             publisher: Optional[Any] = None,
             table_cache: Optional[Any] = None) -> Run:
    """Execute a spec, streaming every completed point into the run store.

    Parameters
    ----------
    spec:
        A validated :class:`~repro.specs.ExperimentSpec`.
    runs_dir:
        Root directory of the run store.
    run_id:
        Run identifier; defaults to :func:`~repro.specs.default_run_id`
        (deterministic in the spec contents).
    jobs:
        Worker processes (``1`` = in-process serial, ``0`` = one per CPU).
        Shards are written as each point finishes, in either mode.
    cache_dir:
        Shared on-disk DP-table cache directory for sweep points
        (default: disabled — tables are cached in memory per process only).
    max_points:
        Stop after completing this many *new* points (checkpointing knob;
        the run stays ``"running"`` and can be resumed).
    resume:
        Continue an existing run instead of failing on collision.  The
        stored manifest's spec must match ``spec`` exactly.
    profile:
        Print a per-stage wall-time breakdown (referee / DP solve /
        Monte-Carlo / shard I/O) to stderr when the run finishes.  Timing
        columns never reach the stored shards, so profiled and unprofiled
        runs are byte-identical.
    publisher:
        An externally owned
        :class:`~repro.experiments.cache.SharedTablePublisher` (the
        run-service passes its service-lifetime one).  Sweep DP tables are
        then published through it — even with ``jobs=1``, so concurrent
        in-process runs share one machine-wide copy — and never closed
        here; ownership stays with the caller.
    table_cache:
        A :class:`~repro.experiments.cache.DPTableCache` to solve shared
        tables through (only meaningful with ``publisher``); the service
        passes one cache for its whole lifetime so a table is solved once
        per service, not once per submission.

    Returns the :class:`Run`; its status is ``"complete"`` once every
    point has a shard.

    With ``jobs > 1``, sweep-kind specs publish their DP tables to shared
    memory exactly like :func:`repro.experiments.orchestrator.run_sweep`
    — solved once per machine, attached by name in every worker.

    Only the *pending* points are expanded (lazily, verified against the
    manifest's per-point payload digests) — resuming a run with a handful
    of missing shards never pays for re-expanding the whole grid.  When
    the run finishes (and opportunistically after partial progress) the
    completed shards are consolidated into the ``columns.npz`` sidecar.
    """
    wall_started = time.perf_counter()
    store = RunStore(runs_dir)
    run_id = run_id or default_run_id(spec)
    parse_started = time.perf_counter()
    fresh_payloads: Optional[List[Any]] = None
    if store.exists(run_id):
        if not resume:
            raise RunStoreError(
                f"run {run_id!r} already exists under {store.root!r}; "
                "use `repro resume` (or resume=True) to continue it")
        run = store.open(run_id)
        stored = run.spec()
        if stored != spec:
            raise RunStoreError(
                f"run {run_id!r} was created from a different spec; "
                "refusing to mix results (start a fresh run id instead)")
    else:
        # Fresh run: one full expansion serves both the manifest's digest
        # list and the execution below — only *resumes* expand lazily.
        fresh_payloads = expand_payloads(spec, cache_dir=cache_dir,
                                         profile=profile)
        run = store.create(spec, run_id=run_id, payloads=fresh_payloads)
    spec_parse_seconds = time.perf_counter() - parse_started

    num_points = run.num_points
    scan_started = time.perf_counter()
    done = run.completed_points()
    scan_seconds = time.perf_counter() - scan_started
    pending = [i for i in range(num_points) if i not in done]
    if max_points is not None:
        pending = pending[:max(0, int(max_points))]

    parse_started = time.perf_counter()
    if fresh_payloads is not None:
        payloads: Dict[int, Any] = {i: fresh_payloads[i] for i in pending}
    else:
        payloads = _expand_pending(run, spec, pending,
                                   cache_dir=cache_dir, profile=profile)
    spec_parse_seconds += time.perf_counter() - parse_started

    jobs = _resolve_jobs(jobs)
    totals = _execute_points(run, payloads, pending, jobs=jobs,
                             profile=profile, publisher=publisher,
                             table_cache=table_cache)

    # _execute_points returning means every pending shard was written and
    # atomically published, so no re-scan of the store is needed here.
    consolidate_started = time.perf_counter()
    if pending:
        # New points were computed (including any recomputed corrupt
        # shards): force a fresh consolidation rather than trusting a
        # sidecar staged before them.  Partial runs get a partial sidecar
        # — in-flight reports then read one file, not N shards.
        try:
            run.consolidate_columns(force=True)
        except (OSError, RunStoreError):
            pass
    if len(done) + len(pending) == num_points:
        run.mark_complete()  # re-validates the sidecar, then flips status
    if profile:
        totals["spec_parse"] = totals.get("spec_parse", 0.0) + spec_parse_seconds
        totals["shard_io"] = (totals.get("shard_io", 0.0) + scan_seconds
                              + time.perf_counter() - consolidate_started)
        print(render_profile(totals,
                             wall_seconds=time.perf_counter() - wall_started,
                             points=len(pending), jobs=jobs),
              file=sys.stderr)
    return run


@keyword_only("runs_dir", "jobs", "cache_dir", "max_points", "profile",
              lead=1)
def resume_run(run_id: str, *,
               runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
               jobs: int = 1, cache_dir: Optional[str] = None,
               max_points: Optional[int] = None,
               profile: bool = False,
               publisher: Optional[Any] = None,
               table_cache: Optional[Any] = None) -> Run:
    """Finish an interrupted run from its last completed point.

    Only the manifest is needed — not the original spec file — so a run
    directory copied to another machine resumes there just as well.
    """
    run = RunStore(runs_dir).open(run_id)
    return run_spec(run.spec(), runs_dir=runs_dir, run_id=run_id, jobs=jobs,
                    cache_dir=cache_dir, max_points=max_points, resume=True,
                    profile=profile, publisher=publisher,
                    table_cache=table_cache)


def _resolve_jobs(jobs: Optional[int]) -> int:
    """One job-resolution semantic for the whole harness (lazy import —
    the orchestrator pulls in the analysis stack, which ``import
    repro.runstore`` alone should not pay for)."""
    from .experiments.orchestrator import _resolve_jobs as resolve

    return resolve(jobs)


def _expand_pending(run: Run, spec: ExperimentSpec, pending: List[int],
                    *, cache_dir: Optional[str] = None,
                    profile: bool = False) -> Dict[int, Any]:
    """Payloads for the pending indices only (``{index: payload}``).

    When the manifest carries per-point payload digests (manifest version
    ≥ 2), each pending payload is expanded lazily with
    :func:`repro.specs.expand_payload_at` and verified against its
    recorded digest — a mismatch means the manifest's grid and the spec's
    expansion have diverged, and mixing their results would corrupt the
    run.  Older manifests fall back to one full expansion.
    """
    digests = run.manifest.get("payload_digests")
    if digests is None:  # pre-digest manifest: the old full expansion
        payloads = expand_payloads(spec, cache_dir=cache_dir, profile=profile)
        return {i: payloads[i] for i in pending}
    config = payload_config(spec, cache_dir=cache_dir, profile=profile)
    out: Dict[int, Any] = {}
    for index in pending:
        payload = expand_payload_at(spec, index, profile=profile,
                                    config=config)
        if index >= len(digests) or payload_digest(payload) != digests[index]:
            raise RunStoreError(
                f"run {run.run_id!r}: payload digest mismatch at point "
                f"{index}; the manifest's recorded grid does not match the "
                "spec's expansion — refusing to mix results (was the "
                "manifest edited, or the point-expansion order changed?)")
        out[index] = payload
    return out


def _prepare_shared_tables(payloads: Dict[int, Any], pending: List[int],
                           jobs: int, *,
                           external_publisher: Optional[Any] = None,
                           table_cache: Optional[Any] = None):
    """Publish sweep DP tables to shared memory for a parallel run.

    Only the *pending* points' tables are published — a resume with a
    handful of missing shards must not re-solve the whole grid's tables.
    No-op (``None`` publisher, unchanged payloads) for serial runs,
    single-point remainders, scenario-kind payloads, or grids that need
    no tables.

    With ``external_publisher`` (the run-service's service-lifetime
    publisher), tables are published through it instead — even for
    ``jobs=1`` in-process execution, since the point is sharing across
    *concurrent submissions*, not across worker processes.  The returned
    publisher is then ``None``: the caller's ``finally`` must never close
    what it does not own.
    """
    if not pending or not isinstance(payloads[pending[0]], tuple):
        return None, payloads
    if external_publisher is None and (jobs <= 1 or len(pending) <= 1):
        return None, payloads
    from .experiments.orchestrator import ExperimentConfig, publish_shared_tables

    config = payloads[pending[0]][1]
    if not isinstance(config, ExperimentConfig):
        return None, payloads
    publisher, config = publish_shared_tables(
        [payloads[i][0] for i in pending], config,
        cache=table_cache, publisher=external_publisher)
    if publisher is None and not config.shared_tables:
        return None, payloads
    return publisher, {i: (point, config)
                       for i, (point, _config) in payloads.items()}


def _execute_points(run: Run, payloads: Dict[int, Any], pending: List[int],
                    *, jobs: int = 1, profile: bool = False,
                    publisher: Optional[Any] = None,
                    table_cache: Optional[Any] = None) -> Dict[str, float]:
    """Evaluate ``pending`` payload indices, persisting each as it finishes.

    Returns the aggregated per-stage seconds when ``profile`` is set
    (empty dict otherwise); the caller renders them together with its own
    spec-parse and consolidation timings.
    """
    if not pending:
        return {}
    profiles: List[Dict[str, float]] = []
    shard_io = 0.0

    def persist(index: int, row: Dict[str, Any]) -> None:
        nonlocal shard_io
        if profile:
            profiles.append(pop_profile(row))
            write_started = time.perf_counter()
            run.write_point(index, row)
            shard_io += time.perf_counter() - write_started
        else:
            run.write_point(index, row)

    owned_publisher, payloads = _prepare_shared_tables(
        payloads, pending, jobs,
        external_publisher=publisher, table_cache=table_cache)
    try:
        if jobs <= 1 or len(pending) <= 1:
            for index in pending:
                persist(index, evaluate_payload(payloads[index]))
        else:
            # Parallel mode: submit everything, persist futures as they
            # complete.  Rows are keyed by point index, so completion order
            # never matters.
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {pool.submit(evaluate_payload, payloads[i]): i
                           for i in pending}
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                    for future in finished:
                        persist(futures[future], future.result())
    finally:
        if owned_publisher is not None:
            owned_publisher.close()
    if not profile:
        return {}
    totals = aggregate_profiles(profiles)
    totals["shard_io"] = totals.get("shard_io", 0.0) + shard_io
    return totals
