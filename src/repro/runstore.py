"""Resumable on-disk run store: durable, self-describing experiment runs.

Results used to evaporate when the sweep process exited; this module makes
every run a durable artifact.  A *run* is one execution of an
:class:`~repro.specs.ExperimentSpec`, laid out on disk as::

    runs/<run-id>/
        manifest.json            # the spec (inline), point count, status
        points/point-0000.npz    # one shard per completed point
        points/point-0001.npz
        report.md                # written by ``repro report`` (optional)

The orchestrator **streams** results into the store: each point's result
row is written to its own compressed ``.npz`` shard the moment the point
finishes, atomically (temp file + ``os.replace``), so a run killed at any
instant — mid-sweep, mid-write, power loss — leaves only whole shards
behind.  ``repro resume <run-id>`` re-expands the manifest's spec, skips
every point whose shard exists, and finishes the rest.  Because every
point and replication is seeded from its own coordinates (see
:func:`repro.experiments.grid.point_seed`), a resumed run's rows — and the
report rendered from them — are byte-identical to an uninterrupted run
with the same seed.

Shards store one row each (scalar statistics keyed by column name), which
keeps the store format independent of the spec kind: anything expressible
as a ``{column: scalar}`` row — guaranteed work in time units of the
lifespan ``U``, DP optima ``W^(p)[L]``, Monte-Carlo aggregates — round-trips
through :func:`write_row_shard` / :func:`read_row_shard`.
"""

from __future__ import annotations

import json
import os
import re
import sys
import tempfile
import time
import zipfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Set, Union

import numpy as np

from .core.exceptions import CycleStealingError
from .experiments.profiling import aggregate_profiles, pop_profile, render_profile
from .specs import (
    ExperimentSpec,
    default_run_id,
    evaluate_payload,
    expand_payloads,
    parse_spec,
    spec_to_dict,
)

__all__ = [
    "RunStoreError",
    "RunStore",
    "Run",
    "run_spec",
    "resume_run",
    "write_row_shard",
    "read_row_shard",
    "DEFAULT_RUNS_DIR",
]

#: Default root directory for stored runs (relative to the working directory).
DEFAULT_RUNS_DIR = "runs"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1

_SHARD_RE = re.compile(r"^point-(\d{4,})\.npz$")


class RunStoreError(CycleStealingError, RuntimeError):
    """A missing, conflicting or corrupt stored run."""


# ----------------------------------------------------------------------
# Row <-> .npz shard round-trip
# ----------------------------------------------------------------------
def write_row_shard(path: Union[str, os.PathLike], row: Dict[str, Any]) -> None:
    """Atomically write one result row as a compressed ``.npz`` shard.

    Scalars (floats, ints, bools, strings) are stored as 0-d arrays.  The
    write is temp-file + ``os.replace``, so concurrent readers (and any
    process inspecting a killed run) only ever observe whole shards.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    arrays = {}
    for key, value in row.items():
        arr = np.asarray(value)
        if arr.dtype == object:
            # An object array (e.g. a None value) would *write* fine but can
            # never be read back with allow_pickle=False — the shard would
            # count as corrupt forever and the run could never complete.
            # Fail loudly at write time instead.
            raise RunStoreError(
                f"row value {key}={value!r} cannot be stored in an .npz "
                "shard; rows must hold scalars (numbers, strings, booleans) "
                "or numeric/string arrays")
        arrays[key] = arr
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def read_row_shard(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read one shard back into a plain ``{column: scalar}`` row.

    Raises :class:`RunStoreError` on corrupt/truncated files — the resume
    path treats that as "point not completed" and recomputes it.
    """
    try:
        with np.load(os.fspath(path), allow_pickle=False) as archive:
            row: Dict[str, Any] = {}
            for key in archive.files:
                value = archive[key]
                if value.ndim == 0:
                    item = value.item()
                    if isinstance(item, (np.generic,)):  # pragma: no cover
                        item = item.item()
                    row[key] = item
                else:
                    row[key] = value
            return row
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        raise RunStoreError(f"corrupt or unreadable shard {path!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Run + RunStore
# ----------------------------------------------------------------------
class Run:
    """Handle to one stored run directory."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.run_id = os.path.basename(os.path.normpath(self.root))
        self._manifest: Optional[Dict[str, Any]] = None

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    @property
    def points_dir(self) -> str:
        return os.path.join(self.root, "points")

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, "report.md")

    @property
    def manifest(self) -> Dict[str, Any]:
        """The parsed manifest (cached after first read)."""
        if self._manifest is None:
            try:
                with open(self.manifest_path, "r", encoding="utf-8") as handle:
                    self._manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise RunStoreError(
                    f"run {self.run_id!r} has no readable manifest "
                    f"({self.manifest_path}): {exc}") from exc
        return self._manifest

    def spec(self) -> ExperimentSpec:
        """Re-validate and return the spec stored in the manifest."""
        return parse_spec(self.manifest["spec"],
                          source=f"manifest of run {self.run_id!r}")

    @property
    def num_points(self) -> int:
        return int(self.manifest["num_points"])

    @property
    def status(self) -> str:
        """``"running"`` (shards may be missing) or ``"complete"``."""
        return str(self.manifest.get("status", "running"))

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self.manifest_path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._manifest = manifest

    def mark_complete(self) -> None:
        manifest = dict(self.manifest)
        manifest["status"] = "complete"
        self._write_manifest(manifest)

    # -- shards --------------------------------------------------------
    def shard_path(self, index: int) -> str:
        return os.path.join(self.points_dir, f"point-{index:04d}.npz")

    def completed_points(self) -> Set[int]:
        """Indices of every point with a whole, readable shard on disk.

        A shard that exists but cannot be read (torn by a crash that
        bypassed the atomic rename, disk corruption) counts as *not*
        completed, so resume recomputes it rather than trusting it.
        """
        completed: Set[int] = set()
        try:
            names = os.listdir(self.points_dir)
        except OSError:
            return completed
        for name in names:
            match = _SHARD_RE.match(name)
            if not match:
                continue
            index = int(match.group(1))
            try:
                read_row_shard(os.path.join(self.points_dir, name))
            except RunStoreError:
                continue
            completed.add(index)
        return completed

    def write_point(self, index: int, row: Dict[str, Any]) -> None:
        """Persist one point's result row (atomic, idempotent)."""
        write_row_shard(self.shard_path(index), row)

    def read_point(self, index: int) -> Dict[str, Any]:
        return read_row_shard(self.shard_path(index))

    def rows(self) -> List[Dict[str, Any]]:
        """All completed rows, in point order (the grid/spec order).

        Each shard is read exactly once; unreadable shards are skipped
        (they count as not-completed, same as :meth:`completed_points`).
        """
        try:
            names = os.listdir(self.points_dir)
        except OSError:
            return []
        shards = sorted((int(match.group(1)), name) for name in names
                        for match in [_SHARD_RE.match(name)] if match)
        out: List[Dict[str, Any]] = []
        for _index, name in shards:
            try:
                out.append(read_row_shard(os.path.join(self.points_dir, name)))
            except RunStoreError:
                continue
        return out


class RunStore:
    """A directory of stored runs (``runs/`` by default)."""

    def __init__(self, root: Union[str, os.PathLike] = DEFAULT_RUNS_DIR) -> None:
        self.root = os.fspath(root)

    def run_path(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    def exists(self, run_id: str) -> bool:
        return os.path.isfile(os.path.join(self.run_path(run_id),
                                           "manifest.json"))

    def open(self, run_id: str) -> Run:
        """Open an existing run; raises with the known ids when absent."""
        if not self.exists(run_id):
            raise RunStoreError(
                f"no run {run_id!r} under {self.root!r}; "
                f"known runs: {self.list_runs()}")
        return Run(self.run_path(run_id))

    def create(self, spec: ExperimentSpec, *,
               run_id: Optional[str] = None) -> Run:
        """Create a fresh run directory for ``spec`` and write its manifest."""
        run_id = run_id or default_run_id(spec)
        if self.exists(run_id):
            raise RunStoreError(
                f"run {run_id!r} already exists under {self.root!r}; "
                "use resume_run() / `repro resume` to continue it, or pass "
                "a different run id")
        run = Run(self.run_path(run_id))
        run._write_manifest({
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "spec": spec_to_dict(spec),
            "num_points": len(expand_payloads(spec)),
            "status": "running",
        })
        os.makedirs(run.points_dir, exist_ok=True)
        return run

    def list_runs(self) -> List[str]:
        """Ids of every run with a manifest, sorted."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n for n in names if self.exists(n))


# ----------------------------------------------------------------------
# Execution: run / resume a spec against a store
# ----------------------------------------------------------------------
def run_spec(spec: ExperimentSpec, *,
             runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
             run_id: Optional[str] = None, jobs: int = 1,
             cache_dir: Optional[str] = None,
             max_points: Optional[int] = None,
             resume: bool = False,
             profile: bool = False) -> Run:
    """Execute a spec, streaming every completed point into the run store.

    Parameters
    ----------
    spec:
        A validated :class:`~repro.specs.ExperimentSpec`.
    runs_dir:
        Root directory of the run store.
    run_id:
        Run identifier; defaults to :func:`~repro.specs.default_run_id`
        (deterministic in the spec contents).
    jobs:
        Worker processes (``1`` = in-process serial, ``0`` = one per CPU).
        Shards are written as each point finishes, in either mode.
    cache_dir:
        Shared on-disk DP-table cache directory for sweep points
        (default: disabled — tables are cached in memory per process only).
    max_points:
        Stop after completing this many *new* points (checkpointing knob;
        the run stays ``"running"`` and can be resumed).
    resume:
        Continue an existing run instead of failing on collision.  The
        stored manifest's spec must match ``spec`` exactly.
    profile:
        Print a per-stage wall-time breakdown (referee / DP solve /
        Monte-Carlo / shard I/O) to stderr when the run finishes.  Timing
        columns never reach the stored shards, so profiled and unprofiled
        runs are byte-identical.

    Returns the :class:`Run`; its status is ``"complete"`` once every
    point has a shard.

    With ``jobs > 1``, sweep-kind specs publish their DP tables to shared
    memory exactly like :func:`repro.experiments.orchestrator.run_sweep`
    — solved once per machine, attached by name in every worker.
    """
    store = RunStore(runs_dir)
    run_id = run_id or default_run_id(spec)
    if store.exists(run_id):
        if not resume:
            raise RunStoreError(
                f"run {run_id!r} already exists under {store.root!r}; "
                "use `repro resume` (or resume=True) to continue it")
        run = store.open(run_id)
        stored = run.spec()
        if stored != spec:
            raise RunStoreError(
                f"run {run_id!r} was created from a different spec; "
                "refusing to mix results (start a fresh run id instead)")
    else:
        run = store.create(spec, run_id=run_id)

    payloads = expand_payloads(spec, cache_dir=cache_dir, profile=profile)
    done = run.completed_points()
    pending = [i for i in range(len(payloads)) if i not in done]
    if max_points is not None:
        pending = pending[:max(0, int(max_points))]

    _execute_points(run, payloads, pending, jobs=jobs, profile=profile)

    # _execute_points returning means every pending shard was written and
    # atomically published, so no re-scan of the store is needed here.
    if len(done) + len(pending) == len(payloads):
        run.mark_complete()
    return run


def resume_run(run_id: str, *,
               runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
               jobs: int = 1, cache_dir: Optional[str] = None,
               max_points: Optional[int] = None,
               profile: bool = False) -> Run:
    """Finish an interrupted run from its last completed point.

    Only the manifest is needed — not the original spec file — so a run
    directory copied to another machine resumes there just as well.
    """
    run = RunStore(runs_dir).open(run_id)
    return run_spec(run.spec(), runs_dir=runs_dir, run_id=run_id, jobs=jobs,
                    cache_dir=cache_dir, max_points=max_points, resume=True,
                    profile=profile)


def _prepare_shared_tables(payloads: List[Any], pending: List[int], jobs: int):
    """Publish sweep DP tables to shared memory for a parallel run.

    Only the *pending* points' tables are published — a resume with a
    handful of missing shards must not re-solve the whole grid's tables.
    No-op (``None`` publisher, unchanged payloads) for serial runs,
    single-point remainders, scenario-kind payloads, or grids that need
    no tables.
    """
    if jobs <= 1 or len(pending) <= 1 or not isinstance(payloads[0], tuple):
        return None, payloads
    from .experiments.orchestrator import ExperimentConfig, publish_shared_tables

    config = payloads[0][1]
    if not isinstance(config, ExperimentConfig):
        return None, payloads
    publisher, config = publish_shared_tables(
        [payloads[i][0] for i in pending], config)
    if publisher is None:
        return None, payloads
    return publisher, [(point, config) for point, _config in payloads]


def _execute_points(run: Run, payloads: List[Any], pending: List[int],
                    *, jobs: int = 1, profile: bool = False) -> None:
    """Evaluate ``pending`` payload indices, persisting each as it finishes."""
    if not pending:
        return
    if jobs is None or jobs <= 0:
        jobs = max(1, os.cpu_count() or 1)
    started = time.perf_counter()
    profiles: List[Dict[str, float]] = []
    shard_io = 0.0

    def persist(index: int, row: Dict[str, Any]) -> None:
        nonlocal shard_io
        if profile:
            profiles.append(pop_profile(row))
            write_started = time.perf_counter()
            run.write_point(index, row)
            shard_io += time.perf_counter() - write_started
        else:
            run.write_point(index, row)

    publisher, payloads = _prepare_shared_tables(payloads, pending, jobs)
    try:
        if jobs <= 1 or len(pending) <= 1:
            for index in pending:
                persist(index, evaluate_payload(payloads[index]))
        else:
            # Parallel mode: submit everything, persist futures as they
            # complete.  Rows are keyed by point index, so completion order
            # never matters.
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {pool.submit(evaluate_payload, payloads[i]): i
                           for i in pending}
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                    for future in finished:
                        persist(futures[future], future.result())
    finally:
        if publisher is not None:
            publisher.close()
    if profile:
        totals = aggregate_profiles(profiles)
        totals["shard_io"] = totals.get("shard_io", 0.0) + shard_io
        print(render_profile(totals,
                             wall_seconds=time.perf_counter() - started,
                             points=len(pending), jobs=jobs),
              file=sys.stderr)
