"""Worker side of the distributed sweep executor.

A worker is stateless: it connects, adopts the coordinator's spec (or
verifies its own copy by digest), then loops lease -> expand -> fetch
missing DP tables -> evaluate -> stream the shard bytes back.  All the
actual science runs through the exact same code paths as a local run —
``expand_payload_at`` + ``evaluate_payload`` — so a worker can never
produce different numbers than ``--jobs`` on one machine.

Tables fetched from the coordinator's table service are published into
*local* shared memory through a worker-owned
:class:`~repro.experiments.cache.SharedTablePublisher`; with
``jobs > 1`` the worker's own process-pool children attach by name, so
a table crosses the network once per machine and the machine's RAM
once, total.  If shared memory is unavailable the worker degrades to
preloading its in-process caches — slower with many local jobs, never
wrong.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from ..experiments.cache import (
    SharedTablePublisher,
    deserialize_table,
    shared_cache,
)
from ..experiments.orchestrator import (
    ExperimentConfig,
    _worker_cache,
    shared_table_keys,
)
from ..specs import (
    evaluate_payload,
    expand_payload_at,
    parse_spec,
    payload_config,
    payload_digest,
    spec_digest,
)
from ..runstore import row_to_shard_bytes
from .protocol import (
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    check_error,
    connect,
)

__all__ = ["WorkerStats", "WorkerClient"]


@dataclass
class WorkerStats:
    """What one worker did, for logs and tests."""

    worker_id: str = ""
    points_completed: int = 0
    points_duplicate: int = 0
    leases_lost: int = 0
    tables_fetched: int = 0
    table_bytes_received: int = 0
    shard_bytes_sent: int = 0
    lease_ids_seen: Set[str] = field(default_factory=set)


class WorkerClient:
    """One worker process's connection to a coordinator.

    Parameters
    ----------
    host, port:
        Coordinator address.
    spec:
        Optional local copy of the experiment spec.  When given, its
        digest rides the handshake and a mismatch with the coordinator's
        spec is refused up front; when omitted the worker adopts the
        spec shipped in the ``welcome`` message.
    jobs:
        Local evaluation processes.  ``1`` evaluates inline; ``n > 1``
        keeps up to ``n`` leases in flight through a process pool.
    cache_dir:
        On-disk DP cache directory for locally solved tables (tables
        from the table service never touch it — they arrive solved).
    connect_retry_for:
        Seconds to tolerate connection refusal at startup (workers often
        race their coordinator's bind).
    """

    def __init__(self, host: str, port: int, *,
                 spec=None, worker_id: Optional[str] = None,
                 jobs: int = 1, cache_dir: Optional[str] = None,
                 connect_retry_for: float = 10.0,
                 socket_timeout: float = 600.0):
        self._host, self._port = host, int(port)
        self._spec = spec
        self._jobs = max(1, int(jobs))
        self._cache_dir = cache_dir
        self._connect_retry_for = connect_retry_for
        self._socket_timeout = socket_timeout
        self.stats = WorkerStats(worker_id=worker_id or uuid.uuid4().hex[:12])
        self._held_leases: Set[str] = set()
        self._lost_leases: Set[str] = set()
        self._lease_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()
        self._table_keys_have: Set[Tuple[int, int, int, str]] = set()
        self._table_handles: List[Any] = []
        self._publisher: Optional[SharedTablePublisher] = None

    # -- lease bookkeeping (shared with the heartbeat thread) -----------
    def _hold(self, lease_id: str) -> None:
        with self._lease_lock:
            self._held_leases.add(lease_id)
            self.stats.lease_ids_seen.add(lease_id)

    def _drop(self, lease_id: str) -> bool:
        """Forget a lease; False when a heartbeat reported it lost."""
        with self._lease_lock:
            self._held_leases.discard(lease_id)
            return lease_id not in self._lost_leases

    def _heartbeat_loop(self, conn: Connection, interval: float) -> None:
        while not self._stop_heartbeat.wait(interval):
            with self._lease_lock:
                held = sorted(self._held_leases)
            if not held:
                continue
            try:
                reply, _ = conn.request({"type": "heartbeat",
                                         "worker_id": self.stats.worker_id,
                                         "lease_ids": held})
            except (ProtocolError, OSError):
                return  # the main loop will hit the same broken socket
            lost = reply.get("lost") or []
            if lost:
                with self._lease_lock:
                    self._lost_leases.update(str(lease) for lease in lost)
                self.stats.leases_lost += len(lost)

    # -- table service ---------------------------------------------------
    def _ensure_tables(self, conn: Connection, point,
                       config: ExperimentConfig) -> ExperimentConfig:
        """Fetch and locally publish the DP tables ``point`` will need."""
        needed = [(L, c, p, config.dp_method)
                  for L, c, p in shared_table_keys([point], config)]
        missing = [key for key in needed if key not in self._table_keys_have]
        for key in missing:
            reply, blob = conn.request({"type": "table", "key": list(key)})
            check_error(reply)
            digest = hashlib.sha256(blob).hexdigest()
            if digest != reply.get("sha256"):
                raise ProtocolError(
                    f"table {key!r} arrived corrupt: sha256 {digest[:12]}... "
                    f"!= announced {str(reply.get('sha256'))[:12]}...")
            table = deserialize_table(blob, key=key)
            self.stats.tables_fetched += 1
            self.stats.table_bytes_received += len(blob)
            try:
                if self._publisher is None:
                    self._publisher = SharedTablePublisher()
                handle = self._publisher.publish(table, method=key[3])
                self._table_handles.append(handle)
            except OSError:
                # No shared memory here: preload this process's caches so
                # inline evaluation still never re-solves; pool children
                # fall back to solving locally (slower, never wrong).
                _worker_cache(config.cache_dir).preload(table, method=key[3])
                shared_cache().preload(table, method=key[3])
            self._table_keys_have.add(key)
        if self._table_handles:
            return replace(config,
                           shared_tables=tuple(self._table_handles))
        return config

    # -- main loop -------------------------------------------------------
    def run(self) -> WorkerStats:
        """Work until the coordinator reports the run done."""
        conn = connect(self._host, self._port,
                       timeout=self._socket_timeout,
                       retry_for=self._connect_retry_for)
        heartbeat: Optional[threading.Thread] = None
        pool: Optional[ProcessPoolExecutor] = None
        try:
            hello = {"type": "hello", "protocol": PROTOCOL_VERSION,
                     "worker_id": self.stats.worker_id}
            if self._spec is not None:
                hello["spec_digest"] = spec_digest(self._spec)
            welcome, _ = conn.request(hello)
            check_error(welcome)
            spec = (self._spec if self._spec is not None
                    else parse_spec(welcome["spec"],
                                    source=f"coordinator:{welcome['run_id']}"))
            ttl = float(welcome.get("lease_ttl", 60.0))
            config = payload_config(spec, cache_dir=self._cache_dir)

            self._stop_heartbeat.clear()
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(conn, max(ttl / 3.0, 0.05)),
                name="repro-worker-heartbeat", daemon=True)
            heartbeat.start()

            if self._jobs <= 1:
                self._run_inline(conn, spec, config)
            else:
                pool = ProcessPoolExecutor(max_workers=self._jobs)
                self._run_pooled(conn, spec, config, pool)
            try:
                conn.request({"type": "bye",
                              "worker_id": self.stats.worker_id})
            except (ProtocolError, OSError):
                pass
            return self.stats
        finally:
            self._stop_heartbeat.set()
            if heartbeat is not None:
                heartbeat.join(timeout=5.0)
            if pool is not None:
                pool.shutdown(wait=False)
            if self._publisher is not None:
                self._publisher.close()
                self._publisher = None
            conn.close()

    def _lease(self, conn: Connection) -> Optional[Dict[str, Any]]:
        """One lease request; returns a grant, or None when the run is done.

        Blocks through ``wait`` replies (everything currently leased out)."""
        while True:
            reply, _ = conn.request({"type": "lease",
                                     "worker_id": self.stats.worker_id})
            check_error(reply)
            kind = reply.get("type")
            if kind == "grant":
                self._hold(str(reply["lease_id"]))
                return reply
            if kind == "done":
                return None
            time.sleep(float(reply.get("retry_after", 0.2)))

    def _expand(self, spec, config: ExperimentConfig,
                grant: Dict[str, Any], conn: Connection):
        """Materialise the granted point's payload, digest-verified."""
        index = int(grant["index"])
        payload = expand_payload_at(spec, index, config=config)
        expected = grant.get("payload_digest")
        if expected is not None and payload_digest(payload) != expected:
            raise ProtocolError(
                f"payload digest mismatch at point {index}: the "
                "coordinator's manifest and this worker's grid expansion "
                "disagree — refusing to compute (version skew between "
                "coordinator and worker?)")
        if isinstance(payload, tuple):
            point, point_config = payload
            point_config = self._ensure_tables(conn, point, point_config)
            payload = (point, point_config)
        return payload

    def _submit_result(self, conn: Connection, index: int, lease_id: str,
                       row: Dict[str, Any]) -> None:
        if not self._drop(lease_id):
            # Heartbeat says this lease expired and the point went back
            # to pending — submit anyway: the bytes are deterministic, so
            # we either win the race or land as an identical duplicate.
            pass
        blob = row_to_shard_bytes(row)
        reply, _ = conn.request(
            {"type": "result", "worker_id": self.stats.worker_id,
             "index": index, "lease_id": lease_id,
             "sha256": hashlib.sha256(blob).hexdigest()},
            blob)
        check_error(reply)
        self.stats.shard_bytes_sent += len(blob)
        if reply.get("duplicate"):
            self.stats.points_duplicate += 1
        else:
            self.stats.points_completed += 1

    def _run_inline(self, conn: Connection, spec,
                    config: ExperimentConfig) -> None:
        while True:
            grant = self._lease(conn)
            if grant is None:
                return
            payload = self._expand(spec, config, grant, conn)
            self._submit_result(conn, int(grant["index"]),
                                str(grant["lease_id"]),
                                evaluate_payload(payload))

    def _run_pooled(self, conn: Connection, spec,
                    config: ExperimentConfig,
                    pool: ProcessPoolExecutor) -> None:
        futures: Dict[Any, Tuple[int, str]] = {}
        draining = False
        while True:
            while not draining and len(futures) < self._jobs:
                grant = self._lease(conn)
                if grant is None:
                    draining = True
                    break
                payload = self._expand(spec, config, grant, conn)
                future = pool.submit(evaluate_payload, payload)
                futures[future] = (int(grant["index"]),
                                   str(grant["lease_id"]))
            if not futures:
                return
            finished, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in finished:
                index, lease_id = futures.pop(future)
                self._submit_result(conn, index, lease_id, future.result())
