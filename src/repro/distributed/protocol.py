"""Wire protocol of the distributed sweep executor.

Frames are length-prefixed JSON with an optional raw binary payload:

.. code-block:: text

    +----------------+---------------------+----------------------+
    | 4 bytes (BE)   | <header_len> bytes  | header["blob_len"]   |
    | header length  | UTF-8 JSON header   | raw bytes (optional) |
    +----------------+---------------------+----------------------+

Every message is a JSON object with a ``"type"`` key; a header that
declares ``"blob_len"`` is immediately followed by exactly that many raw
bytes (shard ``.npz`` contents or serialized DP tables — they are never
JSON-encoded, so a megabyte table costs a megabyte on the wire).

Message catalogue (worker -> coordinator, with the coordinator's replies):

``hello {protocol, worker_id, spec_digest?}``
    Handshake.  Reply ``welcome {run_id, num_points, lease_ttl, spec}``
    or ``error`` (protocol or spec-digest mismatch; fatal).
``lease {worker_id}``
    Ask for work.  Reply ``grant {index, lease_id, ttl, payload_digest?}``,
    ``wait {retry_after}`` (everything leased out, not everything done),
    or ``done {}`` (run complete — disconnect).
``heartbeat {worker_id, lease_ids}``
    Renew held leases.  Reply ``ok {renewed, lost}``; a lease in ``lost``
    expired and was handed to someone else — abandon that point.
``table {key}``
    Fetch a DP table by cache key ``[L, c, p, method]``.  Reply
    ``table {key, setup_cost, sha256, blob_len}`` + blob.
``result {worker_id, index, lease_id, sha256, blob_len}`` + blob
    Stream one completed point's shard bytes.  Reply
    ``ok {accepted, duplicate}`` or ``error {message, fatal}``.
``bye {worker_id}``
    Polite disconnect (reply ``ok {}``); a vanished socket means the
    same thing, just less politely.

The protocol is deliberately synchronous per connection (one
request/one reply); concurrency comes from many worker connections, and
a worker's heartbeat thread shares its socket through the
:class:`Connection` RPC lock.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from ..core.exceptions import CycleStealingError

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "send_frame", "recv_frame",
           "Connection", "check_error", "fatal_error", "soft_error",
           "resolve_bind", "connect"]

#: Bump on any incompatible frame/message change; the handshake refuses
#: mismatched peers before any work is leased.
PROTOCOL_VERSION = 1

_LEN = struct.Struct(">I")

#: A JSON header larger than this is garbage (or a stream desync), not a
#: message — fail fast instead of trying to allocate it.
MAX_HEADER_BYTES = 4 * 1024 * 1024

#: Blobs are shards (KBs) or DP tables (MBs); anything near this bound
#: indicates a desynchronised stream, not a legitimate payload.
MAX_BLOB_BYTES = 1 << 30


class ProtocolError(CycleStealingError):
    """Malformed frame, protocol mismatch, or a fatal peer error reply."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise (EOF mid-frame is an error)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, header: Dict[str, Any],
               blob: bytes = b"") -> None:
    """Serialize and send one frame (header JSON + optional blob)."""
    if blob:
        header = dict(header, blob_len=len(blob))
    encoded = json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(encoded)) + encoded + blob)


def recv_frame(sock: socket.socket) -> Tuple[Dict[str, Any], bytes]:
    """Receive one frame; returns ``(header, blob)`` (blob may be empty)."""
    header_len = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header of {header_len} bytes exceeds the "
                            f"{MAX_HEADER_BYTES}-byte bound (stream desync?)")
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(f"frame header is not a typed object: {header!r}")
    blob_len = header.get("blob_len", 0)
    if not isinstance(blob_len, int) or blob_len < 0 \
            or blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(f"invalid blob_len {blob_len!r}")
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    return header, blob


class Connection:
    """A framed socket with an RPC lock (one request/reply at a time).

    The worker's heartbeat thread and its main lease loop share one
    socket; the lock serialises whole request/reply exchanges so frames
    never interleave.  Evaluation (the long part) happens outside the
    lock — only the wire time is serialised.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.Lock()

    def request(self, header: Dict[str, Any],
                blob: bytes = b"") -> Tuple[Dict[str, Any], bytes]:
        """Send one frame and block for the single reply frame."""
        with self._lock:
            send_frame(self._sock, header, blob)
            return recv_frame(self._sock)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def check_error(header: Dict[str, Any]) -> Dict[str, Any]:
    """Raise :class:`ProtocolError` when a reply is an ``error`` message."""
    if header.get("type") == "error":
        raise ProtocolError(str(header.get("message", "peer reported error")))
    return header


def fatal_error(message: str) -> Dict[str, Any]:
    """An ``error`` reply after which the peer should disconnect."""
    return {"type": "error", "message": message, "fatal": True}


def soft_error(message: str) -> Dict[str, Any]:
    """An ``error`` reply the peer may recover from (keep the connection)."""
    return {"type": "error", "message": message, "fatal": False}


def resolve_bind(address: str) -> Tuple[str, int]:
    """Parse a ``host:port`` bind/connect string (port may be 0)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ProtocolError(
            f"address {address!r} is not of the form host:port")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ProtocolError(f"invalid port in address {address!r}") from exc


def connect(host: str, port: int, *, timeout: Optional[float] = None,
            retry_for: float = 0.0, retry_interval: float = 0.2) -> Connection:
    """Open a connection, optionally retrying while the peer comes up.

    ``retry_for`` seconds of connection refusals are tolerated (workers
    routinely start before their coordinator has bound its socket);
    other socket errors propagate immediately.
    """
    import time

    deadline = time.monotonic() + retry_for
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(timeout)
            return Connection(sock)
        except ConnectionRefusedError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(retry_interval)
