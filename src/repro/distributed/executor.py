"""Loopback cluster executor: coordinator + N worker processes, one call.

:func:`run_spec_distributed` is the cluster-shaped sibling of
:func:`repro.runstore.run_spec`: same spec in, same :class:`Run` out,
byte-identical run directory — the points just happen to be computed by
worker *processes* talking the wire protocol over loopback TCP instead
of a process pool sharing memory.  It is what ``repro run --executor
cluster`` and the run-service's cluster executor call; multi-machine
deployments run ``repro coordinator`` / ``repro worker`` directly and
never go through this module.

Workers are spawned with the multiprocessing ``spawn`` start method so
each one exercises the real cold-start path (fresh interpreter, spec
adopted over the wire or re-parsed from a dict) — the same thing a
worker on another machine would do.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Union

from ..runstore import DEFAULT_RUNS_DIR, Run
from ..specs import ExperimentSpec, parse_spec, spec_to_dict
from .coordinator import Coordinator, DistributedError
from .worker import WorkerClient

__all__ = ["run_spec_distributed", "DistributedError"]


def _worker_entry(host: str, port: int, spec_data: Optional[Dict[str, Any]],
                  worker_id: str, jobs: int,
                  cache_dir: Optional[str]) -> None:
    """Module-level so it pickles into a ``spawn`` child."""
    spec = None if spec_data is None else parse_spec(spec_data,
                                                     source="cluster-worker")
    WorkerClient(host, port, spec=spec, worker_id=worker_id, jobs=jobs,
                 cache_dir=cache_dir).run()


def run_spec_distributed(spec: ExperimentSpec, *,
                         runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
                         run_id: Optional[str] = None,
                         workers: int = 2,
                         worker_jobs: int = 1,
                         cache_dir: Optional[str] = None,
                         lease_ttl: float = 60.0,
                         resume: bool = False,
                         timeout: Optional[float] = None,
                         metrics_out: Optional[Dict[str, Any]] = None) -> Run:
    """Execute a spec through a coordinator + ``workers`` local processes.

    Parameters mirror :func:`repro.runstore.run_spec` where they overlap;
    ``workers`` replaces ``jobs`` as the parallelism knob (each worker
    additionally runs ``worker_jobs`` local evaluation processes).
    ``metrics_out``, when given, receives the coordinator's final
    metrics snapshot — the benchmark reads DP-solve and lease counters
    from it.

    Worker death is survivable as long as at least one worker remains:
    dead workers' leases return to the pending set and the survivors
    steal them.  Only when *every* worker has exited with points still
    pending does this raise :class:`DistributedError`.
    """
    workers = max(1, int(workers))
    coordinator = Coordinator(spec, runs_dir=runs_dir, run_id=run_id,
                              host="127.0.0.1", port=0, lease_ttl=lease_ttl,
                              resume=resume, cache_dir=cache_dir)
    context = multiprocessing.get_context("spawn")
    processes: List[multiprocessing.Process] = []
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        coordinator.start()
        host, port = coordinator.address
        spec_data = spec_to_dict(spec)
        for rank in range(workers):
            process = context.Process(
                target=_worker_entry,
                args=(host, port, spec_data, f"loopback-{rank}",
                      worker_jobs, cache_dir),
                name=f"repro-cluster-worker-{rank}", daemon=True)
            process.start()
            processes.append(process)
        while not coordinator.wait(timeout=0.05):
            if deadline is not None and time.monotonic() > deadline:
                raise DistributedError(
                    f"cluster run {coordinator.run.run_id!r} timed out "
                    f"after {timeout}s")
            if all(not process.is_alive() for process in processes):
                # One last check: the final worker may have completed the
                # run and exited between our wait() and is_alive() polls.
                if coordinator.wait(timeout=0.5):
                    break
                raise DistributedError(
                    f"all {workers} workers exited with points still "
                    f"pending in run {coordinator.run.run_id!r} "
                    f"(ledger: {coordinator.ledger.counts()})")
        for process in processes:
            process.join(timeout=30.0)
    finally:
        coordinator.stop()
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    if metrics_out is not None:
        metrics_out.update(coordinator.metrics_snapshot())
    return coordinator.run
