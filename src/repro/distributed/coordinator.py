"""Coordinator side of the distributed sweep executor.

Owns the run directory and the authoritative point ledger.  Workers
connect over TCP, lease pending point indices (work-stealing: whoever
asks first gets the next point), fetch DP tables from the content-
addressed table service, and stream completed shard bytes back.  The
coordinator is the *only* process that writes the run store, so every
atomicity/resume/vouch guarantee of a single-machine run carries over
verbatim — a remotely computed shard lands through the same
temp-file + rename path as a local one.

Fault model: a worker that dies (or whose leases expire while it grinds
on a slow point) simply returns its points to the pending set; whoever
completes a point first wins, and a late duplicate completion is
accepted only if its bytes are identical to what the winner wrote
(shard bytes are deterministic functions of the row, so an honest
duplicate *is* byte-identical).
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..core.exceptions import CycleStealingError
from ..experiments.cache import DPTableCache, serialize_table
from ..runstore import DEFAULT_RUNS_DIR, Run, RunStore, RunStoreError, run_spec
from ..specs import ExperimentSpec, default_run_id, spec_digest, spec_to_dict
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    fatal_error,
    recv_frame,
    send_frame,
    soft_error,
)

__all__ = ["Lease", "PointLedger", "Coordinator", "DistributedError"]

#: Seconds a worker should wait before re-asking when everything is
#: leased out but not yet done.
WAIT_RETRY_AFTER = 0.2


class DistributedError(CycleStealingError):
    """Cluster-level failure (no workers left, unresolvable run state)."""


@dataclass
class Lease:
    """One outstanding claim on a point index."""

    index: int
    lease_id: str
    worker_id: str
    expires_at: float


@dataclass
class LedgerCounts:
    """Point-state census used by ``/metrics`` and the wait loop."""

    pending: int
    leased: int
    done: int
    total: int


class PointLedger:
    """Thread-safe pending/leased/done bookkeeping with lease expiry.

    Expiry is lazy: expired leases are reaped to the pending set inside
    :meth:`lease`, :meth:`renew` and :meth:`counts` — there is no timer
    thread, so a test can drive the clock with tiny TTLs and the
    production path has one fewer moving part.
    """

    def __init__(self, pending, *, ttl: float, total: int,
                 done: Optional[Set[int]] = None):
        self._lock = threading.Lock()
        self._pending: List[int] = sorted(pending)
        self._leases: Dict[int, Lease] = {}
        self._done: Set[int] = set(done or ())
        self._ttl = float(ttl)
        self._total = int(total)
        self.granted = 0
        self.expired = 0

    @property
    def ttl(self) -> float:
        return self._ttl

    def _reap_expired(self, now: float) -> None:
        # caller holds the lock
        stale = [lease for lease in self._leases.values()
                 if lease.expires_at <= now]
        for lease in stale:
            del self._leases[lease.index]
            self._pending.append(lease.index)
            self.expired += 1
        if stale:
            self._pending.sort()

    def lease(self, worker_id: str) -> Union[Lease, str]:
        """Grant the lowest pending index, or ``"wait"`` / ``"done"``."""
        now = time.monotonic()
        with self._lock:
            self._reap_expired(now)
            if self._pending:
                index = self._pending.pop(0)
                lease = Lease(index=index, lease_id=uuid.uuid4().hex,
                              worker_id=worker_id,
                              expires_at=now + self._ttl)
                self._leases[index] = lease
                self.granted += 1
                return lease
            return "done" if len(self._done) >= self._total else "wait"

    def renew(self, worker_id: str,
              lease_ids) -> Tuple[List[str], List[str]]:
        """Heartbeat: extend the given leases; report which were lost."""
        now = time.monotonic()
        wanted = set(lease_ids)
        renewed: List[str] = []
        with self._lock:
            self._reap_expired(now)
            for lease in self._leases.values():
                if lease.lease_id in wanted and lease.worker_id == worker_id:
                    lease.expires_at = now + self._ttl
                    renewed.append(lease.lease_id)
        return renewed, sorted(wanted - set(renewed))

    def complete(self, index: int) -> bool:
        """Mark a point done (idempotent); True when it was newly done."""
        with self._lock:
            if index in self._done:
                return False
            self._done.add(index)
            self._leases.pop(index, None)
            try:
                self._pending.remove(index)
            except ValueError:
                pass
            return True

    def is_done(self, index: int) -> bool:
        with self._lock:
            return index in self._done

    def all_done(self) -> bool:
        with self._lock:
            return len(self._done) >= self._total

    def release_worker(self, worker_id: str) -> int:
        """Return a dead worker's leases to the pending set."""
        with self._lock:
            stale = [lease for lease in self._leases.values()
                     if lease.worker_id == worker_id]
            for lease in stale:
                del self._leases[lease.index]
                self._pending.append(lease.index)
            if stale:
                self._pending.sort()
            return len(stale)

    def counts(self) -> LedgerCounts:
        now = time.monotonic()
        with self._lock:
            self._reap_expired(now)
            return LedgerCounts(pending=len(self._pending),
                                leased=len(self._leases),
                                done=len(self._done), total=self._total)


@dataclass
class CoordinatorMetrics:
    """Counters the ``/metrics`` endpoint and benchmarks read."""

    workers_seen: Set[str] = field(default_factory=set)
    workers_connected: int = 0
    table_requests: int = 0
    table_hits: int = 0
    table_misses: int = 0
    table_bytes_streamed: int = 0
    shards_streamed: int = 0
    shard_bytes_streamed: int = 0
    duplicates_identical: int = 0
    duplicates_rejected: int = 0


class Coordinator:
    """TCP server that owns a run and leases its pending points.

    The run directory is created (or opened for resume) exactly as
    :func:`repro.runstore.run_spec` would, so ``repro resume``,
    ``repro report`` and the consolidation/vouch machinery treat a
    distributed run identically to a local one.

    Start with :meth:`start` (binds and returns immediately), wait for
    completion with :meth:`wait`, and always :meth:`stop` in a
    ``finally``.  ``port=0`` binds an ephemeral port; read
    :attr:`address` after ``start()``.
    """

    def __init__(self, spec: ExperimentSpec, *,
                 runs_dir: Union[str, os.PathLike] = DEFAULT_RUNS_DIR,
                 run_id: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 lease_ttl: float = 60.0,
                 resume: bool = False,
                 cache_dir: Optional[str] = None,
                 table_cache: Optional[DPTableCache] = None):
        self.spec = spec
        self.spec_digest = spec_digest(spec)
        self._spec_data = spec_to_dict(spec)
        self._host, self._port = host, int(port)
        self._lease_ttl = float(lease_ttl)
        # Covering lookups are disabled: the table service is
        # content-addressed, so a request for (60, 1, 1) must yield THE
        # blob for that key — not a larger covering table whose bytes
        # (and sha256) depend on which keys other workers asked for
        # first.  Exact keys keep the blob-per-key mapping canonical and
        # make "one DP solve per distinct key" a deterministic invariant
        # rather than an arrival-order accident.
        self._cache = (table_cache if table_cache is not None
                       else DPTableCache(cache_dir=cache_dir,
                                         allow_covering=False))
        self.metrics = CoordinatorMetrics()
        self._metrics_lock = threading.Lock()
        self._table_wire: Dict[Tuple[int, int, int, str],
                               Tuple[int, bytes, str]] = {}
        self._write_lock = threading.Lock()
        self._finished = threading.Event()
        self._failure: Optional[BaseException] = None
        self._server_sock: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

        store = RunStore(runs_dir)
        run_id = run_id or default_run_id(spec)
        if store.exists(run_id):
            if not resume:
                raise RunStoreError(
                    f"run {run_id!r} already exists under {store.root!r}; "
                    "pass resume=True (or `repro resume`) to continue it")
            self.run: Run = store.open(run_id)
            if self.run.spec() != spec:
                raise RunStoreError(
                    f"run {run_id!r} was created from a different spec; "
                    "refusing to mix results (start a fresh run id instead)")
        else:
            # Creating through run_spec with max_points=0 reuses its full
            # manifest construction (payload digests included) without
            # computing any points here — the cluster computes them.
            self.run = run_spec(spec, runs_dir=runs_dir, run_id=run_id,
                                max_points=0, cache_dir=cache_dir)
        done = self.run.completed_points()
        total = self.run.num_points
        self.ledger = PointLedger(
            (i for i in range(total) if i not in done),
            ttl=self._lease_ttl, total=total, done=done)
        self._payload_digests = self.run.manifest.get("payload_digests")
        if self.ledger.all_done():
            self._finalise()

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        if self._server_sock is None:
            raise DistributedError("coordinator not started")
        return self._server_sock.getsockname()[:2]

    def start(self) -> "Coordinator":
        sock = socket.create_server((self._host, self._port), backlog=64)
        self._server_sock = sock
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="repro-coordinator-accept",
                                    daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every point is done (True) or timeout (False)."""
        finished = self._finished.wait(timeout)
        if finished and self._failure is not None:
            raise DistributedError(
                f"coordinator failed: {self._failure}") from self._failure
        return finished

    def stop(self, grace: float = 5.0) -> None:
        """Stop accepting and drain in-flight connections.

        Closing the listening socket stops new workers; existing
        connection handlers are then given ``grace`` seconds (total, not
        each) to flush their final replies and observe their workers'
        ``bye`` — without this, a coordinator process exiting right
        after the last point completes races its own daemon handler
        threads and a worker can lose the ``ok`` for the result it just
        streamed.  Handlers still blocked after the grace (a worker dead
        mid-point) are abandoned; their sockets die with the process.
        """
        sock, self._server_sock = self._server_sock, None
        if sock is not None:
            try:
                # shutdown() wakes a thread blocked in accept() (closing
                # alone does not, on Linux) so the acceptor exits now
                # instead of eating the whole grace below.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        deadline = time.monotonic() + grace
        current = threading.current_thread()
        for thread in self._threads:
            if thread is current:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- metrics --------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        counts = self.ledger.counts()
        with self._metrics_lock:
            m = self.metrics
            return {
                "points": {"pending": counts.pending, "leased": counts.leased,
                           "done": counts.done, "total": counts.total},
                "workers": {"connected": m.workers_connected,
                            "seen": len(m.workers_seen)},
                "table_service": {"requests": m.table_requests,
                                  "hits": m.table_hits,
                                  "misses": m.table_misses,
                                  "dp_solves": self._cache.stats.misses,
                                  "bytes_streamed": m.table_bytes_streamed},
                "shards": {"streamed": m.shards_streamed,
                           "bytes_streamed": m.shard_bytes_streamed,
                           "duplicates_identical": m.duplicates_identical,
                           "duplicates_rejected": m.duplicates_rejected},
                "leases": {"granted": self.ledger.granted,
                           "expired": self.ledger.expired},
            }

    # -- server internals ----------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            sock = self._server_sock
            if sock is None:
                return
            try:
                conn, _addr = sock.accept()
            except OSError:
                return  # stop() closed the socket
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,),
                                      name="repro-coordinator-conn",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        worker_id: Optional[str] = None
        try:
            conn.settimeout(max(4 * self._lease_ttl, 10.0))
            header, _blob = recv_frame(conn)
            worker_id = self._handshake(conn, header)
            if worker_id is None:
                return
            while True:
                header, blob = recv_frame(conn)
                kind = header.get("type")
                if kind == "lease":
                    send_frame(conn, self._handle_lease(header))
                elif kind == "heartbeat":
                    send_frame(conn, self._handle_heartbeat(header))
                elif kind == "table":
                    reply, table_blob = self._handle_table(header)
                    send_frame(conn, reply, table_blob)
                elif kind == "result":
                    send_frame(conn, self._handle_result(header, blob))
                elif kind == "bye":
                    send_frame(conn, {"type": "ok"})
                    return
                else:
                    send_frame(conn, fatal_error(
                        f"unknown message type {kind!r}"))
                    return
        except (ProtocolError, OSError):
            pass  # worker vanished; its leases are released below
        except BaseException as exc:  # surface real bugs to wait()
            self._failure = exc
            self._finished.set()
        finally:
            if worker_id is not None:
                self.ledger.release_worker(worker_id)
                with self._metrics_lock:
                    self.metrics.workers_connected -= 1
            try:
                conn.close()
            except OSError:
                pass

    def _handshake(self, conn: socket.socket,
                   header: Dict[str, Any]) -> Optional[str]:
        if header.get("type") != "hello":
            send_frame(conn, fatal_error(
                f"expected hello, got {header.get('type')!r}"))
            return None
        if header.get("protocol") != PROTOCOL_VERSION:
            send_frame(conn, fatal_error(
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, worker offered "
                f"{header.get('protocol')!r}"))
            return None
        offered = header.get("spec_digest")
        if offered is not None and offered != self.spec_digest:
            send_frame(conn, fatal_error(
                "spec digest mismatch: this coordinator runs "
                f"{self.run.run_id!r} with spec digest "
                f"{self.spec_digest[:12]}..., the worker offered "
                f"{str(offered)[:12]}... — point the worker at the same "
                "spec file (or omit --spec to adopt the coordinator's)"))
            return None
        worker_id = str(header.get("worker_id") or uuid.uuid4().hex)
        with self._metrics_lock:
            self.metrics.workers_seen.add(worker_id)
            self.metrics.workers_connected += 1
        send_frame(conn, {"type": "welcome", "run_id": self.run.run_id,
                          "num_points": self.run.num_points,
                          "lease_ttl": self._lease_ttl,
                          "worker_id": worker_id,
                          "spec": self._spec_data})
        return worker_id

    def _handle_lease(self, header: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(header.get("worker_id", ""))
        outcome = self.ledger.lease(worker_id)
        if outcome == "done":
            return {"type": "done"}
        if outcome == "wait":
            return {"type": "wait", "retry_after": WAIT_RETRY_AFTER}
        digest = None
        if self._payload_digests \
                and outcome.index < len(self._payload_digests):
            digest = self._payload_digests[outcome.index]
        return {"type": "grant", "index": outcome.index,
                "lease_id": outcome.lease_id, "ttl": self._lease_ttl,
                "payload_digest": digest}

    def _handle_heartbeat(self, header: Dict[str, Any]) -> Dict[str, Any]:
        renewed, lost = self.ledger.renew(
            str(header.get("worker_id", "")),
            [str(lease) for lease in header.get("lease_ids", ())])
        return {"type": "ok", "renewed": renewed, "lost": lost}

    def _handle_table(self,
                      header: Dict[str, Any]) -> Tuple[Dict[str, Any], bytes]:
        raw = header.get("key")
        if not (isinstance(raw, (list, tuple)) and len(raw) == 4):
            return soft_error(f"malformed table key {raw!r}"), b""
        try:
            key = (int(raw[0]), int(raw[1]), int(raw[2]), str(raw[3]))
        except (TypeError, ValueError):
            return soft_error(f"malformed table key {raw!r}"), b""
        with self._metrics_lock:
            self.metrics.table_requests += 1
            entry = self._table_wire.get(key)
            if entry is not None:
                self.metrics.table_hits += 1
        if entry is None:
            # DPTableCache.solve holds an RLock, so concurrent workers
            # requesting the same key still trigger exactly one solve.
            try:
                table = self._cache.solve(key[0], key[1], key[2],
                                          method=key[3])
            except CycleStealingError as exc:
                return soft_error(f"cannot solve table {key!r}: {exc}"), b""
            blob = serialize_table(table)
            digest = hashlib.sha256(blob).hexdigest()
            with self._metrics_lock:
                entry = self._table_wire.get(key)
                if entry is None:
                    entry = (table.setup_cost, blob, digest)
                    self._table_wire[key] = entry
                    self.metrics.table_misses += 1
                else:
                    self.metrics.table_hits += 1
        setup_cost, blob, digest = entry
        with self._metrics_lock:
            self.metrics.table_bytes_streamed += len(blob)
        return {"type": "table", "key": list(key), "setup_cost": setup_cost,
                "sha256": digest}, blob

    def _handle_result(self, header: Dict[str, Any],
                       blob: bytes) -> Dict[str, Any]:
        try:
            index = int(header["index"])
        except (KeyError, TypeError, ValueError):
            return soft_error("result without a valid point index")
        if not 0 <= index < self.run.num_points:
            return soft_error(f"point index {index} out of range")
        claimed = str(header.get("sha256", ""))
        actual = hashlib.sha256(blob).hexdigest()
        if claimed != actual:
            return soft_error(
                f"shard digest mismatch for point {index}: stream carried "
                f"{actual[:12]}..., header claimed {claimed[:12]}... — "
                "shard discarded, point stays pending")
        # Writes are serialised: the duplicate check and the write must be
        # atomic with respect to one another, or two racing workers could
        # both see "not done" and both write (harmless for identical bytes,
        # but the duplicate accounting would lie).
        with self._write_lock:
            if self.ledger.is_done(index):
                return self._verify_duplicate(index, blob, actual)
            try:
                self.run.write_point_bytes(index, blob)
            except RunStoreError as exc:
                return soft_error(
                    f"shard for point {index} failed validation: {exc}")
            self.ledger.complete(index)
        with self._metrics_lock:
            self.metrics.shards_streamed += 1
            self.metrics.shard_bytes_streamed += len(blob)
        if self.ledger.all_done():
            self._finalise()
        return {"type": "ok", "accepted": True, "duplicate": False}

    def _verify_duplicate(self, index: int, blob: bytes,
                          digest: str) -> Dict[str, Any]:
        """Second completion of a done point: identical bytes or rejected."""
        try:
            with open(self.run.shard_path(index), "rb") as handle:
                existing = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            existing = None
        if existing == digest:
            with self._metrics_lock:
                self.metrics.duplicates_identical += 1
            return {"type": "ok", "accepted": False, "duplicate": True}
        with self._metrics_lock:
            self.metrics.duplicates_rejected += 1
        return soft_error(
            f"duplicate completion of point {index} with different bytes "
            f"(got {digest[:12]}..., first writer published "
            f"{str(existing)[:12]}...); first write wins — rejected")

    def _finalise(self) -> None:
        """All points done: consolidate, mark complete, release waiters."""
        with self._write_lock:
            if self._finished.is_set():
                return
            try:
                self.run.consolidate_columns(force=True)
            except (OSError, RunStoreError):
                pass
            self.run.mark_complete()
            self._finished.set()
