"""Distributed work-stealing sweep executor (ROADMAP item 1).

A coordinator owns a run directory and leases pending point indices to
workers over a length-prefixed JSON/TCP protocol; workers compute
points through the exact same ``expand_payload_at`` /
``evaluate_payload`` machinery as a local run and stream deterministic
shard bytes back, sha256-verified.  A content-addressed table service
solves each DP ``(L, c, p, method)`` table once per *cluster* and ships
the bytes to whichever machines need them.

See ``docs/distributed.md`` for the protocol frames, the lease
lifecycle, and the failure matrix.
"""

from .coordinator import Coordinator, DistributedError, Lease, PointLedger
from .executor import run_spec_distributed
from .protocol import PROTOCOL_VERSION, Connection, ProtocolError
from .worker import WorkerClient, WorkerStats

__all__ = [
    "Coordinator",
    "DistributedError",
    "Lease",
    "PointLedger",
    "run_spec_distributed",
    "PROTOCOL_VERSION",
    "Connection",
    "ProtocolError",
    "WorkerClient",
    "WorkerStats",
]
