"""Optimality-gap measurements.

The paper's central claim is that its guidelines are optimal "up to
low-order additive terms".  The functions here make that claim measurable:
they compute the exact guaranteed work of a scheduler (worst case over all
adversary behaviours), compare it against the exact optimum from the
dynamic program, and express the gap both absolutely and relative to the
natural ``√(cU)`` scale of the problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from ..core.game import (
    AdaptiveSchedulerProtocol,
    NonAdaptiveSchedulerProtocol,
    guaranteed_adaptive_work,
)
from ..core.params import CycleStealingParams
from ..core.work import worst_case_nonadaptive_work
from ..dp import ValueTable

__all__ = ["GapReport", "measure_guaranteed_work", "optimality_gap",
           "dp_table_for"]


@dataclass(frozen=True)
class GapReport:
    """Measured guaranteed work of a scheduler versus the exact optimum."""

    #: Parameters of the opportunity.
    params: CycleStealingParams
    #: Scheduler identifier (its ``name`` attribute when available).
    scheduler: str
    #: Exact worst-case work of the scheduler.
    guaranteed_work: float
    #: Exact optimal guaranteed work ``W^(p)[U]`` (None when no DP table given).
    optimal_work: Optional[float]

    @property
    def gap(self) -> Optional[float]:
        """Absolute shortfall from optimal (``None`` without an optimum)."""
        if self.optimal_work is None:
            return None
        return self.optimal_work - self.guaranteed_work

    @property
    def relative_gap(self) -> Optional[float]:
        """Gap divided by the optimal work (``None`` without an optimum)."""
        if self.optimal_work is None or self.optimal_work == 0.0:
            return None
        return self.gap / self.optimal_work

    @property
    def normalized_gap(self) -> Optional[float]:
        """Gap divided by ``√(cU)`` — the scale of the leading loss terms.

        A gap that stays bounded (or shrinks) on this scale as ``U/c`` grows
        is exactly what "optimal up to low-order additive terms" means.
        """
        if self.gap is None:
            return None
        scale = math.sqrt(self.params.setup_cost * self.params.lifespan)
        if scale == 0.0:
            return None
        return self.gap / scale

    @property
    def efficiency(self) -> float:
        """Guaranteed work as a fraction of the lifespan."""
        return self.guaranteed_work / self.params.lifespan


def measure_guaranteed_work(scheduler: Union[AdaptiveSchedulerProtocol,
                                             NonAdaptiveSchedulerProtocol],
                            params: CycleStealingParams,
                            *, mode: str = "auto") -> float:
    """Exact worst-case work of any scheduler.

    Parameters
    ----------
    scheduler:
        Either kind of scheduler.
    mode:
        ``"adaptive"``, ``"nonadaptive"`` or ``"auto"`` (prefer the adaptive
        protocol when the object implements both).
    """
    is_adaptive = hasattr(scheduler, "episode_schedule")
    is_nonadaptive = hasattr(scheduler, "opportunity_schedule")
    if mode == "adaptive" or (mode == "auto" and is_adaptive):
        return guaranteed_adaptive_work(scheduler, params)
    if mode == "nonadaptive" or (mode == "auto" and is_nonadaptive):
        schedule = scheduler.opportunity_schedule(params)
        return worst_case_nonadaptive_work(schedule, params)
    raise TypeError(f"object {scheduler!r} implements neither scheduler protocol")


def dp_table_for(params: CycleStealingParams, *, cache=None,
                 method: str = "fast") -> ValueTable:
    """The exact DP table covering ``params``, via the experiment cache.

    Requires integer-valued lifespan and set-up cost (the DP grid).  Pass a
    :class:`repro.experiments.DPTableCache` to share tables across calls,
    sweeps and processes; the process-wide shared cache is used otherwise,
    so back-to-back gap measurements solve each table exactly once.
    """
    from ..experiments.cache import cached_solve

    L, c = params.lifespan, params.setup_cost
    if not (float(L).is_integer() and float(c).is_integer()):
        raise ValueError(
            f"DP tables need integer-valued parameters, got U={L!r}, c={c!r}")
    return cached_solve(int(L), int(c), params.max_interrupts,
                        method=method, cache=cache)


def optimality_gap(scheduler, params: CycleStealingParams,
                   dp_table: Optional[ValueTable] = None,
                   *, mode: str = "auto", cache=None) -> GapReport:
    """Measure a scheduler's guaranteed work and its gap to the exact optimum.

    Parameters
    ----------
    dp_table:
        A solved :class:`repro.dp.ValueTable` covering ``params``; when
        omitted (and no ``cache`` is given) only the guaranteed work is
        reported.
    cache:
        A :class:`repro.experiments.DPTableCache` used to resolve the table
        when ``dp_table`` is omitted (integer-valued parameters only).
    """
    work = measure_guaranteed_work(scheduler, params, mode=mode)
    if dp_table is None and cache is not None:
        dp_table = dp_table_for(params, cache=cache)
    optimal = None
    if dp_table is not None:
        optimal = dp_table.value(min(params.max_interrupts, dp_table.max_interrupts),
                                 int(params.lifespan))
    name = getattr(scheduler, "name", type(scheduler).__name__)
    return GapReport(params=params, scheduler=name,
                     guaranteed_work=work, optimal_work=optimal)
