"""Generators for the paper's Table 1 and Table 2.

Both tables are produced as lists of plain dictionaries so they can be
rendered by :mod:`repro.reporting`, dumped to CSV by the benchmarks, or
inspected programmatically in tests.

* :func:`table1_rows` — "The consequences of the adversary's options": for
  a given episode-schedule and every adversary option (no interrupt, or an
  interrupt during period ``k``), the episode's work output, the residual
  lifespan, and the opportunity's total work production.
* :func:`table2_rows` — "Parameter values for the case p = 1": the
  closed-form parameters of the optimal schedule ``S_opt^(1)`` and of the
  guideline ``S_a^(1)`` (period count, ε, representative period lengths,
  work), optionally alongside exact values measured against the worst-case
  adversary and the DP optimum.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional

from ..core.arithmetic import positive_subtraction
from ..core.params import CycleStealingParams
from ..core.schedule import EpisodeSchedule
from . import bounds

__all__ = ["table1_rows", "table2_rows"]

#: Oracle signature: ``oracle(residual_lifespan, interrupts_remaining, setup_cost)``.
Oracle = Callable[[float, int, float], float]


def table1_rows(schedule: EpisodeSchedule, params: CycleStealingParams,
                oracle: Optional[Oracle] = None) -> List[Dict[str, object]]:
    """Instantiate Table 1 for a concrete episode-schedule.

    Each row corresponds to one adversary option.  Interrupts are taken at
    the last instant of the chosen period (Observation (a)); the
    "opportunity work production" column combines the episode's banked work
    with the optimal continuation ``W^(p−1)[U − T_k]`` supplied by
    ``oracle`` (the closed-form approximation by default).
    """
    if oracle is None:
        oracle = lambda L, q, c: bounds.closed_form_optimal_work(L, c, q)  # noqa: E731

    U = params.lifespan
    c = params.setup_cost
    p = params.max_interrupts
    m = schedule.num_periods
    finishes = schedule.finish_times

    rows: List[Dict[str, object]] = []

    rows.append({
        "option": "no interrupt",
        "interrupted_period": None,
        "interruption_window": None,
        "episode_work": schedule.work_if_uninterrupted(c),
        "residual_lifespan": max(0.0, U - schedule.total_length),
        "opportunity_work": schedule.work_if_uninterrupted(c),
    })

    prefix_work = 0.0
    for k in range(1, m + 1):
        start = schedule.finish_time(k - 1)
        end = float(finishes[k - 1])
        residual = max(0.0, U - end)
        continuation = oracle(residual, p - 1, c) if p >= 1 else 0.0
        rows.append({
            "option": f"interrupt period {k}",
            "interrupted_period": k,
            "interruption_window": (start, end),
            "episode_work": prefix_work,
            "residual_lifespan": residual,
            "opportunity_work": prefix_work + continuation,
        })
        prefix_work += positive_subtraction(schedule[k - 1], c)
    return rows


def table2_rows(lifespans: Iterable[float], setup_cost: float,
                *, measure: bool = True,
                dp_values: Optional[Dict[float, float]] = None
                ) -> List[Dict[str, object]]:
    """Reproduce Table 2 over a sweep of lifespans (``p = 1`` throughout).

    Parameters
    ----------
    lifespans:
        Usable lifespans ``U`` to tabulate.
    setup_cost:
        The set-up cost ``c``.
    measure:
        When true, also measure the *exact* guaranteed work of both
        schedules against the worst-case adversary (this requires playing
        the game and is a little slower).
    dp_values:
        Optional map ``U -> W^(1)[U]`` of exact DP optima to include.

    Returns
    -------
    list of dict
        One row per lifespan with closed-form and (optionally) measured
        figures for ``S_opt^(1)`` and ``S_a^(1)``.
    """
    # Imported lazily to avoid an import cycle (schedules -> analysis.bounds).
    from ..schedules.adaptive import RosenbergAdaptiveScheduler
    from ..schedules.exact_p1 import ExactP1Scheduler

    c = float(setup_cost)
    rows: List[Dict[str, object]] = []
    exact = ExactP1Scheduler()
    guideline = RosenbergAdaptiveScheduler()

    for U in lifespans:
        U = float(U)
        params = CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=1)
        row: Dict[str, object] = {
            "lifespan": U,
            "normalized_lifespan": U / c if c else math.inf,
            # --- closed forms for S_opt^(1) (left column of Table 2) -------
            "opt_num_periods": bounds.optimal_p1_num_periods(U, c),
            "opt_num_periods_approx": math.sqrt(2.0 * U / c - 7.0 / 4.0) if c else math.inf,
            "opt_epsilon": bounds.optimal_p1_epsilon(U, c),
            "opt_first_period_approx": math.sqrt(2.0 * c * U) - c,
            "opt_work_formula": bounds.optimal_p1_work(U, c),
            # --- closed forms for S_a^(1) (right column of Table 2) --------
            "guideline_num_periods": bounds.guideline_p1_num_periods(U, c),
            "guideline_first_period_approx": bounds.guideline_p1_period_length(1, U, c),
            "guideline_work_formula": bounds.adaptive_guarantee(U, c, 1),
        }
        if measure:
            row["opt_work_measured"] = exact.guaranteed_work(params)
            row["guideline_work_measured"] = guideline.guaranteed_work(params)
        if dp_values is not None and U in dp_values:
            row["dp_optimal_work"] = dp_values[U]
        rows.append(row)
    return rows
