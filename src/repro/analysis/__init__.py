"""Analysis layer: closed-form bounds, optimality gaps, tables and sweeps."""

from . import bounds
from .gap import GapReport, dp_table_for, measure_guaranteed_work, optimality_gap
from .sweeps import (
    adaptive_guarantee_sweep,
    nonadaptive_guarantee_sweep,
    play_out_sweep,
    registry_comparison_sweep,
    scheduler_comparison_sweep,
)
from .tables import table1_rows, table2_rows

__all__ = [
    "bounds",
    "GapReport",
    "measure_guaranteed_work",
    "optimality_gap",
    "dp_table_for",
    "table1_rows",
    "table2_rows",
    "nonadaptive_guarantee_sweep",
    "adaptive_guarantee_sweep",
    "scheduler_comparison_sweep",
    "registry_comparison_sweep",
    "play_out_sweep",
]
