"""Parameter sweeps used by the benchmarks, examples and CLI.

Every sweep returns a list of plain dictionaries (one per configuration) so
the same data can be rendered as an ASCII table, written to CSV, or asserted
on in tests without any further dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..core.game import play_adaptive, play_nonadaptive
from ..core.params import CycleStealingParams
from ..dp import ValueTable
from . import bounds
from .gap import measure_guaranteed_work

__all__ = [
    "nonadaptive_guarantee_sweep",
    "adaptive_guarantee_sweep",
    "scheduler_comparison_sweep",
    "play_out_sweep",
]


def nonadaptive_guarantee_sweep(lifespans: Iterable[float], setup_cost: float,
                                interrupt_budgets: Iterable[int]
                                ) -> List[Dict[str, float]]:
    """Measured vs. predicted guaranteed work of the non-adaptive guideline.

    Reproduces the Section 3.1 analysis: for every ``(U, p)`` pair the
    guideline schedule is evaluated against the exact worst-case adversary
    and compared with both closed-form estimates (the derived
    ``U − 2√(pcU) + pc`` and the printed ``U − √(2pcU) + pc``).
    """
    from ..schedules.nonadaptive import RosenbergNonAdaptiveScheduler

    scheduler = RosenbergNonAdaptiveScheduler()
    c = float(setup_cost)
    rows: List[Dict[str, float]] = []
    for p in interrupt_budgets:
        for U in lifespans:
            params = CycleStealingParams(lifespan=float(U), setup_cost=c,
                                         max_interrupts=int(p))
            schedule = scheduler.opportunity_schedule(params)
            measured = measure_guaranteed_work(scheduler, params, mode="nonadaptive")
            rows.append({
                "lifespan": float(U),
                "setup_cost": c,
                "max_interrupts": int(p),
                "num_periods": schedule.num_periods,
                "measured_work": measured,
                "predicted_work": bounds.nonadaptive_guarantee(U, c, p),
                "predicted_work_paper": bounds.nonadaptive_guarantee_paper(U, c, p),
                "efficiency": measured / float(U),
            })
    return rows


def adaptive_guarantee_sweep(lifespans: Iterable[float], setup_cost: float,
                             interrupt_budgets: Iterable[int],
                             *, scheduler=None) -> List[Dict[str, float]]:
    """Measured vs. Theorem 5.1 guaranteed work of an adaptive guideline."""
    from ..schedules.adaptive import EqualizingAdaptiveScheduler

    if scheduler is None:
        scheduler = EqualizingAdaptiveScheduler()
    c = float(setup_cost)
    rows: List[Dict[str, float]] = []
    for p in interrupt_budgets:
        for U in lifespans:
            params = CycleStealingParams(lifespan=float(U), setup_cost=c,
                                         max_interrupts=int(p))
            measured = measure_guaranteed_work(scheduler, params, mode="adaptive")
            first_episode = scheduler.episode_schedule(float(U), int(p), c)
            rows.append({
                "lifespan": float(U),
                "setup_cost": c,
                "max_interrupts": int(p),
                "num_periods": first_episode.num_periods,
                "measured_work": measured,
                "theorem51_bound": bounds.adaptive_guarantee(U, c, p),
                "loss_coefficient": bounds.adaptive_loss_coefficient(p),
                "efficiency": measured / float(U),
            })
    return rows


def scheduler_comparison_sweep(schedulers: Mapping[str, object],
                               params_list: Iterable[CycleStealingParams],
                               dp_table: Optional[ValueTable] = None
                               ) -> List[Dict[str, object]]:
    """Guaranteed work of several schedulers across several opportunities."""
    rows: List[Dict[str, object]] = []
    for params in params_list:
        for label, scheduler in schedulers.items():
            work = measure_guaranteed_work(scheduler, params)
            row: Dict[str, object] = {
                "scheduler": label,
                "lifespan": params.lifespan,
                "setup_cost": params.setup_cost,
                "max_interrupts": params.max_interrupts,
                "guaranteed_work": work,
                "efficiency": work / params.lifespan,
            }
            if dp_table is not None:
                optimal = dp_table.value(
                    min(params.max_interrupts, dp_table.max_interrupts),
                    int(params.lifespan))
                row["optimal_work"] = float(optimal)
                row["gap"] = float(optimal) - work
            rows.append(row)
    return rows


def play_out_sweep(schedulers: Mapping[str, object], adversaries: Mapping[str, object],
                   params: CycleStealingParams, *, adaptive: bool = True
                   ) -> List[Dict[str, object]]:
    """Play every scheduler against every adversary once and tabulate the outcomes."""
    rows: List[Dict[str, object]] = []
    for sched_label, scheduler in schedulers.items():
        for adv_label, adversary in adversaries.items():
            if adaptive and hasattr(scheduler, "episode_schedule"):
                result = play_adaptive(scheduler, adversary, params)
            else:
                result = play_nonadaptive(scheduler, adversary, params)
            rows.append({
                "scheduler": sched_label,
                "adversary": adv_label,
                "work": result.total_work,
                "efficiency": result.efficiency,
                "episodes": result.num_episodes,
                "interrupts": result.num_interrupts,
            })
    return rows
