"""Parameter sweeps used by the benchmarks, examples and CLI.

Every sweep returns a list of plain dictionaries (one per configuration) so
the same data can be rendered as an ASCII table, written to CSV, or asserted
on in tests without any further dependencies.

All sweeps route through the experiment orchestrator
(:mod:`repro.experiments.orchestrator`): each one expands its grid into
picklable per-point payloads handled by a module-level row builder, so the
same code runs serially (``jobs=1``, the default) or fanned out over a
``concurrent.futures`` process pool (``jobs=N``) with byte-identical
results in both modes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..core.game import play_adaptive, play_nonadaptive
from ..core.params import CycleStealingParams
from ..dp import ValueTable
from . import bounds
from .gap import measure_guaranteed_work

__all__ = [
    "nonadaptive_guarantee_sweep",
    "adaptive_guarantee_sweep",
    "scheduler_comparison_sweep",
    "registry_comparison_sweep",
    "play_out_sweep",
]


def _parallel_map(func, payloads, jobs: int):
    # Deferred import: repro.analysis must stay importable without pulling
    # in the experiments subsystem (which itself imports repro.analysis).
    from ..experiments.orchestrator import parallel_map
    return parallel_map(func, payloads, jobs=jobs)


# ----------------------------------------------------------------------
# Module-level row builders (picklable worker payloads)
# ----------------------------------------------------------------------
def _nonadaptive_guarantee_row(payload) -> Dict[str, float]:
    U, c, p = payload
    from ..schedules.nonadaptive import RosenbergNonAdaptiveScheduler

    scheduler = RosenbergNonAdaptiveScheduler()
    params = CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)
    schedule = scheduler.opportunity_schedule(params)
    measured = measure_guaranteed_work(scheduler, params, mode="nonadaptive")
    return {
        "lifespan": U,
        "setup_cost": c,
        "max_interrupts": p,
        "num_periods": schedule.num_periods,
        "measured_work": measured,
        "predicted_work": bounds.nonadaptive_guarantee(U, c, p),
        "predicted_work_paper": bounds.nonadaptive_guarantee_paper(U, c, p),
        "efficiency": measured / U,
    }


def _adaptive_guarantee_row(payload) -> Dict[str, float]:
    U, c, p, scheduler = payload
    if scheduler is None:
        from ..schedules.adaptive import EqualizingAdaptiveScheduler
        scheduler = EqualizingAdaptiveScheduler()
    params = CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)
    measured = measure_guaranteed_work(scheduler, params, mode="adaptive")
    first_episode = scheduler.episode_schedule(U, p, c)
    return {
        "lifespan": U,
        "setup_cost": c,
        "max_interrupts": p,
        "num_periods": first_episode.num_periods,
        "measured_work": measured,
        "theorem51_bound": bounds.adaptive_guarantee(U, c, p),
        "loss_coefficient": bounds.adaptive_loss_coefficient(p),
        "efficiency": measured / U,
    }


def _resolve_dp_ref(dp_ref) -> Optional[ValueTable]:
    """Materialise a worker payload's DP reference.

    ``dp_ref`` is either an actual :class:`ValueTable` (serial mode), a
    ``(L, c, p, method)`` cache key (parallel mode — resolving through the
    per-worker cache is far cheaper than pickling megabyte tables into
    every payload), or ``None``.
    """
    if dp_ref is None or isinstance(dp_ref, ValueTable):
        return dp_ref
    from ..experiments.orchestrator import _worker_cache
    L, c, p, method = dp_ref
    return _worker_cache(None).solve(L, c, p, method=method)


def _comparison_row_for(label: str, scheduler, params: CycleStealingParams,
                        dp_table: Optional[ValueTable]) -> Dict[str, object]:
    work = measure_guaranteed_work(scheduler, params)
    row: Dict[str, object] = {
        "scheduler": label,
        "lifespan": params.lifespan,
        "setup_cost": params.setup_cost,
        "max_interrupts": params.max_interrupts,
        "guaranteed_work": work,
        "efficiency": work / params.lifespan,
    }
    if dp_table is not None:
        optimal = dp_table.value(
            min(params.max_interrupts, dp_table.max_interrupts),
            int(params.lifespan))
        row["optimal_work"] = float(optimal)
        row["gap"] = float(optimal) - work
    return row


def _comparison_row(payload) -> Dict[str, object]:
    label, scheduler, params, dp_ref = payload
    return _comparison_row_for(label, scheduler, params, _resolve_dp_ref(dp_ref))


def _registry_comparison_row(payload) -> Dict[str, object]:
    name, params, dp_ref = payload
    from ..experiments.grid import make_scheduler

    dp_table = _resolve_dp_ref(dp_ref)
    if name == "dp-optimal" and dp_table is not None:
        # Reuse the sweep's already-solved table instead of re-deriving it
        # through the scheduler factory's shared cache.
        from ..schedules import DPOptimalScheduler
        scheduler = DPOptimalScheduler(dp_table)
    else:
        scheduler = make_scheduler(name, params)
    return _comparison_row_for(name, scheduler, params, dp_table)


# ----------------------------------------------------------------------
# Public sweeps
# ----------------------------------------------------------------------
def nonadaptive_guarantee_sweep(lifespans: Iterable[float], setup_cost: float,
                                interrupt_budgets: Iterable[int],
                                *, jobs: int = 1) -> List[Dict[str, float]]:
    """Measured vs. predicted guaranteed work of the non-adaptive guideline.

    Reproduces the Section 3.1 analysis: for every ``(U, p)`` pair the
    guideline schedule is evaluated against the exact worst-case adversary
    and compared with both closed-form estimates (the derived
    ``U − 2√(pcU) + pc`` and the printed ``U − √(2pcU) + pc``).
    """
    c = float(setup_cost)
    payloads = [(float(U), c, int(p))
                for p in interrupt_budgets for U in lifespans]
    return _parallel_map(_nonadaptive_guarantee_row, payloads, jobs)


def adaptive_guarantee_sweep(lifespans: Iterable[float], setup_cost: float,
                             interrupt_budgets: Iterable[int],
                             *, scheduler=None, jobs: int = 1
                             ) -> List[Dict[str, float]]:
    """Measured vs. Theorem 5.1 guaranteed work of an adaptive guideline.

    With ``jobs > 1`` a custom ``scheduler`` must be picklable (every
    scheduler shipped in :mod:`repro.schedules` is).
    """
    c = float(setup_cost)
    payloads = [(float(U), c, int(p), scheduler)
                for p in interrupt_budgets for U in lifespans]
    return _parallel_map(_adaptive_guarantee_row, payloads, jobs)


def scheduler_comparison_sweep(schedulers: Mapping[str, object],
                               params_list: Iterable[CycleStealingParams],
                               dp_table: Optional[ValueTable] = None,
                               *, jobs: int = 1) -> List[Dict[str, object]]:
    """Guaranteed work of several schedulers across several opportunities."""
    dp_ref = dp_table
    if jobs != 1 and dp_table is not None:
        # Don't pickle the table into every payload: send its cache key and
        # let each worker solve/fetch it once.  (Any correct solver yields
        # identical values, so "fast" is a faithful stand-in.)
        dp_ref = (dp_table.max_lifespan, dp_table.setup_cost,
                  dp_table.max_interrupts, "fast")
    payloads = [(label, scheduler, params, dp_ref)
                for params in params_list
                for label, scheduler in schedulers.items()]
    return _parallel_map(_comparison_row, payloads, jobs)


def registry_comparison_sweep(scheduler_names: Iterable[str],
                              params_list: Iterable[CycleStealingParams],
                              dp_table: Optional[ValueTable] = None,
                              *, jobs: int = 1) -> List[Dict[str, object]]:
    """Guaranteed work of registry-named schedulers across opportunities.

    Like :func:`scheduler_comparison_sweep`, but schedulers are referenced
    by :data:`repro.registry.SCHEDULERS` name and instantiated inside the
    worker — payloads stay plain data, and anything registered downstream
    participates without code changes here.  The special name
    ``"dp-optimal"`` reuses ``dp_table`` when one is supplied.
    """
    from ..registry import SCHEDULERS

    names = list(scheduler_names)
    SCHEDULERS.validate(names, context="registry_comparison_sweep")
    dp_ref = dp_table
    if jobs != 1 and dp_table is not None:
        dp_ref = (dp_table.max_lifespan, dp_table.setup_cost,
                  dp_table.max_interrupts, "fast")
    payloads = [(name, params, dp_ref)
                for params in params_list for name in names]
    return _parallel_map(_registry_comparison_row, payloads, jobs)


def play_out_sweep(schedulers: Mapping[str, object], adversaries: Mapping[str, object],
                   params: CycleStealingParams, *, adaptive: bool = True
                   ) -> List[Dict[str, object]]:
    """Play every scheduler against every adversary once and tabulate the outcomes.

    (Stateful adversaries make this sweep order-dependent by design, so it
    always runs serially; use :func:`repro.experiments.run_sweep` with
    ``replications`` for the parallel Monte-Carlo version.)
    """
    rows: List[Dict[str, object]] = []
    for sched_label, scheduler in schedulers.items():
        for adv_label, adversary in adversaries.items():
            if adaptive and hasattr(scheduler, "episode_schedule"):
                result = play_adaptive(scheduler, adversary, params)
            else:
                result = play_nonadaptive(scheduler, adversary, params)
            rows.append({
                "scheduler": sched_label,
                "adversary": adv_label,
                "work": result.total_work,
                "efficiency": result.efficiency,
                "episodes": result.num_episodes,
                "interrupts": result.num_interrupts,
            })
    return rows
