"""Closed-form guarantees and guideline parameters from the paper.

Every formula the paper states in closed form lives here so that the
schedulers, the benchmarks and EXPERIMENTS.md all quote a single source:

* Section 3.1 — the non-adaptive guideline's period length, period count and
  guaranteed-work estimate.
* Theorem 5.1 — the adaptive guideline's guaranteed-work lower bound
  ``U − (2 − 2^{1−p})·√(2cU) − O(U^{1/4} + pc)``.
* Section 5.2 / Table 2 — the optimal p = 1 episode-schedule: its period
  count (eq. 5.1), the fractional part ε, the period lengths, and
  ``W^(1)[U] ≈ U − √(2cU) − c/2``.
* Proposition 4.1(c)/(d) — the zero-work threshold and the p = 0 optimum.

Functions are deliberately dependency-free (only :mod:`math`/:mod:`numpy`)
so they can be imported from anywhere in the library without cycles.

OCR note
--------
The extended abstract's Section 3.1 states the non-adaptive guarantee as
``U − √(2pcU) + pc + O(1)`` while a direct derivation for the stated
guideline (``m = ⌊√(pU/c)⌋`` equal periods of ``√(cU/p)``, adversary killing
the last ``p`` periods) gives ``U − 2√(pcU) + pc``.  Both are provided
(:func:`nonadaptive_guarantee_paper` and :func:`nonadaptive_guarantee`) and
the benchmark for Section 3.1 reports measured work against both.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "zero_work_threshold",
    "p0_optimal_work",
    "nonadaptive_num_periods",
    "nonadaptive_period_length",
    "nonadaptive_guarantee",
    "nonadaptive_guarantee_paper",
    "adaptive_loss_coefficient",
    "adaptive_guarantee",
    "optimal_p1_num_periods",
    "optimal_p1_epsilon",
    "optimal_p1_period_length",
    "optimal_p1_work",
    "guideline_p1_num_periods",
    "guideline_p1_period_length",
    "closed_form_optimal_work",
]

Number = Union[int, float]


# ----------------------------------------------------------------------
# Basic structure (Proposition 4.1)
# ----------------------------------------------------------------------
def zero_work_threshold(setup_cost: Number, max_interrupts: int) -> float:
    """Lifespan below which no work can be guaranteed: ``(p + 1)·c``."""
    return (int(max_interrupts) + 1) * float(setup_cost)


def p0_optimal_work(lifespan: Number, setup_cost: Number) -> float:
    """Optimal guaranteed work with no interrupts: ``U − c`` (Prop. 4.1(d))."""
    return max(0.0, float(lifespan) - float(setup_cost))


# ----------------------------------------------------------------------
# Non-adaptive guideline (Section 3.1)
# ----------------------------------------------------------------------
def nonadaptive_num_periods(lifespan: Number, setup_cost: Number,
                            max_interrupts: int) -> int:
    """Guideline schedule length ``m^(p)[U] = ⌊√(pU/c)⌋`` (at least 1)."""
    p = int(max_interrupts)
    if p == 0:
        return 1
    c = float(setup_cost)
    if c == 0.0:
        return max(1, int(lifespan))
    return max(1, int(math.floor(math.sqrt(p * float(lifespan) / c))))


def nonadaptive_period_length(lifespan: Number, setup_cost: Number,
                              max_interrupts: int) -> float:
    """Guideline period length ``t_i = √(cU/p)`` (the lifespan for p = 0)."""
    p = int(max_interrupts)
    if p == 0:
        return float(lifespan)
    return math.sqrt(float(setup_cost) * float(lifespan) / p)


def nonadaptive_guarantee(lifespan: Number, setup_cost: Number,
                          max_interrupts: int) -> float:
    """Derived guaranteed work of the non-adaptive guideline.

    With ``m = √(pU/c)`` equal periods of ``√(cU/p)`` and the adversary
    killing the last ``p`` periods at their last instants, the surviving
    work is ``(m − p)(t − c) = U − 2√(pcU) + pc``.  Clamped at zero.
    """
    p = int(max_interrupts)
    U = float(lifespan)
    c = float(setup_cost)
    if p == 0:
        return p0_optimal_work(U, c)
    if U <= zero_work_threshold(c, p):
        return 0.0
    return max(0.0, U - 2.0 * math.sqrt(p * c * U) + p * c)


def nonadaptive_guarantee_paper(lifespan: Number, setup_cost: Number,
                                max_interrupts: int) -> float:
    """Non-adaptive guarantee exactly as printed in Section 3.1.

    ``W(S_na^(p)) = U − √(2pcU) + pc`` (up to ``O(1)``).  See the module
    docstring for why this differs from :func:`nonadaptive_guarantee`.
    """
    p = int(max_interrupts)
    U = float(lifespan)
    c = float(setup_cost)
    if p == 0:
        return p0_optimal_work(U, c)
    if U <= zero_work_threshold(c, p):
        return 0.0
    return max(0.0, U - math.sqrt(2.0 * p * c * U) + p * c)


# ----------------------------------------------------------------------
# Adaptive guideline (Theorem 5.1)
# ----------------------------------------------------------------------
def adaptive_loss_coefficient(max_interrupts: int) -> float:
    """The coefficient ``2 − 2^{1−p}`` multiplying ``√(2cU)`` in Thm 5.1.

    It equals 0 for p = 0 (no √ loss at all — only the single set-up cost),
    1 for p = 1 (the classical Bhatt–Chung–Leighton–Rosenberg bound) and
    increases towards 2 as the interrupt budget grows.
    """
    p = int(max_interrupts)
    if p <= 0:
        return 0.0
    return 2.0 - 2.0 ** (1 - p)


def adaptive_guarantee(lifespan: Number, setup_cost: Number,
                       max_interrupts: int,
                       *, include_low_order: bool = False) -> float:
    """Theorem 5.1's lower bound on the adaptive guideline's work.

    ``W(Σ_a^(p)[U]) >= U − (2 − 2^{1−p})·√(2cU) − O(U^{1/4} + pc)``.

    With ``include_low_order`` the ``U^{1/4} + pc`` slack is subtracted with
    unit constants, giving a conservative (certainly achievable) figure;
    without it only the leading terms are returned, which is what the
    benchmarks plot against measured work.
    """
    p = int(max_interrupts)
    U = float(lifespan)
    c = float(setup_cost)
    if p == 0:
        return p0_optimal_work(U, c)
    bound = U - adaptive_loss_coefficient(p) * math.sqrt(2.0 * c * U)
    if include_low_order:
        bound -= U ** 0.25 + p * c
    return max(0.0, bound)


def closed_form_optimal_work(lifespan: Number, setup_cost: Number,
                             max_interrupts: int) -> float:
    """Closed-form approximation of ``W^(p)[U]`` used as a scheduling oracle.

    The equalising scheduler (Theorem 4.3) needs an estimate of the optimal
    (p−1)-interrupt work for every residual lifespan.  We use the leading
    terms of Theorem 5.1 together with the exact structure near the origin
    (``W = 0`` below the ``(p+1)c`` threshold, ``W = U − c`` for p = 0).
    """
    p = int(max_interrupts)
    U = float(lifespan)
    c = float(setup_cost)
    if U <= zero_work_threshold(c, p):
        return 0.0
    if p == 0:
        return p0_optimal_work(U, c)
    return max(0.0, U - adaptive_loss_coefficient(p) * math.sqrt(2.0 * c * U) - c / 2.0)


# ----------------------------------------------------------------------
# The optimal p = 1 episode-schedule (Section 5.2, eq. 5.1, Table 2)
# ----------------------------------------------------------------------
def optimal_p1_num_periods(lifespan: Number, setup_cost: Number) -> int:
    """Equation (5.1): ``m^(1)[U] = ⌈√(2U/c − 7/4) − 1/2⌉`` (at least 2)."""
    U = float(lifespan)
    c = float(setup_cost)
    if c == 0.0:
        return max(2, int(U))
    inner = 2.0 * U / c - 7.0 / 4.0
    if inner <= 0.0:
        return 2
    return max(2, int(math.ceil(math.sqrt(inner) - 0.5)))


def optimal_p1_epsilon(lifespan: Number, setup_cost: Number,
                       num_periods: int = None) -> float:
    """The fractional part ``ε = (U − c)/(mc) − (m − 1)/2`` of Section 5.2.

    For the ``m`` of eq. (5.1) the paper shows ``ε ∈ (0, 1]``; callers may
    pass their own ``m`` to inspect how ε behaves off the optimum.
    """
    U = float(lifespan)
    c = float(setup_cost)
    m = optimal_p1_num_periods(U, c) if num_periods is None else int(num_periods)
    if c == 0.0 or m == 0:
        return 0.0
    return (U - c) / (m * c) - (m - 1) / 2.0


def optimal_p1_period_length(k: int, lifespan: Number, setup_cost: Number) -> float:
    """Period length ``t_k^(1)[U]`` of the optimal p = 1 schedule.

    Table 2 gives ``t_k = (m − k + ε)c`` for ``k <= m − 2`` (approximately
    ``√(2cU) − kc``) and ``t_{m−1} = t_m = (1 + ε)c``.
    """
    U = float(lifespan)
    c = float(setup_cost)
    m = optimal_p1_num_periods(U, c)
    eps = optimal_p1_epsilon(U, c, m)
    k = int(k)
    if k < 1 or k > m:
        raise ValueError(f"period index {k} out of range [1, {m}]")
    if k >= m - 1:
        return (1.0 + eps) * c
    return (m - k + eps) * c


def optimal_p1_work(lifespan: Number, setup_cost: Number) -> float:
    """Approximate optimal work for p = 1: ``W^(1)[U] ≈ U − √(2cU) − c/2``."""
    U = float(lifespan)
    c = float(setup_cost)
    return max(0.0, U - math.sqrt(2.0 * c * U) - c / 2.0)


# ----------------------------------------------------------------------
# The p = 1 guideline schedule S_a^(1) (Table 2, right column)
# ----------------------------------------------------------------------
def guideline_p1_num_periods(lifespan: Number, setup_cost: Number) -> int:
    """Table 2: ``m^(1)[U] = ⌊√(2U/c)⌋ + 2`` for the guideline ``S_a^(1)``."""
    U = float(lifespan)
    c = float(setup_cost)
    if c == 0.0:
        return max(2, int(U))
    return int(math.floor(math.sqrt(2.0 * U / c))) + 2


def guideline_p1_period_length(k: int, lifespan: Number, setup_cost: Number) -> float:
    """Table 2: ``t_k ≈ √(2cU) − (k − 7/2)c`` for ``k <= m − 2``, else ``3c/2``."""
    U = float(lifespan)
    c = float(setup_cost)
    m = guideline_p1_num_periods(U, c)
    k = int(k)
    if k < 1 or k > m:
        raise ValueError(f"period index {k} out of range [1, {m}]")
    if k >= m - 1:
        return 1.5 * c
    return math.sqrt(2.0 * c * U) - (k - 3.5) * c


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=float)
