"""Event primitives of the NOW discrete-event simulator.

The simulator is a classic event-queue design: every state change is an
:class:`Event` with a timestamp, events are processed in time order, and
ties are broken deterministically by a monotonically increasing sequence
number so that runs are exactly reproducible.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.Enum):
    """The kinds of events the cycle-stealing protocol generates."""

    #: The borrowed workstation finishes a period and returns its results.
    PERIOD_END = "period_end"
    #: The owner of the borrowed workstation reclaims it (kills work in flight).
    OWNER_INTERRUPT = "owner_interrupt"
    #: The contracted lifespan of a borrowed workstation expires.
    LIFESPAN_END = "lifespan_end"


@dataclass(order=True, frozen=True)
class Event:
    """One timestamped simulator event.

    Ordering is by ``(time, sequence)`` so simultaneous events are processed
    in creation order.
    """

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    workstation_id: str = field(compare=False)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, workstation_id: str,
             **payload: Any) -> Event:
        """Create an event and add it to the queue."""
        event = Event(time=float(time), sequence=next(self._counter), kind=kind,
                      workstation_id=workstation_id, payload=dict(payload))
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event (``None`` when empty)."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
