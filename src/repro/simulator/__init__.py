"""Discrete-event simulator of cycle-stealing in a network of workstations."""

from .engine import CycleStealingSimulation
from .events import Event, EventKind, EventQueue
from .metrics import SimulationReport, WorkstationMetrics
from .workstation import BorrowedWorkstation, WorkstationState

__all__ = [
    "CycleStealingSimulation",
    "BorrowedWorkstation",
    "WorkstationState",
    "SimulationReport",
    "WorkstationMetrics",
    "Event",
    "EventKind",
    "EventQueue",
]
