"""Simulators of cycle-stealing in a network of workstations.

Two backends produce identical :class:`SimulationReport` results: the
event-driven reference engine (:class:`CycleStealingSimulation`) and the
NumPy-vectorized batch backend (:func:`simulate_scenarios_batch`), which
simulates many replications in one array pass.
"""

from .batch import simulate_batch, simulate_scenarios_batch
from .engine import CycleStealingSimulation
from .events import Event, EventKind, EventQueue
from .metrics import SimulationReport, WorkstationMetrics
from .workstation import BorrowedWorkstation, WorkstationState

__all__ = [
    "CycleStealingSimulation",
    "simulate_scenarios_batch",
    "simulate_batch",
    "BorrowedWorkstation",
    "WorkstationState",
    "SimulationReport",
    "WorkstationMetrics",
    "Event",
    "EventKind",
    "EventQueue",
]
