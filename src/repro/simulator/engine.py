"""Discrete-event simulator of data-parallel cycle-stealing in a NOW.

The simulator plays the cycle-stealing protocol the paper models —
workstation A repeatedly ships a period's worth of work to each borrowed
workstation B, pays the set-up cost ``c`` per period, and loses everything a
period had in flight when B's owner reclaims the machine — but against
*traces* of owner behaviour rather than against the abstract adversary, and
across an arbitrary number of borrowed machines at once.  It is the
substrate on which the examples and the comparison benchmarks exercise the
scheduling guidelines end-to-end (tasks, heterogeneous speeds, owners that
break the negotiated interrupt budget, ...).

Design notes
------------
* The scheduler interface is exactly the adaptive protocol of
  :mod:`repro.core.game`, so every scheduler in :mod:`repro.schedules` can
  be dropped in unchanged.
* Stale ``PERIOD_END`` events left behind after an owner interrupt are
  invalidated with a per-workstation epoch counter rather than removed from
  the heap (the standard discrete-event idiom).
* All times are absolute simulation times; per-episode schedules are
  translated by the episode's start time.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Sequence, Union

from ..core.exceptions import SimulationError
from ..core.game import AdaptiveSchedulerProtocol
from .events import EventKind, EventQueue
from .metrics import SimulationReport
from .workstation import BorrowedWorkstation, WorkstationState

__all__ = ["CycleStealingSimulation"]

SchedulerFactory = Union[AdaptiveSchedulerProtocol,
                         Callable[[BorrowedWorkstation], AdaptiveSchedulerProtocol]]


class CycleStealingSimulation:
    """Simulate one cycle-stealing opportunity across a network of workstations.

    Parameters
    ----------
    workstations:
        The borrowed machines (contracts) to drive.
    scheduler:
        A single adaptive scheduler shared by every contract.  (Passing a
        bare callable factory here is deprecated — the old heuristic
        misclassified callable objects that also define
        ``episode_schedule``; use ``scheduler_factory=`` instead.)
    task_bag:
        Optional data-parallel workload (see
        :class:`repro.workloads.TaskBag`).  When present, completed
        productive time is converted into completed tasks, shared across
        all workstations (first come, first served).
    scheduler_factory:
        Keyword-only: a callable mapping a :class:`BorrowedWorkstation` to
        the scheduler to use for it (e.g. to give heterogeneous machines
        different guidelines).  Mutually exclusive with ``scheduler``.
    """

    def __init__(self, workstations: Sequence[BorrowedWorkstation],
                 scheduler: Optional[SchedulerFactory] = None,
                 task_bag=None, *,
                 scheduler_factory: Optional[
                     Callable[[BorrowedWorkstation],
                              AdaptiveSchedulerProtocol]] = None):
        if not workstations:
            raise SimulationError("at least one borrowed workstation is required")
        ids = [w.workstation_id for w in workstations]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"workstation ids must be unique, got {ids}")
        self.workstations = list(workstations)
        self._scheduler_for = self._resolve_scheduler(scheduler, scheduler_factory)
        self.task_bag = task_bag
        self._queue = EventQueue()
        self._states: Dict[str, WorkstationState] = {}
        self._clock = 0.0

    @staticmethod
    def _resolve_scheduler(scheduler: Optional[SchedulerFactory],
                           scheduler_factory) -> Callable[[BorrowedWorkstation],
                                                          AdaptiveSchedulerProtocol]:
        if scheduler_factory is not None:
            if scheduler is not None:
                raise SimulationError(
                    "pass either scheduler or scheduler_factory, not both")
            if not callable(scheduler_factory):
                raise SimulationError(
                    f"scheduler_factory must be callable, got {scheduler_factory!r}")
            return scheduler_factory
        if scheduler is None:
            raise SimulationError("a scheduler (or scheduler_factory) is required")
        if hasattr(scheduler, "episode_schedule"):
            # A scheduler instance — even if it also happens to be callable.
            return lambda _ws: scheduler
        if callable(scheduler):
            warnings.warn(
                "passing a bare callable as the scheduler is deprecated; "
                "use the explicit scheduler_factory= keyword instead",
                DeprecationWarning, stacklevel=3)
            return scheduler
        raise SimulationError(
            f"{scheduler!r} implements neither the adaptive scheduler "
            "protocol nor a factory callable")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Run the simulation to completion and return the aggregated report."""
        self._queue = EventQueue()
        self._states = {}
        self._clock = 0.0

        for ws in self.workstations:
            state = WorkstationState(workstation=ws)
            self._states[ws.workstation_id] = state
            for t in ws.owner_interrupts:
                if t < ws.lifespan:
                    self._queue.push(t, EventKind.OWNER_INTERRUPT, ws.workstation_id)
            self._queue.push(ws.lifespan, EventKind.LIFESPAN_END, ws.workstation_id)
            self._start_episode(state, start_time=0.0)

        while self._queue:
            event = self._queue.pop()
            self._clock = event.time
            state = self._states[event.workstation_id]
            if event.kind is EventKind.PERIOD_END:
                self._handle_period_end(state, event)
            elif event.kind is EventKind.OWNER_INTERRUPT:
                self._handle_interrupt(state, event.time)
            elif event.kind is EventKind.LIFESPAN_END:
                self._handle_lifespan_end(state, event.time)

        report = SimulationReport(per_workstation={wid: s.metrics
                                                   for wid, s in self._states.items()},
                                  makespan=max(w.lifespan for w in self.workstations))
        return report

    # ------------------------------------------------------------------
    # Episode / period machinery
    # ------------------------------------------------------------------
    def _start_episode(self, state: WorkstationState, start_time: float) -> None:
        ws = state.workstation
        residual = ws.lifespan - start_time
        if residual <= 0.0 or state.finished:
            return
        scheduler = self._scheduler_for(ws)
        schedule = scheduler.episode_schedule(residual, state.interrupts_remaining,
                                              ws.setup_cost)
        state.schedule = schedule
        state.episode_history.append(schedule)
        state.metrics.episodes += 1
        state.period_index = 0
        state.period_start = start_time
        state.epoch += 1
        first_end = start_time + schedule[0]
        self._queue.push(first_end, EventKind.PERIOD_END, ws.workstation_id,
                         epoch=state.epoch, period_index=0)

    def _dispatch_next_period(self, state: WorkstationState, start_time: float) -> None:
        ws = state.workstation
        schedule = state.schedule
        next_index = state.period_index + 1
        if schedule is None or next_index >= schedule.num_periods:
            # Episode exhausted with lifespan left: the machine sits idle
            # until the owner interrupts or the contract expires.
            state.period_start = None
            return
        state.period_index = next_index
        state.period_start = start_time
        self._queue.push(start_time + schedule[next_index], EventKind.PERIOD_END,
                         ws.workstation_id, epoch=state.epoch, period_index=next_index)

    def _handle_period_end(self, state: WorkstationState, event) -> None:
        if state.finished or event.payload.get("epoch") != state.epoch:
            return  # stale event from before an interrupt
        ws = state.workstation
        if event.time > ws.lifespan + 1e-9:
            return  # the LIFESPAN_END handler takes care of truncation
        length = state.current_period_length()
        work = state.metrics.record_completed_period(length, ws.setup_cost, ws.speed)
        if self.task_bag is not None and work > 0.0:
            completed, _ = self.task_bag.take(work)
            state.metrics.tasks_completed += completed
        self._dispatch_next_period(state, event.time)

    def _handle_interrupt(self, state: WorkstationState, time: float) -> None:
        if state.finished:
            return
        ws = state.workstation
        if state.period_start is not None:
            elapsed = time - state.period_start
            state.metrics.record_killed_period(elapsed)
        else:
            # Interrupt while idle: nothing in flight to kill, but close the
            # idle gap so the time accounting stays exact.
            state.metrics.record_idle(max(0.0, time - state.metrics.accounted_time))
            state.metrics.owner_interrupts += 1
        state.interrupts_remaining = max(0, state.interrupts_remaining - 1)
        state.epoch += 1          # invalidate the in-flight PERIOD_END event
        state.period_start = None
        state.schedule = None
        self._start_episode(state, start_time=time)

    def _handle_lifespan_end(self, state: WorkstationState, time: float) -> None:
        if state.finished:
            return
        ws = state.workstation
        if state.period_start is not None:
            length = state.current_period_length()
            if state.period_start + length <= time + 1e-9:
                # The in-flight period ends exactly at the contract boundary;
                # its results make it back in time, so it counts.
                work = state.metrics.record_completed_period(length, ws.setup_cost,
                                                             ws.speed)
                if self.task_bag is not None and work > 0.0:
                    completed, _ = self.task_bag.take(work)
                    state.metrics.tasks_completed += completed
            else:
                # The contract expires with a period in flight: its results
                # never make it back, so the elapsed time is wasted.
                elapsed = time - state.period_start
                state.metrics.wasted_time += max(0.0, elapsed)
                state.metrics.killed_periods += 1
        else:
            # Idle tail between the end of the last period and the lifespan.
            state.metrics.record_idle(max(0.0, time - state.metrics.accounted_time))
        state.finished = True
        state.period_start = None
        state.epoch += 1
