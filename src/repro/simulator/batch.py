"""Vectorized batch backend: simulate many replications at once.

The event-driven :class:`~repro.simulator.engine.CycleStealingSimulation`
walks one heap event at a time, which makes Monte-Carlo replication —
thousands of randomized owner traces per parameter point — the wall-clock
bottleneck of ``sweep``.  This module replaces the per-event Python loop
with array passes over a whole *batch* of replications of one
(scenario × scheduler) point:

* every (replication, workstation) pair becomes one *row*;
* owner-interrupt traces are packed as arrays and partition each row's
  timeline into *segments* (one episode per segment);
* rows that share an episode state — same residual lifespan, interrupt
  budget and set-up cost — share a single scheduler call and a single
  prefix-sum of the episode's period lengths;
* per-episode completed-period counts come from ``searchsorted`` of the
  segment boundary into the episode's cumulative finish times, and all
  per-period accounting (productive/overhead/work) is done with
  ``cumsum`` passes over each row's chronological period stream.

Equivalence with the event engine is exact, not approximate: ``np.cumsum``
accumulates sequentially, i.e. in the same order as the engine's ``+=``
loops, so on identical traces the batch backend reproduces the engine's
float metrics bit for bit (the test-suite pins this on several scenario
families).  That includes the idle-interrupt corner — an owner interrupt
arriving while a workstation sits idle between episodes.  The engine
closes the idle gap against its *accounted* time (the running
productive + overhead + wasted + idle sum), so the kernel records each
idle reclaim's position in the row's accounting stream and settles the
gap in :meth:`_BatchKernel._finalize_rows` from the same partial sums,
in the same order.  No replication is ever re-routed to the event engine
any more (``fallback_reps`` stays empty; it is kept as an attribute so
harness code and the regression tests can assert exactly that).

The task-bag pass replays :meth:`TaskBag.take`'s greedy packing against the
bag's size prefix-sums in global completion order (completion time, then
workstation creation order — exactly the event heap's tie-breaking), so
``tasks_completed`` also matches the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.exceptions import SimulationError
from ..workloads.owner_activity import pad_traces
from .engine import CycleStealingSimulation, SchedulerFactory
from .metrics import SimulationReport, WorkstationMetrics

__all__ = ["simulate_scenarios_batch", "simulate_batch"]

#: The engine's tolerance for a period finishing exactly at the contract
#: boundary (see ``CycleStealingSimulation._handle_lifespan_end``).
LIFESPAN_SLACK = 1e-9


def simulate_scenarios_batch(scenarios: Sequence, scheduler: Optional[SchedulerFactory] = None,
                             *, scheduler_factory=None) -> List[SimulationReport]:
    """Simulate one report per scenario, all replications in one array pass.

    Parameters
    ----------
    scenarios:
        The replications to simulate — typically independently seeded
        instances of one scenario family (see
        :mod:`repro.workloads.scenarios`).  Each scenario contributes one
        :class:`~repro.simulator.metrics.SimulationReport` to the result,
        in order.
    scheduler / scheduler_factory:
        Same contract as :class:`CycleStealingSimulation`.  A factory is
        invoked once per (replication, workstation) row; factories must be
        pure functions of the workstation (which the adaptive-scheduler
        protocol requires anyway).

    Notes
    -----
    Unlike the event engine, the batch backend does **not** mutate the
    scenarios' task bags — completed-task counts are reported in the
    returned metrics only.  Owner interrupts that arrive while a
    workstation sits idle are handled natively in the array passes
    (``kernel.fallback_reps`` stays empty on every scenario family; the
    test-suite asserts it).

    All reported quantities use the paper's units: work, productive,
    overhead, wasted and idle time are measured in the contract's time
    unit (the unit of the lifespan ``U``/``L`` and the set-up cost
    ``c``); interrupt counts are bounded by each contract's negotiated
    budget ``p`` only if the trace respects it — contract-breaking
    traces (e.g. the ``flaky`` family) are simulated as given.
    """
    scenarios = list(scenarios)
    if not scenarios:
        return []

    resolve = CycleStealingSimulation._resolve_scheduler(scheduler, scheduler_factory)
    kernel = _BatchKernel(resolve)
    for rep, scenario in enumerate(scenarios):
        kernel.add_replication(rep, scenario.workstations, scenario.task_bag)
    kernel.run()
    return [kernel.report(rep) for rep in range(len(scenarios))]


def simulate_batch(workstation_sets: Sequence[Sequence], scheduler=None, *,
                   task_bags: Optional[Sequence] = None,
                   scheduler_factory=None) -> List[SimulationReport]:
    """Lower-level entry point taking raw workstation lists (no Scenario).

    ``workstation_sets[r]`` is the list of
    :class:`~repro.simulator.workstation.BorrowedWorkstation` contracts of
    replication ``r``; ``task_bags[r]`` (optional) its data-parallel
    workload.

    Units follow the paper's notation: each contract's ``lifespan`` (the
    paper's ``U``, written ``L`` on the integer DP grid), ``setup_cost``
    (``c``) and owner-interrupt times all share one time unit;
    ``interrupt_budget`` is the negotiated maximum number of reclaims
    (``p``, a count); workstation ``speed`` is a dimensionless work-rate
    multiplier.  Returned reports account work in the same time unit.
    """
    class _Bare:
        __slots__ = ("workstations", "task_bag")

        def __init__(self, workstations, task_bag):
            self.workstations = workstations
            self.task_bag = task_bag

    bags = list(task_bags) if task_bags is not None else [None] * len(workstation_sets)
    if len(bags) != len(workstation_sets):
        raise SimulationError("task_bags must match workstation_sets in length")
    return simulate_scenarios_batch(
        [_Bare(ws, bag) for ws, bag in zip(workstation_sets, bags)],
        scheduler, scheduler_factory=scheduler_factory)


# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------
class _BatchKernel:
    """Array-level replay of the event engine over (replication × workstation) rows."""

    def __init__(self, resolve_scheduler):
        self._resolve = resolve_scheduler
        # Static row data (parallel lists; scalars stay Python floats to
        # avoid numpy-scalar boxing in the hot grouping loop).
        self.row_rep: List[int] = []
        self.row_order: List[int] = []       # workstation creation order within its rep
        self.row_id: List[str] = []
        self.row_lifespan: List[float] = []
        self.row_setup: List[float] = []
        self.row_speed: List[float] = []
        self.row_budget: List[int] = []
        self.row_trace: List[np.ndarray] = []
        self.row_scheduler: List[object] = []
        # Per-replication data.
        self.rep_rows: Dict[int, List[int]] = {}
        self.rep_bag: Dict[int, Optional[object]] = {}
        self.rep_makespan: Dict[int, float] = {}
        #: Replications re-routed to the event engine.  Always empty since
        #: the idle-interrupt corner became native; kept (and asserted
        #: empty by the test-suite) as the sentinel that no array pass
        #: ever silently gives up on a replication again.
        self.fallback_reps: Set[int] = set()
        # Mutable accounting, filled by run().  A "piece" is one episode's
        # run of completed periods: (segment index, lengths, end times).
        self._pieces: List[List[Tuple[int, np.ndarray, np.ndarray]]] = []
        self._piece_works: List[List[np.ndarray]] = []
        self._boundary: List[bool] = []      # last completion handled at LIFESPAN_END
        self._wasted_parts: List[List[float]] = []
        self._killed: List[int] = []
        self._interrupts: List[int] = []
        self._idle_tail: List[bool] = []
        # Idle reclaims: (time, completed periods so far, kill parts so far)
        # per row, in chronological order — enough to recompute the engine's
        # accounted time at each reclaim during _finalize_rows.
        self._idle_events: List[List[Tuple[float, int, int]]] = []
        self._piece_counts: List[int] = []   # completed periods recorded so far
        self._metrics: List[Optional[WorkstationMetrics]] = []
        self._schedule_memo: Dict[Tuple[int, float, int, float], object] = {}

    # ------------------------------------------------------------------
    def add_replication(self, rep: int, workstations: Sequence, task_bag) -> None:
        workstations = list(workstations)
        if not workstations:
            raise SimulationError("at least one borrowed workstation is required")
        ids = [w.workstation_id for w in workstations]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"workstation ids must be unique, got {ids}")
        rows = []
        for order, ws in enumerate(workstations):
            row = len(self.row_rep)
            rows.append(row)
            self.row_rep.append(rep)
            self.row_order.append(order)
            self.row_id.append(ws.workstation_id)
            self.row_lifespan.append(float(ws.lifespan))
            self.row_setup.append(float(ws.setup_cost))
            self.row_speed.append(float(ws.speed))
            self.row_budget.append(int(ws.interrupt_budget))
            # The engine only schedules interrupts strictly inside the lifespan.
            trace = np.asarray(ws.owner_interrupts, dtype=float)
            self.row_trace.append(trace[trace < ws.lifespan])
            self.row_scheduler.append(self._resolve(ws))
        self.rep_rows[rep] = rows
        self.rep_bag[rep] = task_bag
        self.rep_makespan[rep] = max(float(w.lifespan) for w in workstations)

    # ------------------------------------------------------------------
    def run(self) -> None:
        n = len(self.row_rep)
        self._pieces = [[] for _ in range(n)]
        self._piece_works = [[] for _ in range(n)]
        self._boundary = [False] * n
        self._wasted_parts = [[] for _ in range(n)]
        self._killed = [0] * n
        self._interrupts = [0] * n
        self._idle_tail = [False] * n
        self._idle_events = [[] for _ in range(n)]
        self._piece_counts = [0] * n
        self._metrics = [None] * n

        # The (rows × max-interrupts) trace matrix: segment boundaries for
        # the whole batch in one array (+inf padding never compares true).
        self._trace_matrix, trace_counts = pad_traces(self.row_trace)
        self._trace_counts = trace_counts.tolist()

        max_segments = 1 + self._trace_matrix.shape[1]
        for segment in range(max_segments):
            self._run_segment(segment)
        self._finalize_rows()
        self._assign_tasks()

    # ------------------------------------------------------------------
    def _run_segment(self, segment: int) -> None:
        """Process episode ``segment`` of every row that reaches it."""
        groups: Dict[Tuple[int, float, float, int, float], List[int]] = {}
        starts = (self._trace_matrix[:, segment - 1].tolist() if segment
                  else None)
        counts = self._trace_counts
        schedulers = self.row_scheduler
        lifespans = self.row_lifespan
        budgets = self.row_budget
        setups = self.row_setup
        setdefault = groups.setdefault
        for row in range(len(self.row_rep)):
            if segment > counts[row]:
                continue
            start = starts[row] if segment else 0.0
            p_rem = budgets[row] - segment
            key = (id(schedulers[row]), start, lifespans[row],
                   p_rem if p_rem > 0 else 0, setups[row])
            setdefault(key, []).append(row)

        self._fill_schedule_memo(groups)
        for (sid, start, lifespan, p_rem, setup), rows in groups.items():
            residual = lifespan - start
            schedule = self._schedule_memo[(sid, residual, p_rem, setup)]
            periods = schedule.periods
            m = periods.size

            final_rows = [r for r in rows if segment == self._trace_counts[r]]
            int_rows = [r for r in rows if segment < self._trace_counts[r]]

            if m == 1:
                # Dominant shape for short residuals (single long period):
                # scalar fast path, no per-group array constructions.
                self._run_single_period_group(segment, final_rows, int_rows,
                                              periods, start, lifespan)
                continue

            # Absolute finish times, accumulated exactly like the engine's
            # successive ``event.time + schedule[j]`` pushes.
            shifted = np.empty(m + 1)
            shifted[0] = start
            shifted[1:] = periods
            finishes = np.cumsum(shifted)[1:]

            if final_rows:
                self._close_final(segment, final_rows, periods, finishes, start,
                                  lifespan)
            if int_rows:
                ends = self._trace_matrix[int_rows, segment]
                # Strict '<': an interrupt landing exactly on a period end
                # is processed first (it was queued earlier), killing the period.
                ks = np.searchsorted(finishes, ends, side="left")
                for r, k, end in zip(int_rows, ks.tolist(), ends.tolist()):
                    if k < m:
                        in_flight_start = float(finishes[k - 1]) if k else start
                        self._wasted_parts[r].append(max(0.0, end - in_flight_start))
                        self._killed[r] += 1
                        self._interrupts[r] += 1
                        if k:
                            self._pieces[r].append((segment, periods[:k],
                                                    finishes[:k]))
                            self._piece_counts[r] += k
                    else:
                        # Interrupt while idle: the whole episode completed
                        # and the machine sat idle until the reclaim.  No
                        # period is killed; the idle gap is settled against
                        # the engine's accounted time in _finalize_rows.
                        self._pieces[r].append((segment, periods, finishes))
                        self._piece_counts[r] += m
                        self._idle_events[r].append(
                            (end, self._piece_counts[r],
                             len(self._wasted_parts[r])))
                        self._interrupts[r] += 1

    def _run_single_period_group(self, segment: int, final_rows: List[int],
                                 int_rows: List[int], periods: np.ndarray,
                                 start: float, lifespan: float) -> None:
        """One-period episode, all in scalars (mirrors the general path).

        ``start + float(periods[0])`` is the same double addition the
        general path's cumsum performs, so every comparison below sees the
        identical finish time.
        """
        finish = start + float(periods[0])
        if final_rows:
            boundary_kill: Optional[float] = None
            boundary_complete = False
            idle_tail = False
            piece: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
            if finish >= lifespan:
                if finish <= lifespan + LIFESPAN_SLACK:
                    # Completes within the boundary slack, processed by the
                    # LIFESPAN_END handler at time U.
                    boundary_complete = True
                    piece = (segment, periods, np.array((lifespan,)))
                else:
                    boundary_kill = max(0.0, lifespan - start)
            else:
                idle_tail = True
                piece = (segment, periods, np.array((finish,)))
            for r in final_rows:
                if piece is not None:
                    self._pieces[r].append(piece)
                    self._piece_counts[r] += 1
                if boundary_kill is not None:
                    self._wasted_parts[r].append(boundary_kill)
                    self._killed[r] += 1    # lifespan kill: no owner interrupt
                self._boundary[r] = boundary_complete
                self._idle_tail[r] = idle_tail
        if int_rows:
            idle_piece: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
            for r in int_rows:
                end = float(self._trace_matrix[r, segment])
                if end <= finish:
                    # An interrupt landing exactly on the period end still
                    # kills it (it was queued earlier) — same tie rule as
                    # the general path's side="left" searchsorted.
                    self._wasted_parts[r].append(max(0.0, end - start))
                    self._killed[r] += 1
                    self._interrupts[r] += 1
                else:
                    # Interrupt while idle (see the general path).
                    if idle_piece is None:
                        idle_piece = (segment, periods, np.array((finish,)))
                    self._pieces[r].append(idle_piece)
                    self._piece_counts[r] += 1
                    self._idle_events[r].append(
                        (end, self._piece_counts[r],
                         len(self._wasted_parts[r])))
                    self._interrupts[r] += 1

    def _fill_schedule_memo(self, groups: Dict[Tuple, List[int]]) -> None:
        """Build every schedule a segment needs, batched per scheduler state.

        All residuals that share a ``(scheduler, interrupts-left, setup)``
        state go through one ``episode_schedule_batch`` call, so schedulers
        with a vectorized construction amortise their work across the whole
        batch (the base class falls back to a loop).
        """
        missing: Dict[Tuple[int, int, float], List[Tuple[float, Tuple]]] = {}
        scheduler_of: Dict[int, object] = {}
        for (sid, start, lifespan, p_rem, setup), rows in groups.items():
            residual = lifespan - start
            memo_key = (sid, residual, p_rem, setup)
            if memo_key not in self._schedule_memo:
                missing.setdefault((sid, p_rem, setup), []).append((residual, memo_key))
                scheduler_of[sid] = self.row_scheduler[rows[0]]
        for (sid, p_rem, setup), items in missing.items():
            scheduler = scheduler_of[sid]
            residuals = [residual for residual, _key in items]
            build = getattr(scheduler, "episode_schedule_batch", None)
            if build is not None:
                schedules = build(residuals, p_rem, setup)
            else:
                schedules = [scheduler.episode_schedule(residual, p_rem, setup)
                             for residual in residuals]
            for (_residual, memo_key), schedule in zip(items, schedules):
                self._schedule_memo[memo_key] = schedule

    def _close_final(self, segment: int, rows: List[int], periods: np.ndarray,
                     finishes: np.ndarray, start: float, lifespan: float) -> None:
        """Account the last episode of ``rows`` up to the contract boundary."""
        m = periods.size
        # Periods finishing strictly before the lifespan complete normally ...
        kp = int(np.searchsorted(finishes, lifespan, side="left"))
        lengths_piece = periods[:kp]
        times_piece = finishes[:kp]
        boundary_kill: Optional[float] = None
        boundary_complete = False
        idle_tail = False
        if kp < m:
            # ... and the one in flight at LIFESPAN_END completes only if it
            # ends within the engine's boundary slack.
            in_flight_start = float(finishes[kp - 1]) if kp else start
            if float(finishes[kp]) <= lifespan + LIFESPAN_SLACK:
                boundary_complete = True
                lengths_piece = periods[:kp + 1]
                times_piece = finishes[:kp + 1].copy()
                # Processed by the LIFESPAN_END handler at time U, which is
                # where it lands in the task-bag order.
                times_piece[-1] = lifespan
            else:
                boundary_kill = max(0.0, lifespan - in_flight_start)
        else:
            idle_tail = True
        for r in rows:
            if lengths_piece.size:
                self._pieces[r].append((segment, lengths_piece, times_piece))
                self._piece_counts[r] += lengths_piece.size
            if boundary_kill is not None:
                self._wasted_parts[r].append(boundary_kill)
                self._killed[r] += 1          # lifespan kill: no owner interrupt
            self._boundary[r] = boundary_complete
            self._idle_tail[r] = idle_tail

    # ------------------------------------------------------------------
    def _finalize_rows(self) -> None:
        # One flat elementwise pass over every completed period of the whole
        # batch, then a per-row cumsum for the totals.  cumsum accumulates
        # sequentially — the same order as the engine's per-period ``+=`` —
        # so the totals are bit-exact.
        n = len(self.row_rep)
        live = range(n)
        all_pieces: List[np.ndarray] = []
        row_setups: List[float] = []
        row_speeds: List[float] = []
        row_counts: List[int] = []
        for row in live:
            count = 0
            for _seg, lengths, _times in self._pieces[row]:
                all_pieces.append(lengths)
                count += lengths.size
            row_setups.append(self.row_setup[row])
            row_speeds.append(self.row_speed[row])
            row_counts.append(count)
        if all_pieces:
            flat_len = np.concatenate(all_pieces)
            counts_arr = np.asarray(row_counts)
            flat_setup = np.repeat(np.asarray(row_setups), counts_arr)
            productive = np.maximum(flat_len - flat_setup, 0.0)
            overhead = np.minimum(flat_len, flat_setup)
            work = productive * np.repeat(np.asarray(row_speeds), counts_arr)
            # Plain-Python accumulation below: the same sequential IEEE
            # additions as np.cumsum (and the engine's ``+=``), minus the
            # per-row array-call overhead for thousands of tiny rows.
            prod_list = productive.tolist()
            over_list = overhead.tolist()
            work_list = work.tolist()
        else:
            productive = overhead = work = np.empty(0, dtype=float)
            prod_list = over_list = work_list = []

        offset = 0
        for row, count in zip(live, row_counts):
            prod_cum = over_cum = None
            if count:
                sl = slice(offset, offset + count)
                productive_time = 0.0
                for v in prod_list[offset:offset + count]:
                    productive_time += v
                overhead_time = 0.0
                for v in over_list[offset:offset + count]:
                    overhead_time += v
                completed_work = 0.0
                for v in work_list[offset:offset + count]:
                    completed_work += v
                row_work = work[sl]
                if self._idle_events[row]:
                    # Idle gaps close against partial accounted sums, so
                    # this (rare) row needs the full prefix cumsums.
                    prod_cum = np.cumsum(productive[sl])
                    over_cum = np.cumsum(overhead[sl])
                # Per-piece work values, reused by the task-bag pass.
                works, piece_offset = [], 0
                for _seg, lengths, _times in self._pieces[row]:
                    works.append(row_work[piece_offset:piece_offset + lengths.size])
                    piece_offset += lengths.size
                self._piece_works[row] = works
                offset += count
            else:
                productive_time = overhead_time = completed_work = 0.0
                self._piece_works[row] = []
            # Kill parts and idle reclaims accumulate chronologically, the
            # way the engine's += does: each idle gap closes against the
            # accounted time *at that reclaim* (partial productive/overhead
            # cumsums, kill parts recorded before it, idle gaps so far).
            parts = self._wasted_parts[row]
            wasted_time = 0.0
            idle_time = 0.0
            next_part = 0
            for end, n_periods, n_parts in self._idle_events[row]:
                while next_part < n_parts:
                    wasted_time += parts[next_part]
                    next_part += 1
                p_sum = float(prod_cum[n_periods - 1]) if n_periods else 0.0
                o_sum = float(over_cum[n_periods - 1]) if n_periods else 0.0
                accounted = p_sum + o_sum + wasted_time + idle_time
                idle_time += max(0.0, end - accounted)
            while next_part < len(parts):
                wasted_time += parts[next_part]
                next_part += 1
            if self._idle_tail[row]:
                accounted = productive_time + overhead_time + wasted_time + idle_time
                idle_time += max(0.0, self.row_lifespan[row] - accounted)
            self._metrics[row] = WorkstationMetrics(
                workstation_id=self.row_id[row],
                productive_time=productive_time,
                overhead_time=overhead_time,
                wasted_time=wasted_time,
                idle_time=idle_time,
                completed_work=completed_work,
                completed_periods=count,
                killed_periods=self._killed[row],
                owner_interrupts=self._interrupts[row],
                episodes=self.row_trace[row].size + 1,
            )

    # ------------------------------------------------------------------
    def _assign_tasks(self) -> None:
        """Replay the shared task bag in global completion order per replication."""
        for rep, rows in self.rep_rows.items():
            bag = self.rep_bag[rep]
            if bag is None:
                continue
            sizes = bag.sizes
            total = sizes.size
            pointer = bag.completed_tasks
            if total == 0 or pointer >= total:
                continue
            prefix = np.empty(total + 1)
            prefix[0] = 0.0
            np.cumsum(sizes, out=prefix[1:])
            search = prefix.searchsorted
            counts: Dict[int, int] = {}
            if len(rows) == 1:
                (row,) = rows
                taken = 0
                anchor = float(prefix[pointer])
                for work_arr in self._piece_works[row]:
                    for budget in work_arr.tolist():
                        if budget <= 0.0:
                            continue
                        # TaskBag.take's greedy packing, via prefix sums:
                        # whole tasks fit while their cumulative size stays
                        # within budget + slack.
                        new_pointer = int(search(anchor + budget + 1e-12,
                                                 side="right")) - 1
                        if new_pointer > pointer:
                            taken += new_pointer - pointer
                            pointer = new_pointer
                            anchor = float(prefix[pointer])
                            if pointer >= total:
                                break
                    if pointer >= total:
                        break
                if taken:
                    counts[row] = taken
            else:
                ordered = self._merged_completions(rows)
                if ordered is None:
                    ordered = self._ordered_completions(rows)
                for row, work in ordered:
                    budget = float(work)
                    if budget <= 0.0:
                        continue
                    new_pointer = int(search(float(prefix[pointer]) + budget + 1e-12,
                                             side="right")) - 1
                    if new_pointer > pointer:
                        counts[row] = counts.get(row, 0) + (new_pointer - pointer)
                        pointer = new_pointer
                        if pointer >= total:
                            break
            for row, count in counts.items():
                self._metrics[row].tasks_completed = count

    def _merged_completions(self, rows: List[int]):
        """Completions of several workstations merged by time — tie-free only.

        When no two completion times across the replication coincide
        exactly, a stable sort by time reproduces the event heap's order
        without replaying it.  Returns ``None`` when exact ties exist (the
        heap replay of :meth:`_completion_order` then decides them).
        """
        times_list, works_list, row_of, count_of = [], [], [], []
        for r in rows:
            for (_seg, _lengths, t), w in zip(self._pieces[r],
                                              self._piece_works[r]):
                times_list.append(t)
                works_list.append(w)
                row_of.append(r)
                count_of.append(t.size)
        if not times_list:
            return []
        times = np.concatenate(times_list)
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        if sorted_times.size > 1 and not np.all(sorted_times[:-1] < sorted_times[1:]):
            return None  # bail before building works/rows: ties are common
        works = np.concatenate(works_list)[order]
        row_ids = np.repeat(np.asarray(row_of, dtype=np.int64),
                            count_of)[order]
        return zip(row_ids.tolist(), works.tolist())

    def _ordered_completions(self, rows: List[int]):
        """``(row, work)`` for every completed period, in event-heap order.

        Vectorized replacement for the heap replay of
        :meth:`_completion_order` (kept as the reference): instead of
        pushing and popping every event through ``heapq``, enumerate all
        events the replay *would* push — period completions (PE), owner
        interrupts (INT) and lifespan ends (LIFE) — stable-sort them by
        time once, and resolve only the equal-time groups.

        Within a tie group the heap pops by push sequence.  Init-pushed
        events (all INT and LIFE events, plus each row's first-segment
        first completion) carry their construction sequence.  Every other
        event is pushed by exactly one *predecessor* pop — the previous
        completion of its chain, or the interrupt opening its segment —
        and because every period is strictly positive, that predecessor
        pops at a strictly earlier time.  So when a tie group is reached,
        every member's predecessor already has its final pop rank, and
        ordering the group by ``(init events first by init sequence, then
        dynamic events by predecessor pop rank)`` reproduces the heap's
        sequence numbers exactly.
        """
        times: List[float] = []
        init_seq: List[int] = []      # construction order; -1 for dynamic
        pred: List[int] = []          # event id of the push trigger; -1 init
        out_row: List[int] = []       # yielding row; -1 for silent events
        out_work: List[float] = []
        next_init = 0

        for row in rows:               # init pushes, in workstation order
            trace = self.row_trace[row]
            per_seg: Dict[int, Tuple[list, list, int]] = {}
            for (segment, _lengths, t), works in zip(self._pieces[row],
                                                     self._piece_works[row]):
                boundary_here = (self._boundary[row]
                                 and segment == trace.size)
                per_seg[segment] = (t.tolist(), works.tolist(),
                                    t.size - (1 if boundary_here else 0))
            int_ids: Dict[int, int] = {}
            for seg, t in enumerate(trace.tolist()):
                int_ids[seg] = len(times)
                times.append(t)
                init_seq.append(next_init)
                next_init += 1
                pred.append(-1)
                out_row.append(-1)
                out_work.append(0.0)
            # LIFE: processes the boundary completion (if any) at time U.
            boundary_work = None
            if self._boundary[row]:
                entry = per_seg.get(int(trace.size))
                if entry is not None:
                    boundary_work = entry[1][-1]
            times.append(self.row_lifespan[row])
            init_seq.append(next_init)
            next_init += 1
            pred.append(-1)
            out_row.append(row if boundary_work is not None else -1)
            out_work.append(boundary_work if boundary_work is not None else 0.0)
            # PE chains: the first completion of segment 0 is init-pushed;
            # the first completion of segment s > 0 is pushed by INT s-1;
            # completion i > 0 is pushed by completion i-1 of its chain.
            for seg in sorted(per_seg):
                t_list, w_list, chain = per_seg[seg]
                if chain <= 0:
                    continue
                previous = -1
                for i in range(chain):
                    event = len(times)
                    times.append(t_list[i])
                    out_row.append(row)
                    out_work.append(w_list[i])
                    if i > 0:
                        init_seq.append(-1)
                        pred.append(previous)
                    elif seg == 0:
                        init_seq.append(next_init)
                        next_init += 1
                        pred.append(-1)
                    else:
                        init_seq.append(-1)
                        pred.append(int_ids[seg - 1])
                    previous = event

        total = len(times)
        if total == 0:
            return []
        times_arr = np.asarray(times)
        order = np.argsort(times_arr, kind="stable")
        sorted_times = times_arr[order]
        pop_rank = np.empty(total, dtype=np.int64)
        pop_rank[order] = np.arange(total)
        if total > 1:
            starts = np.flatnonzero(
                np.r_[True, sorted_times[1:] != sorted_times[:-1]])
            ends = np.r_[starts[1:], total]
            for start, end in zip(starts.tolist(), ends.tolist()):
                if end - start == 1:
                    continue
                members = order[start:end].tolist()
                members.sort(key=lambda e: ((0, init_seq[e])
                                            if init_seq[e] >= 0
                                            else (1, int(pop_rank[pred[e]]))))
                order[start:end] = members
                for offset, event in enumerate(members):
                    pop_rank[event] = start + offset

        return [(out_row[e], out_work[e]) for e in order.tolist()
                if out_row[e] >= 0]

    def _completion_order(self, rows: List[int]):
        """Yield ``(row, work)`` for every completed period in event-heap order.

        A single workstation's completions are simply chronological.  With
        several workstations sharing the bag, ties between equal completion
        times are broken by the heap's *push order*, which chains from each
        workstation's previous event — so we replay the heap discipline over
        the already-known completion streams.  Only event ordering is
        replayed here; all the expensive accounting stayed vectorized.

        This is the readable reference; production uses the vectorized
        :meth:`_ordered_completions`, pinned against this one by the batch
        simulator tests.
        """
        import heapq
        import itertools

        counter = itertools.count()
        # Entries: (time, seq, kind, row, segment, i) — ordered by
        # (time, seq); seq is unique so later fields never compare.
        heap: List[Tuple[float, int, int, int, int, int]] = []
        PE, INT, LIFE = 0, 1, 2
        # Piece lookup per row: segment -> (times, works, chain length);
        # times/works as plain lists (hot indexing).  The last piece may
        # end with the boundary completion, which the LIFESPAN_END pop
        # processes — it is excluded from the chain length.
        piece_of: Dict[int, Dict[int, Tuple[list, list, int]]] = {}

        def push_first(row: int, segment: int) -> None:
            entry = piece_of[row].get(segment)
            if entry is not None and entry[2] > 0:
                heapq.heappush(heap, (entry[0][0], next(counter), PE,
                                      row, segment, 0))

        for row in rows:               # init pushes, in workstation order
            per_seg = {}
            trace = self.row_trace[row]
            for (segment, _lengths, times), works in zip(self._pieces[row],
                                                         self._piece_works[row]):
                boundary_here = (self._boundary[row]
                                 and segment == trace.size)
                per_seg[segment] = (times.tolist(), works.tolist(),
                                    times.size - (1 if boundary_here else 0))
            piece_of[row] = per_seg
            for seg, t in enumerate(trace.tolist()):
                heapq.heappush(heap, (t, next(counter), INT, row, seg, 0))
            heapq.heappush(heap, (self.row_lifespan[row], next(counter),
                                  LIFE, row, 0, 0))
            push_first(row, 0)

        while heap:
            _time, _seq, kind, row, segment, i = heapq.heappop(heap)
            if kind == PE:
                times, works, chain = piece_of[row][segment]
                yield row, works[i]
                if i + 1 < chain:
                    heapq.heappush(heap, (times[i + 1], next(counter), PE,
                                          row, segment, i + 1))
            elif kind == INT:
                push_first(row, segment + 1)
            else:  # LIFE: the boundary completion is processed here, at time U
                if self._boundary[row]:
                    entry = piece_of[row].get(int(self.row_trace[row].size))
                    if entry is not None:
                        yield row, entry[1][-1]

    # ------------------------------------------------------------------
    def report(self, rep: int) -> SimulationReport:
        per_ws = {self.row_id[r]: self._metrics[r] for r in self.rep_rows[rep]}
        return SimulationReport(per_workstation=per_ws,
                                makespan=self.rep_makespan[rep])
