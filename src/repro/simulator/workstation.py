"""Borrowed-workstation description and per-run bookkeeping.

A :class:`BorrowedWorkstation` describes the contract workstation A holds on
one machine B: the usable lifespan, the communication set-up cost of the A↔B
round trip, the machine's relative speed, the owner's interrupt trace, and
the interrupt budget the guarantee was negotiated for.  The mutable run-time
state (current episode schedule, period in flight, accumulated metrics)
lives in :class:`WorkstationState`, created fresh for every simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.exceptions import InvalidParameterError
from ..core.schedule import EpisodeSchedule
from .metrics import WorkstationMetrics

__all__ = ["BorrowedWorkstation", "WorkstationState"]


@dataclass(frozen=True)
class BorrowedWorkstation:
    """Static description of one cycle-stealing contract.

    Parameters
    ----------
    workstation_id:
        Unique name of the borrowed machine.
    lifespan:
        Contracted usable lifespan ``U``.
    setup_cost:
        Communication set-up cost ``c`` of the paired send/reclaim.
    interrupt_budget:
        The bound ``p`` the guarantee was negotiated for.  The owner trace
        may contain more interrupts than this — guarantees then no longer
        apply, which is part of what the simulator lets you study.
    owner_interrupts:
        Absolute times (from the start of the opportunity) at which the
        owner reclaims the machine.
    speed:
        Relative compute speed; one time unit of productive period time
        completes ``speed`` units of work.
    """

    workstation_id: str
    lifespan: float
    setup_cost: float
    interrupt_budget: int
    owner_interrupts: Sequence[float] = ()
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.lifespan <= 0.0:
            raise InvalidParameterError(f"lifespan must be positive, got {self.lifespan!r}")
        if self.setup_cost < 0.0:
            raise InvalidParameterError(
                f"setup_cost must be non-negative, got {self.setup_cost!r}")
        if self.interrupt_budget < 0:
            raise InvalidParameterError(
                f"interrupt_budget must be non-negative, got {self.interrupt_budget!r}")
        if self.speed <= 0.0:
            raise InvalidParameterError(f"speed must be positive, got {self.speed!r}")
        times = tuple(sorted(float(t) for t in self.owner_interrupts))
        if any(t < 0.0 for t in times):
            raise InvalidParameterError("owner interrupt times must be non-negative")
        object.__setattr__(self, "owner_interrupts", times)


@dataclass
class WorkstationState:
    """Mutable per-run state of one borrowed workstation."""

    workstation: BorrowedWorkstation
    #: Epoch counter used to invalidate stale PERIOD_END events after a kill.
    epoch: int = 0
    #: The episode-schedule currently being executed.
    schedule: Optional[EpisodeSchedule] = None
    #: Index (0-based) of the period currently in flight.
    period_index: int = 0
    #: Start time of the period currently in flight (absolute clock).
    period_start: Optional[float] = None
    #: Interrupts the scheduler still budgets for.
    interrupts_remaining: int = 0
    #: Whether the contract has ended (lifespan expired).
    finished: bool = False
    #: Accumulated metrics.
    metrics: WorkstationMetrics = field(default=None)
    #: History of episode schedules used (for reporting/debugging).
    episode_history: List[EpisodeSchedule] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.metrics is None:
            self.metrics = WorkstationMetrics(workstation_id=self.workstation.workstation_id)
        self.interrupts_remaining = self.workstation.interrupt_budget

    @property
    def busy(self) -> bool:
        """Whether a period is currently in flight."""
        return self.period_start is not None and not self.finished

    def current_period_length(self) -> float:
        """Length of the period currently in flight."""
        assert self.schedule is not None and self.busy
        return self.schedule[self.period_index]
