"""Metrics collected by the NOW simulator.

The accounting follows the model's decomposition of every time unit of the
contracted lifespan into exactly one of four buckets:

* **productive** — period time beyond the set-up cost in periods that
  completed (this, scaled by machine speed, is the accomplished work);
* **overhead** — the set-up portion of completed periods;
* **wasted** — time spent in periods that an owner interrupt killed
  (both their set-up and their in-flight productive part are lost);
* **idle** — lifespan during which no period was in flight (e.g. the
  scheduler stopped early, or nothing was left to dispatch).

The invariant ``productive + overhead + wasted + idle == lifespan`` is
asserted by :meth:`WorkstationMetrics.check_conservation` and exercised by
the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["WorkstationMetrics", "SimulationReport"]


@dataclass
class WorkstationMetrics:
    """Per-workstation accounting of one simulation run."""

    workstation_id: str
    productive_time: float = 0.0
    overhead_time: float = 0.0
    wasted_time: float = 0.0
    idle_time: float = 0.0
    completed_work: float = 0.0
    completed_periods: int = 0
    killed_periods: int = 0
    owner_interrupts: int = 0
    episodes: int = 0
    tasks_completed: int = 0

    def record_completed_period(self, length: float, setup_cost: float,
                                speed: float = 1.0) -> float:
        """Account for a period that ran to completion; returns the work done."""
        productive = max(0.0, length - setup_cost)
        self.productive_time += productive
        self.overhead_time += min(length, setup_cost)
        self.completed_periods += 1
        work = productive * speed
        self.completed_work += work
        return work

    def record_killed_period(self, elapsed: float) -> None:
        """Account for a period killed after ``elapsed`` time units in flight."""
        self.wasted_time += max(0.0, elapsed)
        self.killed_periods += 1
        self.owner_interrupts += 1

    def record_idle(self, duration: float) -> None:
        """Account for lifespan during which nothing was in flight."""
        self.idle_time += max(0.0, duration)

    @property
    def accounted_time(self) -> float:
        """Total lifespan accounted for across the four buckets."""
        return self.productive_time + self.overhead_time + self.wasted_time + self.idle_time

    def utilization(self, lifespan: float) -> float:
        """Fraction of the lifespan converted into productive time."""
        return self.productive_time / lifespan if lifespan > 0 else 0.0

    def check_conservation(self, lifespan: float, *, tol: float = 1e-6) -> None:
        """Raise ``AssertionError`` unless the four buckets sum to the lifespan."""
        assert abs(self.accounted_time - lifespan) <= tol * max(1.0, lifespan), (
            f"time accounting for {self.workstation_id} is off: "
            f"{self.accounted_time!r} != {lifespan!r}"
        )


@dataclass
class SimulationReport:
    """Aggregate outcome of one simulation run across all workstations."""

    per_workstation: Dict[str, WorkstationMetrics] = field(default_factory=dict)
    #: Total simulated time (the largest contracted lifespan).
    makespan: float = 0.0

    @property
    def total_work(self) -> float:
        """Work accomplished across all borrowed workstations."""
        return sum(m.completed_work for m in self.per_workstation.values())

    @property
    def total_interrupts(self) -> int:
        """Owner interrupts observed across all workstations."""
        return sum(m.owner_interrupts for m in self.per_workstation.values())

    @property
    def total_tasks_completed(self) -> int:
        """Tasks of the data-parallel workload completed across the NOW."""
        return sum(m.tasks_completed for m in self.per_workstation.values())

    def rows(self) -> List[Dict[str, object]]:
        """Tabular summary (one row per workstation) for the reporting layer."""
        out: List[Dict[str, object]] = []
        for wid, m in sorted(self.per_workstation.items()):
            out.append({
                "workstation": wid,
                "work": m.completed_work,
                "productive": m.productive_time,
                "overhead": m.overhead_time,
                "wasted": m.wasted_time,
                "idle": m.idle_time,
                "periods": m.completed_periods,
                "killed": m.killed_periods,
                "interrupts": m.owner_interrupts,
                "tasks": m.tasks_completed,
            })
        return out
