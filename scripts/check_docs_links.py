#!/usr/bin/env python3
"""CI gate: fail on broken intra-repository markdown links.

Scans README.md, CONTRIBUTING.md and everything under docs/ for inline
markdown links and images (``[text](target)``), resolves each relative
target against the file containing it, and verifies that

* the target file or directory exists in the working tree, and
* when the target carries a ``#fragment``, the referenced heading exists
  in the target markdown file (GitHub-style anchor slugs).

External links (``http(s)://``, ``mailto:``) and targets that resolve
outside the repository (e.g. the ``../../actions/...`` CI badge) are
skipped — this guard is about the repo's own docs tree staying
self-consistent, not about the wider internet.

Exit codes: ``0`` all links resolve, ``1`` at least one broken link
(each emitted as a ``::error::`` annotation for the Actions summary),
``2`` no markdown files found (misconfigured invocation).
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
from typing import List, Tuple

#: Inline markdown links/images: [text](target) — target captured lazily
#: so titles ("...") and closing parens in prose stay out of the path.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_CODE_FENCE_RE = re.compile(r"^(```|~~~)")

#: Default scan set, relative to the repository root.
DEFAULT_GLOBS = ("README.md", "CONTRIBUTING.md", "CHANGES.md", "docs/**/*.md")


def github_anchor(heading: str) -> str:
    """The GitHub anchor slug of a markdown heading line's text."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)          # unwrap inline code
    text = re.sub(r"[^\w\s-]", "", text)               # drop punctuation
    return text.replace(" ", "-")


def heading_anchors(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if _CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if not in_fence and line.lstrip().startswith("#"):
                anchors.add(github_anchor(line))
    return anchors


def markdown_links(path: str) -> List[Tuple[int, str]]:
    links: List[Tuple[int, str]] = []
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if _CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_RE.finditer(line):
                links.append((lineno, match.group(1)))
    return links


def check_file(path: str, repo_root: str) -> List[str]:
    errors: List[str] = []
    for lineno, target in markdown_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # same-file anchor
            fragment = target[1:]
            if fragment not in heading_anchors(path):
                errors.append(f"{path}:{lineno}: broken anchor {target!r}")
            continue
        target_path, _, fragment = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target_path))
        if not os.path.abspath(resolved).startswith(repo_root + os.sep):
            continue  # escapes the repo (e.g. the Actions badge): external
        if not os.path.exists(resolved):
            errors.append(f"{path}:{lineno}: broken link {target!r} "
                          f"(no such file {resolved!r})")
            continue
        if fragment:
            if not resolved.endswith(".md"):
                errors.append(f"{path}:{lineno}: fragment on non-markdown "
                              f"target {target!r}")
            elif fragment not in heading_anchors(resolved):
                errors.append(f"{path}:{lineno}: broken anchor {target!r} "
                              f"(no heading #{fragment} in {resolved!r})")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("globs", nargs="*", default=list(DEFAULT_GLOBS),
                        help="markdown files/globs to scan "
                             f"(default: {' '.join(DEFAULT_GLOBS)})")
    parser.add_argument("--root", default=".",
                        help="repository root (default: current directory)")
    args = parser.parse_args(argv)

    repo_root = os.path.abspath(args.root)
    files: List[str] = []
    for pattern in args.globs:
        files.extend(sorted(glob.glob(os.path.join(args.root, pattern),
                                      recursive=True)))
    files = [f for f in dict.fromkeys(files) if os.path.isfile(f)]
    if not files:
        print("::error::check_docs_links: no markdown files matched "
              f"{args.globs!r}")
        return 2

    all_errors: List[str] = []
    for path in files:
        all_errors.extend(check_file(path, repo_root))

    if all_errors:
        for error in all_errors:
            print(f"::error::{error}")
        print(f"\n{len(all_errors)} broken link(s) across "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all intra-repo links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
