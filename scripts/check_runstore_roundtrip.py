#!/usr/bin/env python
"""Nightly run-store round-trip: run -> SIGKILL -> resume -> report.

Exercises the full durability story of the run store end to end on a real
committed spec:

1. launch ``repro run`` as a subprocess and SIGKILL it as soon as at
   least one point shard has been persisted (if the run wins the race and
   finishes, the resume below degrades to a no-op — the checks still hold);
2. resume the killed run to completion;
3. render the report (and render it again, asserting the second render is
   a digest-cache hit whose bytes match a forced re-render);
4. diff ``Run.rows()`` read through the columnar sidecar against a forced
   per-shard fallback — they must be identical, row for row;
5. run the same spec uninterrupted in a second store and assert the two
   reports are **byte-identical**.

Exit code 0 when every check passes, 1 otherwise (failures are also
emitted as GitHub Actions ``::error::`` annotations).  The rendered
report is left at ``--report-out`` for upload as a workflow artifact.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.reporting import refresh_run_report, render_run_report  # noqa: E402
from repro.runstore import RunStore, resume_run, run_spec  # noqa: E402
from repro.specs import load_spec  # noqa: E402

RUN_ID = "roundtrip-victim"


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    print(f"::error title=runstore roundtrip::{str(message).splitlines()[0]}")


def fail(message: str) -> int:
    github_error(message)
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def run_and_kill(spec_path: str, runs_dir: str, replications: int,
                 poll_deadline: float = 300.0) -> bool:
    """Start ``repro run`` and SIGKILL it once a shard exists; True if killed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", spec_path,
         "--runs-dir", runs_dir, "--run-id", RUN_ID,
         "--replications", str(replications)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    points_dir = os.path.join(runs_dir, RUN_ID, "points")
    try:
        deadline = time.monotonic() + poll_deadline
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                if any(name.endswith(".npz") for name in os.listdir(points_dir)):
                    break
            except OSError:
                pass
            time.sleep(0.02)
        killed = proc.poll() is None
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return killed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default=os.path.join(_ROOT, "specs",
                                                       "laptop.toml"))
    parser.add_argument("--runs-dir", default="roundtrip-runs")
    parser.add_argument("--replications", type=int, default=50,
                        help="spec replication override (keeps the job quick)")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--report-out", default="roundtrip_report.md",
                        help="where to copy the rendered report (artifact)")
    args = parser.parse_args(argv)

    killed_dir = os.path.join(args.runs_dir, "killed")
    reference_dir = os.path.join(args.runs_dir, "reference")
    for directory in (killed_dir, reference_dir):
        shutil.rmtree(directory, ignore_errors=True)
        os.makedirs(directory, exist_ok=True)

    spec = load_spec(args.spec)
    if args.replications:
        from repro.specs import parse_spec, spec_to_dict
        data = spec_to_dict(spec)
        data["experiment"]["replications"] = args.replications
        spec = parse_spec(data, source=f"{args.spec} (roundtrip override)")

    killed = run_and_kill(args.spec, killed_dir, args.replications)
    print(f"run phase: {'SIGKILLed mid-run' if killed else 'finished before the kill'}")

    run = resume_run(RUN_ID, runs_dir=killed_dir, jobs=args.jobs)
    if run.status != "complete":
        return fail(f"resumed run is {run.status!r}, expected complete")

    # Sidecar vs forced per-shard fallback: identical rows, or the
    # columnar layer is lying about the stored results.
    via_sidecar = run.rows(source="sidecar")
    via_shards = run.rows(source="shards")
    if via_sidecar != via_shards:
        diffs = sum(a != b for a, b in zip(via_sidecar, via_shards))
        return fail(
            f"sidecar rows diverge from per-shard rows ({diffs} differing "
            f"row(s) of {len(via_shards)})")
    print(f"rows: sidecar == per-shard fallback ({len(via_shards)} rows)")

    # Report: first render (miss), second render (must hit), forced
    # re-render (must match the cached bytes).
    path, hit1 = refresh_run_report(run)
    with open(path, encoding="utf-8") as handle:
        first = handle.read()
    _path, hit2 = refresh_run_report(run)
    if not hit2:
        return fail("second report render missed the digest cache")
    _path, _hit = refresh_run_report(run, force=True)
    with open(path, encoding="utf-8") as handle:
        forced = handle.read()
    if forced != first:
        return fail("forced re-render differs from the cached report")
    print(f"report cache: first={'hit' if hit1 else 'miss'}, second=hit, "
          "forced re-render byte-identical")

    # Byte-identity against an uninterrupted run of the same spec.
    reference = run_spec(spec, runs_dir=reference_dir, run_id=RUN_ID,
                         jobs=args.jobs)
    if render_run_report(run) != render_run_report(reference):
        return fail("resumed report is not byte-identical to the "
                    "uninterrupted reference run's")
    print("resumed report byte-identical to uninterrupted reference")

    shutil.copyfile(RunStore(killed_dir).open(RUN_ID).report_path,
                    args.report_out)
    print(f"ok: round-trip verified; report copied to {args.report_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
