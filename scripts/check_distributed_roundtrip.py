#!/usr/bin/env python
"""Nightly distributed round-trip: coordinator + 3 workers, one SIGKILLed.

Exercises the distributed work-stealing executor end to end with real
processes over loopback TCP:

1. write a deterministic Monte-Carlo sweep spec to disk and launch
   ``repro coordinator`` as a subprocess (ephemeral port, parsed from
   its announcement line);
2. launch three ``repro worker`` subprocesses against it, each point's
   cost stretched by the ``REPRO_TEST_POINT_DELAY`` hook so the kill
   window below is wide on any machine;
3. SIGKILL one worker as soon as the run directory holds at least one
   completed shard — mid-sweep, and very likely mid-point; its leases
   must return to the pending set and the two survivors must steal them;
4. wait for the coordinator to report completion, then diff the run
   directory against an uninterrupted **single-machine** reference run
   of the same spec (``run_spec`` with 2 local jobs): the manifest,
   every shard and ``columns.npz`` must be **byte-identical**
   (``columns.vouch.json`` is excluded — it records machine-local stat
   signatures and is advisory by design);
5. assert the surviving workers exited cleanly and that the coordinator
   solved each DP table exactly once cluster-wide.

Exit code 0 when every check passes, 1 otherwise (failures are also
emitted as GitHub Actions ``::error::`` annotations).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.runstore import run_spec  # noqa: E402
from repro.specs import default_run_id, parse_spec  # noqa: E402

#: The round-trip workload: 12 Monte-Carlo points with DP optima, so the
#: kill exercises lease recovery AND the table service in one pass.
SPEC = {
    "experiment": {"name": "dist-roundtrip", "kind": "sweep", "seed": 7,
                   "replications": 40, "backend": "batch"},
    "sweep": {"lifespans": [200.0, 300.0, 400.0], "setup_costs": [1.0],
              "interrupts": [1, 2],
              "schedulers": ["equalizing-adaptive", "rosenberg-nonadaptive"],
              "adversaries": ["poisson-owner"], "optimal": True},
}

WORKERS = 3

#: Seconds of injected per-point cost for the cluster's workers (widens
#: the SIGKILL window; never changes the computed bytes).
POINT_DELAY_S = 0.3


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    print(f"::error title=distributed roundtrip::"
          f"{str(message).splitlines()[0]}")


def fail(message: str) -> int:
    github_error(message)
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def run_tree(root: str) -> dict:
    """``{relpath: sha256}`` of a run directory, minus the advisory vouch."""
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            if name == "columns.vouch.json":
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            out[os.path.relpath(path, root)] = digest
    return out


def launch_coordinator(spec_path: str, runs_dir: str, env: dict,
                       deadline: float) -> tuple:
    """Start ``repro coordinator`` and parse its ``host:port`` banner."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "coordinator", spec_path,
         "--runs-dir", runs_dir, "--bind", "127.0.0.1:0",
         "--lease-ttl", "20", "--max-runtime", "900"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    banner = proc.stdout.readline().strip()
    prefix = "coordinator listening on "
    if not banner.startswith(prefix):
        proc.kill()
        raise RuntimeError(f"unexpected coordinator banner: {banner!r}")
    host, port = banner[len(prefix):].rsplit(":", 1)
    return proc, host, int(port)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs-dir", default="/tmp/distributed-roundtrip",
                        help="scratch directory (wiped at startup)")
    parser.add_argument("--poll-deadline", type=float, default=600.0,
                        help="seconds to wait for each phase")
    args = parser.parse_args(argv)

    if os.path.exists(args.runs_dir):
        shutil.rmtree(args.runs_dir)
    cluster_dir = os.path.join(args.runs_dir, "cluster")
    os.makedirs(cluster_dir)
    spec_path = os.path.join(args.runs_dir, "spec.json")
    with open(spec_path, "w") as handle:
        json.dump(SPEC, handle, indent=2)

    spec = parse_spec(SPEC)
    run_id = default_run_id(spec)
    points_dir = os.path.join(cluster_dir, run_id, "points")

    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    worker_env = dict(env, REPRO_TEST_POINT_DELAY=str(POINT_DELAY_S))

    coordinator, host, port = launch_coordinator(spec_path, cluster_dir,
                                                 env, args.poll_deadline)
    workers = []
    try:
        for rank in range(WORKERS):
            workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", f"{host}:{port}",
                 "--spec", spec_path, "--worker-id", f"rt-{rank}",
                 "--retry-for", "30"],
                env=worker_env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True))

        # Phase 1: wait for the first completed shard, then SIGKILL one
        # worker — mid-sweep by construction, mid-point very likely.
        deadline = time.monotonic() + args.poll_deadline
        while time.monotonic() < deadline:
            if os.path.isdir(points_dir) and any(
                    name.endswith(".npz") for name in os.listdir(points_dir)):
                break
            if coordinator.poll() is not None:
                return fail("coordinator exited before any shard landed")
            time.sleep(0.05)
        else:
            return fail("no shard landed before the poll deadline")
        workers[0].send_signal(signal.SIGKILL)
        print(f"killed worker rt-0 with "
              f"{len(os.listdir(points_dir))}/{spec.num_points()} shards "
              "on disk", flush=True)

        # Phase 2: the survivors steal the dead worker's leases and the
        # coordinator runs to completion.
        try:
            coordinator.wait(timeout=args.poll_deadline)
        except subprocess.TimeoutExpired:
            return fail("coordinator never finished after the kill")
        summary = coordinator.stdout.read().strip()
        print(summary, flush=True)
        if coordinator.returncode != 0:
            return fail(f"coordinator exited {coordinator.returncode}: "
                        f"{summary}")
        for rank, worker in enumerate(workers[1:], start=1):
            try:
                worker.wait(timeout=60)
            except subprocess.TimeoutExpired:
                worker.kill()
                return fail(f"surviving worker rt-{rank} never exited")
            if worker.returncode != 0:
                return fail(f"surviving worker rt-{rank} exited "
                            f"{worker.returncode}: "
                            f"{worker.stdout.read().strip()}")
        workers[0].wait(timeout=60)
    finally:
        for proc in [coordinator] + workers:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    # Phase 3: byte-identity against an uninterrupted single-machine run.
    reference_dir = os.path.join(args.runs_dir, "reference")
    reference = run_spec(spec, runs_dir=reference_dir, jobs=2)
    cluster_tree = run_tree(os.path.join(cluster_dir, run_id))
    reference_tree = run_tree(reference.root)
    if cluster_tree != reference_tree:
        differing = sorted(
            set(cluster_tree) ^ set(reference_tree)
            | {path for path in set(cluster_tree) & set(reference_tree)
               if cluster_tree[path] != reference_tree[path]})
        return fail(f"cluster run is not byte-identical to the reference; "
                    f"differing files: {differing[:10]}")

    # Phase 4: the coordinator's summary must show exactly one DP solve
    # per distinct (L, c, p) key — 6 here (3 lifespans x 1 cost x 2
    # budgets) — however the three workers raced for tables.
    expected_keys = len({(int(L), 1, p)
                         for L in SPEC["sweep"]["lifespans"]
                         for p in SPEC["sweep"]["interrupts"]})
    if f"{expected_keys} DP solves" not in summary:
        return fail(f"expected exactly {expected_keys} DP solves in the "
                    f"coordinator summary, got: {summary}")

    print(f"ok: {spec.num_points()}-point sweep survived a worker SIGKILL "
          f"byte-identically ({len(cluster_tree)} files compared, "
          f"{expected_keys} DP solves cluster-wide)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
