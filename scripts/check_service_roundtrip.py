#!/usr/bin/env python
"""Nightly service round-trip: submit two specs -> SIGKILL -> restart -> verify.

Exercises the run-service's durability story end to end with real
processes:

1. submit two spec files (two tenants) into a fresh queue journal;
2. launch ``repro serve --drain`` as a subprocess and SIGKILL it as soon
   as at least one point shard has been persisted (if the service drains
   before the kill lands, the restart degrades to a no-op — the checks
   still hold);
3. restart the service and let it drain: both submissions must finish
   ``published``, with no corrupt or stray journal entries;
4. render both published runs' reports and diff them against
   uninterrupted in-process reference runs of the same specs — they must
   be **byte-identical**;
5. assert the queue snapshot agrees (2 published, nothing pending).

Exit code 0 when every check passes, 1 otherwise (failures are also
emitted as GitHub Actions ``::error::`` annotations).  The status
snapshot is left at ``--status-out`` for upload as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.reporting import render_run_report  # noqa: E402
from repro.runstore import RunStore, run_spec  # noqa: E402
from repro.service import Journal, status_snapshot  # noqa: E402
from repro.service.journal import QUEUE_DIRNAME  # noqa: E402
from repro.specs import default_run_id, load_spec, load_spec_data  # noqa: E402

TENANTS = ("team-a", "team-b")


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    print(f"::error title=service roundtrip::{str(message).splitlines()[0]}")


def fail(message: str) -> int:
    github_error(message)
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def serve(runs_dir: str, *, kill: bool, shard_dirs=(),
          poll_deadline: float = 300.0) -> bool:
    """Run ``repro serve --drain``; SIGKILL mid-run when ``kill`` is set.

    Returns True when the kill landed while the service was still alive.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--runs-dir", runs_dir,
         "--drain", "--workers", "2", "--poll-interval", "0.02"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        if not kill:
            proc.wait(timeout=max(poll_deadline, 600))
            return False
        deadline = time.monotonic() + poll_deadline
        while time.monotonic() < deadline and proc.poll() is None:
            if any(name.endswith(".npz")
                   for directory in shard_dirs if os.path.isdir(directory)
                   for name in os.listdir(directory)):
                break
            time.sleep(0.02)
        killed = proc.poll() is None
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=120)
        return killed
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--specs", nargs=2,
                        default=[os.path.join(_ROOT, "specs", "laptop.toml"),
                                 os.path.join(_ROOT, "specs", "office.toml")],
                        help="two spec files to submit (one per tenant)")
    parser.add_argument("--runs-dir", default="service-roundtrip-runs")
    parser.add_argument("--status-out", default="service_status.json",
                        help="where to write the final queue snapshot")
    args = parser.parse_args(argv)

    shutil.rmtree(args.runs_dir, ignore_errors=True)
    os.makedirs(args.runs_dir, exist_ok=True)
    reference_dir = os.path.join(args.runs_dir, "_reference")

    journal = Journal(os.path.join(args.runs_dir, QUEUE_DIRNAME))
    entries, run_ids = [], []
    for tenant, spec_path in zip(TENANTS, args.specs):
        entries.append(journal.submit(load_spec_data(spec_path),
                                      tenant=tenant))
        run_ids.append(default_run_id(load_spec(spec_path)))
    print(f"submitted {len(entries)} specs: "
          + ", ".join(e.entry_id for e in entries))

    shard_dirs = [os.path.join(args.runs_dir, tenant, run_id, "points")
                  for tenant, run_id in zip(TENANTS, run_ids)]
    killed = serve(args.runs_dir, kill=True, shard_dirs=shard_dirs)
    print(f"serve phase: "
          f"{'SIGKILLed mid-run' if killed else 'drained before the kill'}")

    states = {e.entry_id: journal.get(e.entry_id).state for e in entries}
    print(f"journal after kill: {states}")
    if journal.corrupt_entries():
        return fail(f"corrupt journal entries after SIGKILL: "
                    f"{journal.corrupt_entries()}")

    serve(args.runs_dir, kill=False)

    for entry in entries:
        final = journal.get(entry.entry_id)
        if final.state != "published":
            return fail(f"{entry.entry_id} is {final.state!r} after restart, "
                        "expected published")
    if journal.corrupt_entries():
        return fail(f"corrupt journal entries after restart: "
                    f"{journal.corrupt_entries()}")
    print("restart drained both submissions to published")

    for tenant, spec_path, run_id in zip(TENANTS, args.specs, run_ids):
        run = RunStore(os.path.join(args.runs_dir, tenant)).open(run_id)
        if run.status != "complete":
            return fail(f"{tenant}/{run_id} is {run.status!r}, "
                        "expected complete")
        reference = run_spec(load_spec(spec_path),
                             runs_dir=os.path.join(reference_dir, tenant),
                             run_id=run_id)
        if render_run_report(run) != render_run_report(reference):
            return fail(f"{tenant}/{run_id}: published report is not "
                        "byte-identical to the uninterrupted reference")
        print(f"{tenant}/{run_id}: byte-identical to reference")

    snapshot = status_snapshot(journal)
    if snapshot["queue"]["published"] != len(entries) \
            or any(snapshot["queue"][state]
                   for state in ("submitted", "validated", "running",
                                 "failed", "dead")):
        return fail(f"unexpected final queue counts: {snapshot['queue']}")
    with open(args.status_out, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"ok: service round-trip verified; snapshot at {args.status_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
