#!/usr/bin/env python
"""Guard the batch replication backend against divergence from the reference.

Runs the same Monte-Carlo sweep twice — once through the event-driven
reference engine, once through the vectorized batch backend — with
identical seeds, and fails if any aggregate column diverges beyond a
relative tolerance.  Both backends consume identical randomness, so the
only admissible difference is float summation order (~1e-15 relative);
anything larger means one backend's accounting changed behaviour.

This is the nightly CI job's workhorse (see
``.github/workflows/nightly.yml``), sized so a medium sweep with hundreds
of replications per point finishes in minutes, and it doubles as a local
smoke test::

    PYTHONPATH=src python scripts/compare_backends.py --replications 500 --jobs 2

``--aggregation-parity`` switches to the aggregation-pipeline guard
instead: every scenario family is replicated with one-shot exact
aggregation and with the streaming accumulators at two different chunk
sizes, failing if streaming count/mean/std/min/max drift from exact
beyond the tolerance or if the two chunkings differ by a single bit.

Exit codes: ``0`` agreement, ``1`` divergence, ``2`` could not run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

# Allow running from a repo checkout without installing the package.
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import SweepGrid, run_sweep  # noqa: E402
from repro.experiments.montecarlo import replicate_scenario  # noqa: E402
from repro.registry import SCENARIO_FAMILIES  # noqa: E402

EXIT_OK = 0
EXIT_DIVERGED = 1
EXIT_ERROR = 2


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    print(f"::error title=backend divergence::{str(message).splitlines()[0]}")


def compare_rows(event_rows, batch_rows, tolerance: float):
    """Yield one message per diverging (row, column) pair."""
    for index, (event_row, batch_row) in enumerate(zip(event_rows, batch_rows)):
        keys = set(event_row) | set(batch_row)
        for key in sorted(keys):
            if key not in event_row or key not in batch_row:
                yield f"row {index}: column {key!r} present in only one backend"
                continue
            a, b = event_row[key], batch_row[key]
            if isinstance(a, str) or isinstance(b, str):
                if a != b:
                    yield f"row {index}: {key} {a!r} != {b!r}"
                continue
            drift = abs(float(a) - float(b)) / max(1.0, abs(float(a)))
            if drift > tolerance:
                yield (f"row {index}: {key} drifted {drift:.3e} "
                       f"(event {a!r}, batch {b!r})")


def check_aggregation_parity(families, replications: int,
                             chunk_sizes, seed: int, tolerance: float):
    """Chunked-vs-one-shot aggregation parity across scenario families.

    For every family, replicates the scenario stream three ways on the
    batch backend — one-shot exact aggregation, and streaming aggregation
    at two different chunk sizes — and yields one message per violation
    of the pipeline's two contracts:

    * streaming is **deterministic regardless of chunk size**: the two
      streaming rows must be bit-identical (the accumulators are fed in
      replication order, so chunking cannot change a single bit);
    * streaming count/mean/std/min/max agree with exact aggregation within
      ``tolerance`` (Welford vs numpy pairwise summation, ~1e-15 relative
      observed).  Quantile columns are P² *estimates* under streaming and
      are deliberately not compared against exact quantiles here.
    """
    for name in families:
        family = SCENARIO_FAMILIES[name]
        start = time.perf_counter()
        exact = replicate_scenario(family, replications, base_seed=seed,
                                   backend="batch", aggregation="exact")
        streamed = [replicate_scenario(family, replications, base_seed=seed,
                                       backend="batch",
                                       aggregation="streaming",
                                       chunk_size=chunk)
                    for chunk in chunk_sizes]
        seconds = time.perf_counter() - start
        print(f"parity: family {name!r} x {replications} replications "
              f"(chunks {list(chunk_sizes)}) in {seconds:.1f}s")

        first, second = streamed
        if first != second:
            diffs = sorted(k for k in set(first) | set(second)
                           if first.get(k) != second.get(k))
            yield (f"family {name!r}: streaming rows differ between chunk "
                   f"sizes {chunk_sizes[0]} and {chunk_sizes[1]} "
                   f"(columns {diffs}) — chunking changed the results")
        for key in sorted(exact):
            if not any(key.endswith(suffix) for suffix in
                       ("_n", "_mean", "_std", "_min", "_max")):
                continue
            a, b = float(exact[key]), float(first[key])
            drift = abs(a - b) / max(1.0, abs(a))
            if drift > tolerance:
                yield (f"family {name!r}: {key} drifted {drift:.3e} "
                       f"between exact ({a!r}) and streaming ({b!r})")


def check_variance_parity(families, replications: int,
                          chunk_sizes, seed: int, tolerance: float):
    """Variance-reduction modes vs plain sampling, across both backends.

    For every scenario family, replicates the same stream under all three
    variance modes and yields one message per violation of the
    variance-reduction contracts:

    * **stratified is a re-weighting of the identical sample**: it uses
      the very same per-replication seeds as ``variance="none"``, so every
      shared aggregate column (means, stds, quantiles — everything except
      the added CI columns and the ``variance`` label) must agree within
      ``tolerance`` (bit-identical in practice);
    * **both backends agree under every mode**: the event-driven reference
      and the vectorized batch backend consume identical (paired) traces,
      so their aggregate rows must agree within ``tolerance`` per mode —
      this is what pins the antithetic reflections to being applied
      identically in the scalar and the vectorized samplers;
    * **antithetic estimates the same quantities**: its means are computed
      from reflected — not identical — draws, so they are only required
      to stay within a generous statistical allowance (6 combined
      standard errors) of plain sampling, not within ``tolerance``;
    * **CI columns are chunking-invariant**: streaming antithetic rows at
      two different chunk sizes must be bit-identical, CI columns
      included — chunking stays a memory knob, never a results knob.
    """
    for name in families:
        family = SCENARIO_FAMILIES[name]
        start = time.perf_counter()
        rows = {}
        for mode in ("none", "antithetic", "stratified"):
            for backend in ("event", "batch"):
                rows[(mode, backend)] = replicate_scenario(
                    family, replications, base_seed=seed, backend=backend,
                    aggregation="exact", variance=mode)
        seconds = time.perf_counter() - start
        print(f"variance-parity: family {name!r} x {replications} "
              f"replications x 3 modes x 2 backends in {seconds:.1f}s")

        for mode in ("none", "antithetic", "stratified"):
            for message in compare_rows([rows[(mode, "event")]],
                                        [rows[(mode, "batch")]], tolerance):
                yield f"family {name!r} mode {mode!r}: {message}"

        none = rows[("none", "batch")]
        stratified = rows[("stratified", "batch")]
        for key in sorted(none):
            if key not in stratified:
                yield (f"family {name!r}: column {key!r} vanished under "
                       "stratification")
                continue
            a, b = none[key], stratified[key]
            if isinstance(a, str):
                if a != b:
                    yield f"family {name!r}: stratified {key} {b!r} != {a!r}"
                continue
            drift = abs(float(a) - float(b)) / max(1.0, abs(float(a)))
            if drift > tolerance:
                yield (f"family {name!r}: stratified {key} drifted "
                       f"{drift:.3e} from plain sampling ({a!r} vs {b!r}) — "
                       "stratification must re-weight, not re-sample")

        antithetic = rows[("antithetic", "batch")]
        for prefix in ("work", "tasks", "interrupts"):
            mean_key, n = f"{prefix}_mean", replications
            if mean_key not in none:
                continue
            sem_none = float(none[f"{prefix}_std"]) / n ** 0.5
            sem_anti = float(antithetic[f"{prefix}_sem"])
            allowance = 6.0 * (sem_none ** 2 + sem_anti ** 2) ** 0.5
            drift = abs(float(antithetic[mean_key]) - float(none[mean_key]))
            if drift > max(allowance, tolerance):
                yield (f"family {name!r}: antithetic {mean_key} "
                       f"{antithetic[mean_key]!r} is {drift:g} from plain "
                       f"sampling's {none[mean_key]!r} (allowance "
                       f"{allowance:g}) — the reflection is biased")

        chunked = [replicate_scenario(family, replications, base_seed=seed,
                                      backend="batch",
                                      aggregation="streaming",
                                      chunk_size=chunk,
                                      variance="antithetic")
                   for chunk in chunk_sizes]
        first, second = chunked
        if first != second:
            diffs = sorted(k for k in set(first) | set(second)
                           if first.get(k) != second.get(k))
            yield (f"family {name!r}: antithetic streaming rows differ "
                   f"between chunk sizes {chunk_sizes[0]} and "
                   f"{chunk_sizes[1]} (columns {diffs}) — CI columns must "
                   "be chunking-invariant")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lifespans", type=float, nargs="+",
                        default=[200.0, 400.0, 800.0])
    parser.add_argument("--setup-costs", type=float, nargs="+", default=[1.0])
    parser.add_argument("--interrupts", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--schedulers", nargs="+",
                        default=["equalizing-adaptive", "rosenberg-adaptive"])
    parser.add_argument("--adversaries", nargs="+",
                        default=["poisson-owner", "uniform-owner"])
    parser.add_argument("--replications", "-n", type=int, default=500)
    parser.add_argument("--jobs", "-j", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="maximum allowed relative divergence per column")
    parser.add_argument("--families", nargs="*", default=[],
                        choices=SCENARIO_FAMILIES.names(),
                        help="also replicate these scenario families through "
                             "both simulator backends (e.g. 'flaky', whose "
                             "idle-interrupt corner the batch backend now "
                             "handles natively)")
    parser.add_argument("--family-replications", type=int, default=None,
                        help="replications per scenario family "
                             "(default: --replications)")
    parser.add_argument("--aggregation-parity", action="store_true",
                        help="instead of the backend sweep, check chunked "
                             "streaming aggregation against one-shot exact "
                             "aggregation on every scenario family: "
                             "streaming mean/std within --tolerance of "
                             "exact, and bit-identical across two chunk "
                             "sizes")
    parser.add_argument("--parity-chunk-sizes", type=int, nargs=2,
                        default=[64, 97],
                        help="the two (deliberately non-divisible) chunk "
                             "sizes whose streaming rows must agree "
                             "bit-for-bit")
    parser.add_argument("--variance-parity", action="store_true",
                        help="check the variance-reduction modes on every "
                             "scenario family: stratified rows within "
                             "--tolerance of plain sampling, both backends "
                             "agreeing per mode on paired traces, "
                             "antithetic means statistically consistent, "
                             "and CI columns bit-identical across chunk "
                             "sizes")
    args = parser.parse_args(argv)

    if args.variance_parity:
        families = args.families or SCENARIO_FAMILIES.names()
        replications = args.family_replications or args.replications
        if replications % 2:
            replications += 1  # antithetic pairs need an even count
        try:
            failures = list(check_variance_parity(
                families, replications, args.parity_chunk_sizes,
                args.seed, args.tolerance))
        except Exception as exc:
            github_error(f"variance parity check could not run: {exc}")
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        if failures:
            github_error(f"{len(failures)} variance-parity violation(s) "
                         "— see the job log")
            print(f"VARIANCE PARITY VIOLATED ({len(failures)} value(s), "
                  f"tolerance {args.tolerance:g}):", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return EXIT_DIVERGED
        print(f"ok: {len(families)} families x {replications} replications "
              "agree across variance modes (stratified == plain within "
              f"{args.tolerance:g}, backends agree per mode, antithetic "
              "statistically consistent, CI columns chunking-invariant)")
        return EXIT_OK

    if args.aggregation_parity:
        families = args.families or SCENARIO_FAMILIES.names()
        replications = args.family_replications or args.replications
        try:
            failures = list(check_aggregation_parity(
                families, replications, args.parity_chunk_sizes,
                args.seed, args.tolerance))
        except Exception as exc:
            github_error(f"aggregation parity check could not run: {exc}")
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        if failures:
            github_error(f"{len(failures)} aggregation-parity violation(s) "
                         "— see the job log")
            print(f"AGGREGATION PARITY VIOLATED ({len(failures)} value(s), "
                  f"tolerance {args.tolerance:g}):", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return EXIT_DIVERGED
        print(f"ok: {len(families)} families x {replications} replications "
              "agree between exact and streaming aggregation "
              f"(tolerance {args.tolerance:g}); streaming bit-identical "
              f"across chunk sizes {args.parity_chunk_sizes}")
        return EXIT_OK

    try:
        grid = SweepGrid(lifespans=tuple(args.lifespans),
                         setup_costs=tuple(args.setup_costs),
                         interrupt_budgets=tuple(args.interrupts),
                         schedulers=tuple(args.schedulers),
                         adversaries=tuple(args.adversaries))
    except Exception as exc:  # bad grid arguments
        github_error(f"invalid sweep grid: {exc}")
        print(f"error: invalid sweep grid: {exc}", file=sys.stderr)
        return EXIT_ERROR

    timings = {}
    rows = {}
    for backend in ("event", "batch"):
        start = time.perf_counter()
        rows[backend] = run_sweep(grid, jobs=args.jobs,
                                  replications=args.replications,
                                  seed=args.seed,
                                  include_guaranteed=False,
                                  backend=backend)
        timings[backend] = time.perf_counter() - start
        print(f"{backend:>5} backend: {len(rows[backend])} points x "
              f"{args.replications} replications in {timings[backend]:.1f}s")

    if len(rows["event"]) != len(rows["batch"]):
        github_error("backends produced different row counts")
        return EXIT_DIVERGED

    # Scenario families through the full NOW simulator (both backends).
    family_replications = args.family_replications or args.replications
    for backend in ("event", "batch"):
        for name in args.families:
            start = time.perf_counter()
            row = replicate_scenario(SCENARIO_FAMILIES[name],
                                     family_replications,
                                     base_seed=args.seed, backend=backend)
            seconds = time.perf_counter() - start
            rows[backend].append(row)
            print(f"{backend:>5} backend: family {name!r} x "
                  f"{family_replications} replications in {seconds:.1f}s")

    failures = list(compare_rows(rows["event"], rows["batch"], args.tolerance))
    if failures:
        github_error(f"{len(failures)} aggregate(s) diverged between the "
                     "batch and event backends — see the job log")
        print(f"BACKEND DIVERGENCE ({len(failures)} value(s), "
              f"tolerance {args.tolerance:g}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return EXIT_DIVERGED

    speedup = timings["event"] / timings["batch"] if timings["batch"] else float("inf")
    print(f"ok: {len(rows['event'])} points agree within {args.tolerance:g} "
          f"(batch backend speedup on the MC layer: {speedup:.1f}x)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
