#!/usr/bin/env python
"""Guard the committed benchmark results against silent drift.

Recomputes a small, fast subgrid of the numbers committed under
``benchmarks/results/*.csv`` — guaranteed work, DP optima and the
guideline-vs-optimal ratios — and fails (exit code 1) if any recomputed
value drifts from its committed counterpart beyond a relative tolerance.
Every quantity involved is deterministic (exact worst-case analysis and an
exact integer DP), so drift means the *code* changed behaviour: exactly
what a CI gate should catch before the CSVs are regenerated blindly.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py \
        [--max-lifespan 5000] [--tolerance 1e-9] [--results-dir benchmarks/results] \
        [--only {all,optimality-gap,nonadaptive,referee,runstore-io,mc-streaming,variance-reduction,distributed-sweep}]

The default ``--max-lifespan`` keeps the check under a few seconds; raise
it to re-verify the full committed grid.  ``--only runstore-io`` runs just
the run-store I/O check: it rebuilds the benchmark's synthetic runs,
re-derives the committed row digests through BOTH the per-shard and the
columnar-sidecar read paths, and enforces the committed sidecar-vs-shard
speedup floor.  ``--only mc-streaming`` re-derives the deterministic work
statistics of the committed streaming-aggregation evidence
(``mc_streaming.csv``) and enforces its peak-RSS flatness floor.
``--only distributed-sweep`` enforces the committed 2-worker throughput
floor of the distributed executor and re-runs its table-service cluster
live to re-prove the one-DP-solve-per-key property.

Exit codes (so CI can distinguish the failure modes):

* ``0`` — all re-verified rows match;
* ``1`` — at least one committed value drifted (the code changed behaviour);
* ``2`` — the committed baseline itself is missing or empty (results CSV
  absent, or no row matched the requested grid).

Failures are also emitted as GitHub Actions ``::error::`` annotations so
drift is visible directly in the Actions summary.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys

# Allow running from a repo checkout without installing the package.
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import CycleStealingParams  # noqa: E402
from repro.analysis import measure_guaranteed_work, optimality_gap  # noqa: E402
from repro.experiments import DPTableCache  # noqa: E402
from repro.schedules import (  # noqa: E402
    EqualizingAdaptiveScheduler,
    RosenbergAdaptiveScheduler,
    RosenbergNonAdaptiveScheduler,
)

SCHEDULERS = {
    "equalizing-adaptive": EqualizingAdaptiveScheduler,
    "rosenberg-adaptive (literal)": RosenbergAdaptiveScheduler,
    "rosenberg-nonadaptive": RosenbergNonAdaptiveScheduler,
}

#: Exit codes — distinct so CI can tell "the code drifted" (fix the code or
#: regenerate the table) from "the baseline is gone" (fix the workflow).
EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_MISSING_BASELINE = 2


class MissingBaselineError(Exception):
    """A committed results file the guard needs does not exist (or is empty)."""


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    first_line = str(message).splitlines()[0]
    print(f"::error title=bench regression::{first_line}")


def read_rows(path):
    try:
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
    except FileNotFoundError:
        raise MissingBaselineError(
            f"committed baseline {path} is missing — benchmarks/results must "
            "be regenerated and committed") from None
    if not rows:
        raise MissingBaselineError(f"committed baseline {path} has no rows")
    return rows


def relative_drift(committed: float, recomputed: float) -> float:
    scale = max(abs(committed), abs(recomputed), 1.0)
    return abs(committed - recomputed) / scale


def check_optimality_gap(results_dir: str, max_lifespan: float,
                         tolerance: float, cache: DPTableCache):
    """Re-derive guideline work, DP optimum and their ratio per row."""
    path = os.path.join(results_dir, "optimality_gap.csv")
    failures = []
    checked = 0
    for row in read_rows(path):
        U = float(row["lifespan"])
        if U > max_lifespan:
            continue
        name = row["scheduler"]
        if name not in SCHEDULERS:
            failures.append(f"{path}: unknown scheduler {name!r}")
            continue
        p = int(row["max_interrupts"])
        params = CycleStealingParams(lifespan=U, setup_cost=1.0,
                                     max_interrupts=p)
        report = optimality_gap(SCHEDULERS[name](), params, cache=cache)
        committed_work = float(row["guaranteed_work"])
        committed_opt = float(row["dp_optimal"])
        committed_ratio = committed_work / committed_opt
        ratio = report.guaranteed_work / report.optimal_work
        for label, committed, recomputed in [
                ("guaranteed_work", committed_work, report.guaranteed_work),
                ("dp_optimal", committed_opt, report.optimal_work),
                ("guideline/optimal ratio", committed_ratio, ratio)]:
            drift = relative_drift(committed, recomputed)
            if drift > tolerance:
                failures.append(
                    f"{path}: {name} U={U:g} p={p}: {label} drifted "
                    f"{drift:.3e} (committed {committed!r}, "
                    f"recomputed {recomputed!r})")
        checked += 1
    return checked, failures


def check_referee_speedup(results_dir: str, max_lifespan: float,
                          tolerance: float):
    """Re-derive the guaranteed-work column of the referee-kernel benchmark.

    The speedup columns are machine-dependent and not checked; the
    ``guaranteed_work`` values are exact and must not drift.  Both the
    vectorized kernel and its retained reference are re-run, so this also
    guards the pair's 1e-9 agreement on the committed grid.
    """
    import numpy as np

    from repro import EpisodeSchedule
    from repro.core.game import (
        guaranteed_adaptive_work,
        guaranteed_adaptive_work_reference,
    )
    from repro.core.work import (
        worst_case_nonadaptive_pattern,
        worst_case_nonadaptive_pattern_reference,
    )

    path = os.path.join(results_dir, "referee_speedup.csv")
    failures = []
    checked = 0
    adaptive_factories = {"equalizing": EqualizingAdaptiveScheduler,
                          "rosenberg": RosenbergAdaptiveScheduler}
    for row in read_rows(path):
        U = float(row["lifespan"])
        if U > max_lifespan:
            continue
        p = int(row["max_interrupts"])
        committed = float(row["guaranteed_work"])
        params = CycleStealingParams(lifespan=U, setup_cost=1.0,
                                     max_interrupts=p)
        if row["kernel"] == "adaptive-minimax":
            prefix = row["case"].split()[0]
            factory = adaptive_factories.get(prefix)
            if factory is None:
                failures.append(f"{path}: unknown adaptive case {row['case']!r}")
                continue
            fast = guaranteed_adaptive_work(factory(), params)
            reference = guaranteed_adaptive_work_reference(factory(), params)
        else:
            schedule = EpisodeSchedule(np.full(int(round(U / 3.0)), 3.0))
            _, fast = worst_case_nonadaptive_pattern(schedule, params)
            _, reference = worst_case_nonadaptive_pattern_reference(schedule,
                                                                    params)
        for label, recomputed in [("guaranteed_work (vectorized)", fast),
                                  ("guaranteed_work (reference)", reference)]:
            drift = relative_drift(committed, recomputed)
            if drift > tolerance:
                failures.append(
                    f"{path}: {row['case']}: {label} drifted {drift:.3e} "
                    f"(committed {committed!r}, recomputed {recomputed!r})")
        checked += 1
    return checked, failures


def check_nonadaptive_section31(results_dir: str, max_lifespan: float,
                                tolerance: float):
    """Re-derive the Section 3.1 guideline's measured worst-case work."""
    path = os.path.join(results_dir, "nonadaptive_section31.csv")
    failures = []
    checked = 0
    scheduler = RosenbergNonAdaptiveScheduler()
    for row in read_rows(path):
        U = float(row["lifespan"])
        if U > max_lifespan:
            continue
        p = int(row["max_interrupts"])
        params = CycleStealingParams(lifespan=U, setup_cost=1.0,
                                     max_interrupts=p)
        recomputed = measure_guaranteed_work(scheduler, params,
                                             mode="nonadaptive")
        committed = float(row["measured_work"])
        drift = relative_drift(committed, recomputed)
        if drift > tolerance:
            failures.append(
                f"{path}: U={U:g} p={p}: measured_work drifted {drift:.3e} "
                f"(committed {committed!r}, recomputed {recomputed!r})")
        checked += 1
    return checked, failures


def check_runstore_io(results_dir: str, max_lifespan: float,
                      tolerance: float):
    """Re-verify the committed run-store I/O evidence (``runstore_io.csv``).

    Rebuilds the benchmark's deterministic synthetic runs in a temp
    directory and re-derives each committed ``rows_sha256`` through BOTH
    read paths — per-shard ``.npz`` and the columnar sidecar — so drift
    in either path (or any divergence between them) fails the gate.  The
    committed ``speedup`` column is machine-dependent in magnitude but
    must stay at or above the documented floor: the sidecar regressing to
    shard-read speed is exactly the silent perf rot this guard exists to
    catch.
    """
    import tempfile

    sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))
    from runstore_io_util import (
        SPEEDUP_FLOOR,
        build_synthetic_run,
        rows_digest,
    )

    path = os.path.join(results_dir, "runstore_io.csv")
    failures = []
    checked = 0
    for row in read_rows(path):
        num_points = int(row["points"])
        committed_digest = row["rows_sha256"]
        with tempfile.TemporaryDirectory() as runs_dir:
            run = build_synthetic_run(runs_dir, num_points)
            for source in ("shards", "sidecar"):
                recomputed = rows_digest(run.rows(source=source))[:16]
                if recomputed != committed_digest:
                    failures.append(
                        f"{path}: {num_points} points: rows_sha256 via "
                        f"{source} is {recomputed}, committed "
                        f"{committed_digest} (the stored rows or a read "
                        "path changed behaviour)")
        speedup = float(row["speedup"])
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{path}: {num_points} points: committed sidecar speedup "
                f"{speedup:g}x is below the {SPEEDUP_FLOOR:g}x floor — "
                "regenerate the evidence only after fixing the regression")
        checked += 1
    return checked, failures


def check_mc_streaming(results_dir: str, max_lifespan: float,
                       tolerance: float):
    """Re-verify the committed streaming-aggregation evidence.

    ``mc_streaming.csv`` holds one row per (aggregation, replication
    count): deterministic work statistics plus the machine-dependent
    seconds and peak-RSS columns.  The deterministic columns of every row
    at or below :data:`MC_STREAMING_REDERIVE_CAP` replications are
    re-derived in-process (exact and streaming alike — the streaming
    accumulators are chunking-invariant, so the committed values must
    reproduce exactly up to tolerance); the expensive 10^5/10^6 rows are
    not re-run, but their committed peak-RSS evidence must keep satisfying
    the documented flatness floor: the largest streaming count within
    ``RSS_RATIO_FLOOR`` of the smallest.  Live (re-measured) flatness is
    ``scripts/check_mc_memory.py``'s job; this guard pins the committed
    table itself.
    """
    sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))
    from mc_streaming_util import RSS_RATIO_FLOOR, replicate_stats

    path = os.path.join(results_dir, "mc_streaming.csv")
    failures = []
    checked = 0
    streaming_rows = []
    for row in read_rows(path):
        count = int(row["replications"])
        aggregation = row["aggregation"]
        if aggregation == "streaming":
            streaming_rows.append(row)
        if count > MC_STREAMING_REDERIVE_CAP:
            continue
        chunk = int(row["chunk_size"]) or None
        recomputed = replicate_stats(count, aggregation, chunk)
        for column in ("work_mean", "work_std", "work_q50"):
            committed = float(row[column])
            drift = relative_drift(committed, float(recomputed[column]))
            if drift > tolerance:
                failures.append(
                    f"{path}: {aggregation} x {count}: {column} drifted "
                    f"{drift:.3e} (committed {committed!r}, recomputed "
                    f"{recomputed[column]!r})")
        if row["quantile_method"] != recomputed["quantile_method"]:
            failures.append(
                f"{path}: {aggregation} x {count}: quantile_method is "
                f"{recomputed['quantile_method']!r}, committed "
                f"{row['quantile_method']!r}")
        checked += 1

    if len(streaming_rows) < 2:
        failures.append(f"{path}: needs at least two streaming rows to "
                        "evidence memory flatness")
    else:
        streaming_rows.sort(key=lambda r: int(r["replications"]))
        smallest, largest = streaming_rows[0], streaming_rows[-1]
        ratio = float(largest["rss_mib"]) / float(smallest["rss_mib"])
        if ratio > RSS_RATIO_FLOOR:
            failures.append(
                f"{path}: committed streaming peak RSS grew {ratio:.2f}x "
                f"from {smallest['replications']} to "
                f"{largest['replications']} replications (floor "
                f"{RSS_RATIO_FLOOR:g}x) — regenerate the evidence only "
                "after fixing the regression")
        checked += 1
    return checked, failures


def check_variance_reduction(results_dir: str, max_lifespan: float,
                             tolerance: float):
    """Re-verify the committed variance-reduction evidence.

    ``variance_reduction.csv`` holds one row per panel configuration (see
    ``benchmarks/variance_reduction_util.CONFIGS``): plain-sampling and
    reduced-mode means/standard errors at equal replication count plus
    their variance ratio.  Every quantity is deterministic given the
    panel's base seed, so each row is re-derived **in-process** and
    compared to the committed values; the enforced rows must additionally
    keep their re-derived ratio at or above ``VARIANCE_RATIO_FLOOR`` —
    the ISSUE's >= 4x headline claim — and at least
    ``MIN_ENFORCED_CONFIGS`` of them must exist.
    """
    sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))
    from variance_reduction_util import (
        CONFIGS,
        MIN_ENFORCED_CONFIGS,
        VARIANCE_RATIO_FLOOR,
        measure_config,
    )

    path = os.path.join(results_dir, "variance_reduction.csv")
    failures = []
    checked = 0
    enforced_ok = 0
    for row in read_rows(path):
        label = row["config"]
        if label not in CONFIGS:
            failures.append(f"{path}: unknown panel config {label!r} — the "
                            "committed table and the panel definition in "
                            "variance_reduction_util diverged")
            continue
        recomputed = measure_config(label)
        # The committed columns are rounded at generation time; compare at
        # a tolerance matching that rounding, relative for the means and
        # the ratio (which spans orders of magnitude).
        for column, tol in (("work_mean_none", max(tolerance, 1e-6)),
                            ("work_mean_reduced", max(tolerance, 1e-6)),
                            ("sem_none", max(tolerance, 1e-6)),
                            ("sem_reduced", max(tolerance, 1e-6)),
                            ("variance_ratio", max(tolerance, 1e-3))):
            committed = float(row[column])
            drift = relative_drift(committed, float(recomputed[column]))
            if drift > tol:
                failures.append(
                    f"{path}: {label}: {column} drifted {drift:.3e} "
                    f"(committed {committed!r}, recomputed "
                    f"{recomputed[column]!r})")
        if row["mode"] != recomputed["mode"] \
                or row["enforced"] != recomputed["enforced"]:
            failures.append(f"{path}: {label}: mode/enforced flags diverged "
                            "from the panel definition")
        if row["enforced"] == "yes":
            ratio = float(recomputed["variance_ratio"])
            if ratio < VARIANCE_RATIO_FLOOR:
                failures.append(
                    f"{path}: {label}: re-derived variance ratio {ratio:g}x "
                    f"fell below the {VARIANCE_RATIO_FLOOR:g}x floor — "
                    "regenerate the evidence only after fixing the "
                    "regression")
            else:
                enforced_ok += 1
        checked += 1
    if checked and enforced_ok < MIN_ENFORCED_CONFIGS:
        failures.append(
            f"{path}: only {enforced_ok} enforced config(s) meet the "
            f"{VARIANCE_RATIO_FLOOR:g}x floor; the committed evidence needs "
            f"at least {MIN_ENFORCED_CONFIGS}")
    return checked, failures


def check_distributed_sweep(results_dir: str, max_lifespan: float,
                            tolerance: float):
    """Re-verify the committed distributed-executor evidence.

    ``distributed_sweep.csv`` commits point-throughput scaling rows (1, 2
    and 4 loopback workers over a fixed-cost sweep) plus one DP-enabled
    table-service row.  Three properties are enforced:

    * the committed 2-worker speedup stays at or above ``SPEEDUP_FLOOR``
      (the executor's acceptance bar) and the speedup column is
      arithmetically consistent with the committed throughputs;
    * the committed table-service row claims exactly one DP solve per
      distinct ``(L, c, p)`` key, where the key count is **re-derived**
      from the spec through the workers' own expansion;
    * the table-service cluster is **re-run live** (2 workers over
      loopback — sub-second) and must again cost exactly one solve per
      key, so the exactly-once property is tested, not just remembered.
    """
    import tempfile

    sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))
    from distributed_util import (
        SPEEDUP_FLOOR,
        WORKER_COUNTS,
        expected_table_keys,
        measure_table_service,
    )

    path = os.path.join(results_dir, "distributed_sweep.csv")
    failures = []
    checked = 0
    scaling = {}
    table_rows = []
    for row in read_rows(path):
        if row["kind"] == "scaling":
            scaling[int(row["workers"])] = row
        elif row["kind"] == "table-service":
            table_rows.append(row)

    missing = [w for w in WORKER_COUNTS if w not in scaling]
    if missing:
        failures.append(f"{path}: no scaling row for worker count(s) "
                        f"{missing} — regenerate the evidence")
    else:
        baseline = float(scaling[WORKER_COUNTS[0]]["points_per_s"])
        for workers, row in sorted(scaling.items()):
            committed = float(row["speedup"])
            derived = float(row["points_per_s"]) / baseline
            if relative_drift(committed, round(derived, 2)) > 1e-6:
                failures.append(
                    f"{path}: {workers} workers: committed speedup "
                    f"{committed:g}x inconsistent with committed "
                    f"throughputs ({derived:.2f}x)")
            checked += 1
        two_worker = float(scaling[2]["speedup"])
        if two_worker < SPEEDUP_FLOOR:
            failures.append(
                f"{path}: committed 2-worker speedup {two_worker:g}x is "
                f"below the {SPEEDUP_FLOOR:g}x floor — regenerate the "
                "evidence only after fixing the regression")

    expected_keys = expected_table_keys()
    if not table_rows:
        failures.append(f"{path}: no table-service row — regenerate the "
                        "evidence")
    for row in table_rows:
        committed_solves = int(row["dp_solves"])
        committed_keys = int(row["distinct_table_keys"])
        if not committed_solves == committed_keys == expected_keys:
            failures.append(
                f"{path}: table-service row claims {committed_solves} DP "
                f"solves over {committed_keys} keys; the spec re-derives "
                f"{expected_keys} distinct keys — exactly-once is broken "
                "or the spec drifted from the committed table")
        checked += 1

    # Live exactly-once: run the table-service cluster here and now.
    with tempfile.TemporaryDirectory() as runs_dir:
        live = measure_table_service(runs_dir)
    if int(live["dp_solves"]) != expected_keys:
        failures.append(
            f"live table-service cluster cost {live['dp_solves']} DP solves "
            f"for {expected_keys} distinct keys — the content-addressed "
            "table service re-solved (or skipped) a table")
    checked += 1
    return checked, failures


#: Streaming-evidence rows at or below this replication count are re-run
#: in-process by ``check_mc_streaming``; larger counts are trusted as
#: committed (their flatness ratio is still enforced) to keep the guard
#: fast enough for every-push CI.
MC_STREAMING_REDERIVE_CAP = 10_000


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir",
                        default=os.path.join(_ROOT, "benchmarks", "results"))
    parser.add_argument("--max-lifespan", type=float, default=5_000.0,
                        help="only re-verify committed rows up to this lifespan")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="maximum allowed relative drift")
    parser.add_argument("--cache-dir", default=None,
                        help="optional on-disk DP-table cache directory")
    parser.add_argument("--only", default="all",
                        choices=["all", "optimality-gap", "nonadaptive",
                                 "referee", "runstore-io", "mc-streaming",
                                 "variance-reduction", "distributed-sweep"],
                        help="run a single check instead of the full set")
    args = parser.parse_args(argv)

    cache = DPTableCache(cache_dir=args.cache_dir)
    checkers = {
        "optimality-gap": lambda: check_optimality_gap(
            args.results_dir, args.max_lifespan, args.tolerance, cache),
        "nonadaptive": lambda: check_nonadaptive_section31(
            args.results_dir, args.max_lifespan, args.tolerance),
        "referee": lambda: check_referee_speedup(
            args.results_dir, args.max_lifespan, args.tolerance),
        "runstore-io": lambda: check_runstore_io(
            args.results_dir, args.max_lifespan, args.tolerance),
        "mc-streaming": lambda: check_mc_streaming(
            args.results_dir, args.max_lifespan, args.tolerance),
        "variance-reduction": lambda: check_variance_reduction(
            args.results_dir, args.max_lifespan, args.tolerance),
        "distributed-sweep": lambda: check_distributed_sweep(
            args.results_dir, args.max_lifespan, args.tolerance),
    }
    selected = list(checkers) if args.only == "all" else [args.only]
    total_checked = 0
    all_failures = []
    try:
        for name in selected:
            checked, failures = checkers[name]()
            total_checked += checked
            all_failures.extend(failures)
    except MissingBaselineError as exc:
        github_error(str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MISSING_BASELINE

    if total_checked == 0:
        message = ("no committed rows matched the requested grid "
                   f"(--max-lifespan {args.max_lifespan:g})")
        github_error(message)
        print(f"error: {message}", file=sys.stderr)
        return EXIT_MISSING_BASELINE
    if all_failures:
        github_error(
            f"{len(all_failures)} committed benchmark value(s) drifted "
            f"across {total_checked} checked row(s) — see the job log")
        print(f"BENCH REGRESSION: {len(all_failures)} drifted value(s) "
              f"across {total_checked} checked row(s):", file=sys.stderr)
        for failure in all_failures:
            print(f"  - {failure}", file=sys.stderr)
        return EXIT_DRIFT
    print(f"ok: {total_checked} committed benchmark rows re-verified "
          f"(tolerance {args.tolerance:g}, DP cache "
          f"{cache.stats.lookups - cache.stats.misses}/{cache.stats.lookups} hits)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
