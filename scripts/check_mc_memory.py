#!/usr/bin/env python
"""Guard the streaming Monte-Carlo pipeline's memory flatness.

Replicates the canonical high-replication sweep point (see
``benchmarks/mc_streaming_util.py``) with ``aggregation="streaming"`` at a
ladder of replication counts — each in a **fresh subprocess**, so
``ru_maxrss`` is a clean per-measurement peak — and fails if any count's
peak RSS exceeds ``--max-ratio`` times the smallest count's.  The chunk
size is pinned (not auto-sized) so the envelope measures exactly the
streaming pipeline's claim: peak memory flat in ``--replications``.

With ``--million`` the ladder additionally includes a 10^6-replication run
(the ISSUE acceptance bar: it must *complete*, inside the same envelope);
without the flag the default 1k/10k/100k ladder keeps the gate under ~15s
for every-push CI.

Usage::

    PYTHONPATH=src python scripts/check_mc_memory.py [--million] \
        [--counts 1000 10000 100000] [--max-ratio 1.5] [--chunk-size 4096]

Exit codes: ``0`` flat, ``1`` envelope violated (or a run produced
degenerate statistics), ``2`` a measurement could not run.  Failures are
emitted as GitHub Actions ``::error::`` annotations.
"""

from __future__ import annotations

import argparse
import math
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (os.path.join(_ROOT, "src"), os.path.join(_ROOT, "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from mc_streaming_util import (  # noqa: E402
    CHUNK_SIZE,
    RSS_RATIO_FLOOR,
    measure_subprocess,
)

EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2

MILLION = 1_000_000


def github_error(message: str) -> None:
    """Emit a GitHub Actions error annotation (harmless plain text locally)."""
    print(f"::error title=mc memory flatness::{str(message).splitlines()[0]}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--counts", type=int, nargs="+",
                        default=[1_000, 10_000, 100_000],
                        help="replication-count ladder (each measured in a "
                             "fresh subprocess)")
    parser.add_argument("--million", action="store_true",
                        help=f"also run {MILLION:,} replications (must "
                             "complete inside the same RSS envelope)")
    parser.add_argument("--max-ratio", type=float, default=RSS_RATIO_FLOOR,
                        help="peak-RSS envelope: every count's peak must be "
                             "<= this factor of the smallest count's")
    parser.add_argument("--chunk-size", type=int, default=CHUNK_SIZE,
                        help="fixed streaming chunk size for every run")
    args = parser.parse_args(argv)

    counts = sorted(set(args.counts) | ({MILLION} if args.million else set()))
    if len(counts) < 2:
        github_error("need at least two replication counts to compare")
        print("error: need at least two replication counts", file=sys.stderr)
        return EXIT_ERROR

    results = []
    for count in counts:
        try:
            result = measure_subprocess(count, "streaming", args.chunk_size)
        except Exception as exc:
            github_error(f"streaming run at {count:,} replications failed: "
                         f"{exc}")
            print(f"error: measurement at {count:,} replications failed:\n"
                  f"{exc}", file=sys.stderr)
            return EXIT_ERROR
        results.append(result)
        print(f"streaming x {count:>9,}: {result['seconds']:7.2f}s  "
              f"peak RSS {result['rss_mib']:6.1f} MiB  "
              f"work_mean {result['work_mean']:.6f}")

    failures = []
    baseline = results[0]
    for result in results:
        ratio = result["rss_mib"] / baseline["rss_mib"]
        if ratio > args.max_ratio:
            failures.append(
                f"{result['replications']:,} replications peaked at "
                f"{result['rss_mib']:.1f} MiB — {ratio:.2f}x the "
                f"{baseline['replications']:,}-replication peak of "
                f"{baseline['rss_mib']:.1f} MiB (envelope "
                f"{args.max_ratio:g}x); streaming memory is no longer flat")
        if not math.isfinite(result["work_mean"]) or result["work_mean"] <= 0.0:
            failures.append(
                f"{result['replications']:,} replications produced a "
                f"degenerate work_mean {result['work_mean']!r}")

    if failures:
        github_error(f"{len(failures)} memory-flatness violation(s) — "
                     "see the job log")
        print(f"MC MEMORY FLATNESS VIOLATED ({len(failures)} issue(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return EXIT_VIOLATION

    largest = results[-1]
    print(f"ok: peak RSS flat within {args.max_ratio:g}x across "
          f"{counts[0]:,}..{counts[-1]:,} replications "
          f"(largest run: {largest['rss_mib']:.1f} MiB, "
          f"{largest['rss_mib'] / baseline['rss_mib']:.2f}x baseline)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
