"""Experiment: variance reduction at equal replication budget.

Replicates the panel of stochastic configurations defined in
``variance_reduction_util`` twice at the same replication count — plain
sampling vs the panel entry's variance-reduction mode — and records the
measured variance ratio ``(std_none^2/n) / sem_mode^2`` under
``benchmarks/results/variance_reduction.*``.

The committed table is the ISSUE's variance-reduction evidence: at least
``MIN_ENFORCED_CONFIGS`` enforced configurations reduce the variance of
the mean by at least ``VARIANCE_RATIO_FLOOR`` (4x), asserted here at
generation time and re-enforced on the committed CSV (with a full
in-process re-derivation — every quantity is deterministic given the
seed) by ``scripts/check_bench_regression.py --only variance-reduction``.
The unenforced rows document the more modest gains on multi-machine
scenario families for honest context.
"""

from bench_util import save_rows
from variance_reduction_util import (
    CONFIGS,
    MIN_ENFORCED_CONFIGS,
    VARIANCE_RATIO_FLOOR,
    measure_config,
)


def _run_all():
    rows = [measure_config(label) for label in CONFIGS]
    for row in rows:
        for column in ("work_mean_none", "work_mean_reduced"):
            row[column] = round(row[column], 6)
        for column in ("sem_none", "sem_reduced"):
            row[column] = round(row[column], 9)
        row["variance_ratio"] = round(row["variance_ratio"], 3)
    return rows


def test_bench_variance_reduction(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("variance_reduction", rows,
              columns=["config", "mode", "replications", "work_mean_none",
                       "work_mean_reduced", "sem_none", "sem_reduced",
                       "variance_ratio", "enforced"],
              title="Variance reduction at equal replication budget "
                    "(ratio = plain Var(mean) / reduced sem^2)")

    enforced = [row for row in rows if row["enforced"] == "yes"]
    assert len(enforced) >= MIN_ENFORCED_CONFIGS
    for row in enforced:
        assert row["variance_ratio"] >= VARIANCE_RATIO_FLOOR, (
            f"{row['config']}: measured variance ratio "
            f"{row['variance_ratio']:g}x is below the documented "
            f"{VARIANCE_RATIO_FLOOR:g}x floor")

    # The reduced-mode mean must stay statistically consistent with plain
    # sampling — variance reduction re-weights the noise, not the answer.
    for row in rows:
        drift = abs(row["work_mean_reduced"] - row["work_mean_none"])
        scale = 4.0 * (row["sem_none"] ** 2 + row["sem_reduced"] ** 2) ** 0.5
        assert drift <= max(scale, 1e-9), (
            f"{row['config']}: reduced-mode mean drifted {drift:g} from "
            f"plain sampling (allowance {scale:g})")
