"""Experiment: end-to-end NOW simulation of the guidelines.

Runs the canned scenarios (laptop evening, overnight desktop pool, shared
lab) through the discrete-event simulator with each scheduler and reports
completed work, wasted time and completed tasks — the system-level view of
the same trade-off the analytic benchmarks measure, including owners that
exceed the negotiated interrupt budget.
"""

import pytest

from bench_util import save_rows
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    FixedPeriodScheduler,
    RosenbergAdaptiveScheduler,
    SinglePeriodScheduler,
)
from repro.simulator import CycleStealingSimulation
from repro.workloads import laptop_evening, overnight_desktops, shared_lab

SCENARIOS = {
    "laptop-evening": laptop_evening,
    "overnight-desktops": overnight_desktops,
    "shared-lab": shared_lab,
}

SCHEDULERS = {
    "equalizing-adaptive": EqualizingAdaptiveScheduler,
    "rosenberg-adaptive": RosenbergAdaptiveScheduler,
    "fixed-period": lambda: FixedPeriodScheduler(period_length=20.0),
    "single-period": SinglePeriodScheduler,
}


def _run_all():
    rows = []
    for scenario_name, factory in SCENARIOS.items():
        for scheduler_name, make_scheduler in SCHEDULERS.items():
            scenario = factory()
            report = CycleStealingSimulation(scenario.workstations, make_scheduler(),
                                             task_bag=scenario.task_bag).run()
            total_wasted = sum(m.wasted_time for m in report.per_workstation.values())
            total_overhead = sum(m.overhead_time for m in report.per_workstation.values())
            rows.append({
                "scenario": scenario_name,
                "scheduler": scheduler_name,
                "work": report.total_work,
                "tasks": report.total_tasks_completed,
                "wasted": total_wasted,
                "overhead": total_overhead,
                "interrupts": report.total_interrupts,
            })
    return rows


def test_bench_simulator_scenarios(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("simulator_scenarios", rows, title="NOW simulation of the canned scenarios")
    by = {(r["scenario"], r["scheduler"]): r for r in rows}
    for scenario_name in SCENARIOS:
        adaptive = by[(scenario_name, "equalizing-adaptive")]["work"]
        single = by[(scenario_name, "single-period")]["work"]
        # Under real interrupt traces the guideline never does worse than the
        # fragile single-period strategy and pays only bounded overhead.
        assert adaptive >= single - 1e-6


def test_bench_simulator_throughput(benchmark):
    """Micro-benchmark: events per second of the simulation engine."""
    scenario = overnight_desktops(num_machines=4)

    def run_once():
        return CycleStealingSimulation(scenario.workstations,
                                       EqualizingAdaptiveScheduler()).run()

    report = benchmark(run_once)
    assert report.total_work > 0.0
