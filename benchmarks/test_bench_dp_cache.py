"""Experiment: the two-level DP-table cache makes repeated gap sweeps cheap.

A gap sweep (guideline's guaranteed work vs. the exact DP optimum) is
DP-bound: the worst-case analysis of the Section 3.1 guideline costs
milliseconds while solving ``W^(p)[L]`` for ``L`` in the tens of thousands
dominates.  The :class:`repro.experiments.DPTableCache` turns the solve
into a one-time cost: the same sweep re-run against a warm in-process LRU
(or, in a fresh process, against the on-disk ``.npz`` store) skips the DP
entirely.  This benchmark measures all three phases on the same grid and
commits the evidence under ``benchmarks/results/dp_cache_warmup.*``.
"""

import dataclasses
import time

from bench_util import save_rows
from repro import CycleStealingParams
from repro.analysis import optimality_gap
from repro.experiments import DPTableCache
from repro.schedules import RosenbergNonAdaptiveScheduler

#: (lifespan, interrupt budget) grid of the repeated gap sweep (c = 1).
GRID = [(20_000, 2), (40_000, 3), (60_000, 3)]


def _gap_sweep(cache: DPTableCache):
    scheduler = RosenbergNonAdaptiveScheduler()
    reports = []
    for U, p in GRID:
        params = CycleStealingParams(lifespan=float(U), setup_cost=1.0,
                                     max_interrupts=p)
        reports.append(optimality_gap(scheduler, params, cache=cache))
    return reports


def _timed_sweep(cache: DPTableCache):
    start = time.perf_counter()
    reports = _gap_sweep(cache)
    return time.perf_counter() - start, reports


def test_bench_dp_cache_warmup(benchmark, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("dp-cache"))

    cold_cache = DPTableCache(cache_dir=cache_dir)
    cold_seconds, cold_reports = _timed_sweep(cold_cache)
    cold_stats = dataclasses.replace(cold_cache.stats)

    warm_seconds, warm_reports = benchmark.pedantic(
        _timed_sweep, args=(cold_cache,), rounds=1, iterations=1)
    warm_stats = dataclasses.replace(cold_cache.stats)

    disk_cache = DPTableCache(cache_dir=cache_dir)
    disk_seconds, disk_reports = _timed_sweep(disk_cache)
    disk_stats = dataclasses.replace(disk_cache.stats)

    def phase_row(phase, seconds, stats, reports):
        return {
            "phase": phase,
            "seconds": seconds,
            "speedup_vs_cold": cold_seconds / seconds if seconds > 0 else float("inf"),
            "dp_lookups": stats.lookups,
            "memory_hits": stats.memory_hits,
            "disk_hits": stats.disk_hits,
            "misses": stats.misses,
            "sweep_points": len(reports),
        }

    rows = [
        phase_row("cold (solve + store)", cold_seconds, cold_stats, cold_reports),
        phase_row("warm in-process LRU", warm_seconds, warm_stats, warm_reports),
        phase_row("warm on-disk .npz", disk_seconds, disk_stats, disk_reports),
    ]
    save_rows("dp_cache_warmup", rows,
              title="Repeated gap sweep: cold vs. warm DP-table cache "
                    "(c = 1, U up to 60k)")

    # The three phases agree on the numbers — the cache changes cost only.
    for a, b, c in zip(cold_reports, warm_reports, disk_reports):
        assert a.guaranteed_work == b.guaranteed_work == c.guaranteed_work
        assert a.optimal_work == b.optimal_work == c.optimal_work

    # Cold pass misses every table; warm passes never re-solve.
    assert cold_cache.stats.misses == len(GRID)
    assert disk_cache.stats.misses == 0 and disk_cache.stats.disk_hits == len(GRID)

    # The acceptance bar: a warm cache is *measurably* faster.
    assert warm_seconds < cold_seconds
    assert cold_seconds / max(warm_seconds, 1e-9) > 3.0
    assert disk_seconds < cold_seconds
